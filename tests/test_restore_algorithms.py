"""Tests for restore algorithms: correctness + container-read behaviour."""

import random

import pytest

from repro.chunking.stream import Chunk, synthetic_fingerprint
from repro.errors import RestoreError
from repro.restore import (
    ALACCRestore,
    ChunkCacheRestore,
    ContainerCacheRestore,
    FAARestore,
    OptimalContainerCacheRestore,
    make_restorer,
)
from repro.storage.container import Container
from repro.storage.recipe import RecipeEntry

KB = 1024

ALGORITHMS = {
    "container-lru": lambda: ContainerCacheRestore(cache_containers=4),
    "chunk-lru": lambda: ChunkCacheRestore(cache_bytes=64 * KB),
    "faa": lambda: FAARestore(area_bytes=64 * KB),
    "alacc": lambda: ALACCRestore(
        total_bytes=64 * KB, lookahead_bytes=64 * KB, min_faa_bytes=16 * KB, step_bytes=8 * KB
    ),
    "optimal": lambda: OptimalContainerCacheRestore(cache_containers=4),
}


class Layout:
    """A synthetic container layout + a recipe referencing it."""

    def __init__(self, assignments, chunk_size=KB, capacity=16 * KB):
        """``assignments``: list of (token, cid) in recipe order."""
        self.containers = {}
        self.entries = []
        self.reads = 0
        for token, cid in assignments:
            fp = synthetic_fingerprint(token)
            container = self.containers.get(cid)
            if container is None:
                container = Container(cid, capacity)
                self.containers[cid] = container
            if fp not in container:
                container.add(Chunk(fp, chunk_size))
            self.entries.append(RecipeEntry(fp, chunk_size, cid))

    def reader(self, cid):
        self.reads += 1
        return self.containers[cid]


def sequential_layout(chunks=64, per_container=8):
    return Layout([(t, 1 + t // per_container) for t in range(chunks)])


def scattered_layout(chunks=64, containers=16, seed=3):
    rng = random.Random(seed)
    return Layout([(t, 1 + rng.randrange(containers)) for t in range(chunks)])


@pytest.mark.parametrize("name", sorted(ALGORITHMS))
class TestCorrectness:
    def test_restores_exact_sequence(self, name):
        layout = scattered_layout()
        algorithm = ALGORITHMS[name]()
        out = algorithm.run(layout.entries, layout.reader)
        assert [c.fingerprint for c in out] == [e.fingerprint for e in layout.entries]
        assert all(c.size == KB for c in out)

    def test_handles_repeated_chunks(self, name):
        layout = Layout([(1, 1), (2, 1), (1, 1), (2, 2), (1, 1)])
        # token 2 appears in two containers (rewritten copy): both valid.
        algorithm = ALGORITHMS[name]()
        out = algorithm.run(layout.entries, layout.reader)
        assert [c.fingerprint for c in out] == [e.fingerprint for e in layout.entries]

    def test_empty_recipe(self, name):
        algorithm = ALGORITHMS[name]()
        assert algorithm.run([], lambda cid: None) == []

    def test_rejects_unresolved_cids(self, name):
        algorithm = ALGORITHMS[name]()
        entries = [RecipeEntry(b"a" * 20, 1, 0)]
        with pytest.raises(RestoreError):
            algorithm.run(entries, lambda cid: None)

    def test_sequential_layout_reads_each_container_once(self, name):
        layout = sequential_layout()
        algorithm = ALGORITHMS[name]()
        algorithm.run(layout.entries, layout.reader)
        assert layout.reads == len(layout.containers)


class TestContainerCache:
    def test_thrashes_when_working_set_exceeds_capacity(self):
        # Round-robin over 8 containers with a 4-container LRU: every access
        # misses.
        layout = Layout([(t, 1 + (t % 8)) for t in range(64)])
        ContainerCacheRestore(cache_containers=4).run(layout.entries, layout.reader)
        assert layout.reads == 64

    def test_large_cache_reads_once(self):
        layout = Layout([(t, 1 + (t % 8)) for t in range(64)])
        ContainerCacheRestore(cache_containers=8).run(layout.entries, layout.reader)
        assert layout.reads == 8

    def test_rejects_bad_capacity(self):
        with pytest.raises(RestoreError):
            ContainerCacheRestore(cache_containers=0)


class TestChunkCache:
    def test_chunk_cache_survives_container_thrash(self):
        # Same round-robin pattern: chunk cache keeps the actual chunks, so
        # the second pass over the same tokens is free.
        tokens = [(t, 1 + (t % 8)) for t in range(32)]
        layout = Layout(tokens + tokens)
        ChunkCacheRestore(cache_bytes=1024 * KB).run(layout.entries, layout.reader)
        assert layout.reads == 8

    def test_eviction_respects_byte_budget(self):
        layout = Layout([(t, 1 + t // 4) for t in range(32)])
        algorithm = ChunkCacheRestore(cache_bytes=4 * KB)
        out = algorithm.run(layout.entries, layout.reader)
        assert len(out) == 32  # correctness under heavy eviction

    def test_rejects_bad_budget(self):
        with pytest.raises(RestoreError):
            ChunkCacheRestore(cache_bytes=0)


class TestFAA:
    def test_one_read_per_container_per_area(self):
        # 64 chunks interleaving 8 containers; area covers 32 chunks.
        layout = Layout([(t, 1 + (t % 8)) for t in range(64)])
        FAARestore(area_bytes=32 * KB).run(layout.entries, layout.reader)
        # Two areas x 8 containers each.
        assert layout.reads == 16

    def test_area_covering_everything_is_optimal(self):
        layout = Layout([(t, 1 + (t % 8)) for t in range(64)])
        FAARestore(area_bytes=1024 * KB).run(layout.entries, layout.reader)
        assert layout.reads == 8

    def test_oversized_chunk_spans_area(self):
        # A chunk bigger than the area must still restore (one-entry spans).
        layout = Layout([(1, 1), (2, 1)], chunk_size=8 * KB, capacity=64 * KB)
        out = FAARestore(area_bytes=4 * KB).run(layout.entries, layout.reader)
        assert len(out) == 2

    def test_rejects_bad_area(self):
        with pytest.raises(RestoreError):
            FAARestore(area_bytes=0)


class TestALACC:
    def test_lookahead_beats_plain_faa_on_interleaved_layout(self):
        pattern = [(t, 1 + (t % 8)) for t in range(64)]
        faa_layout = Layout(pattern)
        FAARestore(area_bytes=16 * KB).run(faa_layout.entries, faa_layout.reader)
        alacc_layout = Layout(pattern)
        ALACCRestore(
            total_bytes=32 * KB,
            lookahead_bytes=64 * KB,
            min_faa_bytes=8 * KB,
            step_bytes=8 * KB,
        ).run(alacc_layout.entries, alacc_layout.reader)
        assert alacc_layout.reads < faa_layout.reads

    def test_rejects_bad_budgets(self):
        with pytest.raises(RestoreError):
            ALACCRestore(total_bytes=0)
        with pytest.raises(RestoreError):
            ALACCRestore(total_bytes=KB, min_faa_bytes=2 * KB)


class TestOptimal:
    def test_never_worse_than_lru(self):
        rng = random.Random(11)
        pattern = [(t % 24, 1 + rng.randrange(12)) for t in range(200)]
        lru_layout = Layout(pattern)
        ContainerCacheRestore(cache_containers=4).run(lru_layout.entries, lru_layout.reader)
        opt_layout = Layout(pattern)
        OptimalContainerCacheRestore(cache_containers=4).run(
            opt_layout.entries, opt_layout.reader
        )
        assert opt_layout.reads <= lru_layout.reads

    def test_rejects_bad_capacity(self):
        with pytest.raises(RestoreError):
            OptimalContainerCacheRestore(cache_containers=0)


class TestMakeRestorer:
    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    def test_factory(self, name):
        assert make_restorer(name).name == name

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_restorer("belady2")
