"""Tests for the wire codec (:mod:`repro.client.protocol`) — sans network."""

import struct

import pytest

from repro.client.protocol import (
    DATA_BLOCK,
    HEADER_SIZE,
    MAGIC,
    MAX_PAYLOAD,
    PROTOCOL_VERSION,
    FrameDecoder,
    FrameType,
    check_hello,
    decode_header,
    decode_json,
    encode_data,
    encode_error,
    encode_frame,
    encode_json,
    hello_frame,
    iter_data_blocks,
    raise_remote_error,
)
from repro.errors import (
    DeletionError,
    ProtocolError,
    RemoteError,
    ServerDrainingError,
    TimeoutExceededError,
    VersionNotFoundError,
    error_by_name,
)


class TestFraming:
    def test_round_trip_single_frame(self):
        wire = encode_json(FrameType.STATS, {"repo": "a"})
        frames = FrameDecoder().feed(wire)
        assert len(frames) == 1
        ftype, payload = frames[0]
        assert ftype == FrameType.STATS
        assert decode_json(payload) == {"repo": "a"}

    def test_round_trip_every_frame_type(self):
        decoder = FrameDecoder()
        wire = b"".join(encode_frame(ft, b"x") for ft in FrameType)
        frames = decoder.feed(wire)
        assert [ft for ft, _ in frames] == list(FrameType)
        assert decoder.pending_bytes == 0

    def test_byte_by_byte_feed(self):
        wire = encode_data(b"payload-bytes") + encode_frame(FrameType.BACKUP_END)
        decoder = FrameDecoder()
        frames = []
        for i in range(len(wire)):
            frames.extend(decoder.feed(wire[i : i + 1]))
        assert frames == [
            (FrameType.CHUNK_DATA, b"payload-bytes"),
            (FrameType.BACKUP_END, b""),
        ]

    def test_partial_frame_stays_buffered(self):
        wire = encode_data(b"abcdef")
        decoder = FrameDecoder()
        assert decoder.feed(wire[:-2]) == []
        assert decoder.pending_bytes == len(wire) - 2
        assert decoder.feed(wire[-2:]) == [(FrameType.CHUNK_DATA, b"abcdef")]

    def test_unknown_frame_type_rejected(self):
        wire = struct.Struct("<IB").pack(0, 200)
        with pytest.raises(ProtocolError):
            FrameDecoder().feed(wire)
        with pytest.raises(ProtocolError):
            decode_header(wire[:HEADER_SIZE])

    def test_oversized_payload_rejected(self):
        wire = struct.Struct("<IB").pack(MAX_PAYLOAD + 1, int(FrameType.CHUNK_DATA))
        with pytest.raises(ProtocolError):
            FrameDecoder().feed(wire)
        with pytest.raises(ProtocolError):
            decode_header(wire[:HEADER_SIZE])
        with pytest.raises(ProtocolError):
            encode_frame(FrameType.CHUNK_DATA, b"\0" * (MAX_PAYLOAD + 1))

    def test_malformed_control_payload_rejected(self):
        with pytest.raises(ProtocolError):
            decode_json(b"\xff\xfe not json")
        with pytest.raises(ProtocolError):
            decode_json(b"[1, 2, 3]")  # JSON but not an object


class TestHandshake:
    def test_hello_round_trip(self):
        (ftype, payload), = FrameDecoder().feed(hello_frame())
        assert ftype == FrameType.HELLO
        obj = check_hello(payload)
        assert obj == {"magic": MAGIC, "version": PROTOCOL_VERSION}

    def test_wrong_magic_rejected(self):
        wire = encode_json(FrameType.HELLO, {"magic": "HTTP", "version": 1})
        (_, payload), = FrameDecoder().feed(wire)
        with pytest.raises(ProtocolError):
            check_hello(payload)

    def test_version_mismatch_rejected(self):
        wire = encode_json(
            FrameType.HELLO, {"magic": MAGIC, "version": PROTOCOL_VERSION + 1}
        )
        (_, payload), = FrameDecoder().feed(wire)
        with pytest.raises(ProtocolError) as excinfo:
            check_hello(payload)
        assert "version mismatch" in str(excinfo.value)


class TestErrorTaxonomy:
    @pytest.mark.parametrize(
        "exc",
        [
            VersionNotFoundError("no version 9"),
            DeletionError("not demoted yet"),
            ServerDrainingError("draining"),
            TimeoutExceededError("too slow"),
            ProtocolError("bad frame"),
        ],
    )
    def test_repro_errors_round_trip_by_class(self, exc):
        (_, payload), = FrameDecoder().feed(encode_error(exc))
        with pytest.raises(type(exc)) as excinfo:
            raise_remote_error(payload)
        assert str(excinfo.value) == str(exc)

    def test_foreign_exception_degrades_to_remote_error(self):
        (_, payload), = FrameDecoder().feed(encode_error(ValueError("internal")))
        with pytest.raises(RemoteError) as excinfo:
            raise_remote_error(payload)
        assert "internal" in str(excinfo.value)

    def test_unknown_class_name_degrades_to_remote_error(self):
        assert error_by_name("NoSuchClass") is RemoteError
        # Wire names must never resolve to non-error types in the module.
        assert error_by_name("os") is RemoteError

    def test_error_by_name_resolves_taxonomy(self):
        assert error_by_name("VersionNotFoundError") is VersionNotFoundError
        assert error_by_name("ProtocolError") is ProtocolError


class TestDataBlocks:
    def test_small_blocks_pass_through(self):
        assert list(iter_data_blocks(iter([b"a", b"bb"]))) == [b"a", b"bb"]

    def test_empty_blocks_dropped(self):
        assert list(iter_data_blocks(iter([b"", b"x", b""]))) == [b"x"]

    def test_oversized_blocks_resliced(self):
        big = bytes(range(256)) * (DATA_BLOCK // 128)  # 2x DATA_BLOCK
        out = list(iter_data_blocks(iter([big])))
        assert [len(b) for b in out] == [DATA_BLOCK, DATA_BLOCK]
        assert b"".join(out) == big

    def test_custom_block_size(self):
        out = list(iter_data_blocks(iter([b"abcdefgh"]), block_size=3))
        assert out == [b"abc", b"def", b"gh"]


class TestZeroCopyFraming:
    """The gather-write / zero-copy-read codec surface."""

    def test_frame_parts_concatenate_to_encode_frame(self):
        from repro.client.protocol import frame_parts

        payload = b"p" * 1000
        header, body = frame_parts(FrameType.CHUNK_DATA, payload)
        assert header + bytes(body) == encode_frame(FrameType.CHUNK_DATA, payload)
        header, body = frame_parts(FrameType.BACKUP_END)
        assert header + body == encode_frame(FrameType.BACKUP_END)
        with pytest.raises(ProtocolError):
            frame_parts(FrameType.CHUNK_DATA, b"\0" * (MAX_PAYLOAD + 1))

    def test_encode_data_header_matches_encode_data(self):
        from repro.client.protocol import encode_data_header

        payload = b"d" * 777
        assert encode_data_header(len(payload)) + payload == encode_data(payload)
        with pytest.raises(ProtocolError):
            encode_data_header(MAX_PAYLOAD + 1)

    def test_chunk_data_payload_is_a_view_into_the_fed_buffer(self):
        wire = encode_data(b"z" * 4096)
        decoder = FrameDecoder()
        ((ftype, payload),) = decoder.feed(wire)
        assert ftype == FrameType.CHUNK_DATA
        # Zero copy: the payload is a memoryview over the very bytes object
        # given to feed(), not a copy.
        assert isinstance(payload, memoryview)
        assert payload.obj is wire
        assert bytes(payload) == b"z" * 4096

    def test_control_payloads_are_bytes(self):
        wire = encode_json(FrameType.STATS_OK, {"versions": 3})
        ((ftype, payload),) = FrameDecoder().feed(wire)
        assert ftype == FrameType.STATS_OK
        assert isinstance(payload, bytes)

    def test_straddled_payload_reassembles(self):
        blob = bytes(range(256)) * 64
        wire = encode_data(blob) + encode_data(blob[::-1])
        decoder = FrameDecoder()
        frames = []
        # Feed in awkward pieces that split headers and payloads alike.
        pieces = [
            wire[:3],
            wire[3 : HEADER_SIZE + 11],
            wire[HEADER_SIZE + 11 : len(blob) + 40],
            wire[len(blob) + 40 :],
        ]
        assert b"".join(pieces) == wire
        for piece in pieces:
            frames.extend(decoder.feed(piece))
        assert [bytes(p) for _ft, p in frames] == [blob, blob[::-1]]
        assert decoder.pending_bytes == 0

    def test_pending_accounts_for_a_parsed_header(self):
        wire = encode_data(b"q" * 100)
        decoder = FrameDecoder()
        assert decoder.feed(wire[:HEADER_SIZE]) == []
        # The header may be consumed from the byte buffer but its size must
        # still show in pending accounting until the frame completes.
        assert decoder.pending_bytes == HEADER_SIZE
        assert decoder.feed(wire[HEADER_SIZE:]) == [
            (FrameType.CHUNK_DATA, b"q" * 100)
        ]
        assert decoder.pending_bytes == 0

    def test_iter_data_blocks_yields_views_without_copying(self):
        blob = b"r" * (DATA_BLOCK * 2 + 17)
        blocks = list(iter_data_blocks([blob]))
        assert [len(b) for b in blocks] == [DATA_BLOCK, DATA_BLOCK, 17]
        assert all(isinstance(b, memoryview) for b in blocks)
        assert all(b.obj is blob for b in blocks)
        assert b"".join(bytes(b) for b in blocks) == blob
