"""Tests for the Bloom filter (DDFS summary vector)."""

import random

import pytest

from repro.errors import IndexError_
from repro.index.bloom import BloomFilter


def keys(seed, count):
    rng = random.Random(seed)
    return [rng.getrandbits(160).to_bytes(20, "big") for _ in range(count)]


class TestBloomFilter:
    def test_no_false_negatives(self):
        bloom = BloomFilter(expected_items=1000, false_positive_rate=0.01)
        inserted = keys(1, 1000)
        for key in inserted:
            bloom.add(key)
        assert all(key in bloom for key in inserted)

    def test_false_positive_rate_bounded(self):
        bloom = BloomFilter(expected_items=2000, false_positive_rate=0.01)
        for key in keys(2, 2000):
            bloom.add(key)
        probes = keys(3, 5000)
        false_positives = sum(1 for key in probes if key in bloom)
        # Allow 4x slack over the design rate.
        assert false_positives / len(probes) < 0.04

    def test_empty_filter_rejects_everything(self):
        bloom = BloomFilter(expected_items=100)
        assert not any(key in bloom for key in keys(4, 100))

    def test_sizing_scales_with_expected_items(self):
        small = BloomFilter(expected_items=1000)
        large = BloomFilter(expected_items=100_000)
        assert large.size_bytes > small.size_bytes * 50

    def test_lower_fp_rate_needs_more_bits(self):
        loose = BloomFilter(expected_items=1000, false_positive_rate=0.1)
        tight = BloomFilter(expected_items=1000, false_positive_rate=0.001)
        assert tight.size_bytes > loose.size_bytes

    def test_estimated_fp_rate_grows_with_fill(self):
        bloom = BloomFilter(expected_items=1000, false_positive_rate=0.01)
        assert bloom.estimated_fp_rate == 0.0
        for key in keys(5, 500):
            bloom.add(key)
        half = bloom.estimated_fp_rate
        for key in keys(6, 500):
            bloom.add(key)
        assert bloom.estimated_fp_rate > half > 0.0

    def test_count_tracks_inserts(self):
        bloom = BloomFilter(expected_items=10)
        for key in keys(7, 5):
            bloom.add(key)
        assert bloom.count == 5

    def test_invalid_parameters(self):
        with pytest.raises(IndexError_):
            BloomFilter(expected_items=0)
        with pytest.raises(IndexError_):
            BloomFilter(expected_items=10, false_positive_rate=1.5)

    def test_short_keys_handled(self):
        bloom = BloomFilter(expected_items=10)
        bloom.add(b"ab")
        assert b"ab" in bloom
