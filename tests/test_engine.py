"""Tests for the pipelined parallel ingest engine (src/repro/engine/).

Covers the vectorized FastCDC kernel's exact equivalence with the scalar
chunker, order preservation and determinism of the parallel pipeline,
engine-level parallel-vs-serial equivalence (identical recipes, dedup
ratios and byte-identical restores for HiDeStore *and* a traditional DDFS
baseline), the background-maintenance drain barrier, and the write-behind
container store.
"""

import os
import random
import signal
import subprocess
import sys
import time

import pytest

from repro.chunking import FastCDCChunker, Fingerprinter
from repro.chunking.stream import concat_stream_bytes
from repro.chunking.vectorized import HAVE_NUMPY, split_fast, vector_cuts
from repro.core import HiDeStore
from repro.engine import (
    IngestPoolError,
    LazyBackupStream,
    MaintenanceExecutor,
    ParallelChunkPipeline,
    PipelinedIngestEngine,
    SharedChunkPool,
    WriteBehindContainerStore,
    build_engine,
    chunk_segment,
    install_write_behind,
    iter_segments,
    sweep_orphaned_segments,
)
from repro.observability import MetricsRegistry
from repro.pipeline import SCHEMES, BackupEngine, build_scheme
from repro.units import KiB

CONTAINER = 64 * KiB


def _chunker():
    return FastCDCChunker(min_size=512, avg_size=2048, max_size=8 * KiB)


def _versions(seed=5, items=5, size=96 * KiB, versions=3):
    """Byte-level versions as per-item payload lists, with realistic churn."""
    rng = random.Random(seed)
    base = [rng.randbytes(size) for _ in range(items)]
    out = [list(base)]
    for _ in range(versions - 1):
        nxt = list(out[-1])
        victim = rng.randrange(items)
        nxt[victim] = rng.randbytes(size)  # replace one file
        grower = rng.randrange(items)
        nxt[grower] = nxt[grower] + rng.randbytes(4 * KiB)  # append to another
        out.append(nxt)
    return out


# ----------------------------------------------------------------------
# Vectorized FastCDC kernel
# ----------------------------------------------------------------------
@pytest.mark.skipif(not HAVE_NUMPY, reason="numpy unavailable")
class TestVectorizedCuts:
    @pytest.mark.parametrize(
        "min_size,avg_size,max_size",
        [(512, 2048, 8192), (64, 256, 1024), (2048, 8192, 65536), (1, 4096, 16384)],
    )
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_cuts_match_scalar(self, min_size, avg_size, max_size, seed):
        chunker = FastCDCChunker(min_size, avg_size, max_size)
        data = random.Random(seed).randbytes(200_000 + seed * 7919)
        expected = [len(p) for p in chunker.split(data)]
        assert vector_cuts(chunker, data) == expected

    def test_low_entropy_forces_max_cuts(self):
        chunker = _chunker()
        data = b"\x00" * 100_000  # no mask hit: every cut is max_size
        assert vector_cuts(chunker, data) == [len(p) for p in chunker.split(data)]

    @pytest.mark.parametrize("size", [65_536, 65_537, 70_001, 131_071])
    def test_tail_sizes(self, size):
        chunker = _chunker()
        data = random.Random(size).randbytes(size)
        assert split_fast(chunker, data) == chunker.split(data)

    def test_degenerate_fixed_size_contract(self):
        chunker = FastCDCChunker(4096, 4096, 4096)
        data = random.Random(9).randbytes(100_000)
        assert vector_cuts(chunker, data) == [len(p) for p in chunker.split(data)]

    def test_small_buffer_falls_back_to_scalar(self):
        chunker = _chunker()
        data = random.Random(1).randbytes(10_000)
        assert split_fast(chunker, data) == chunker.split(data)

    def test_subclass_falls_back_to_scalar(self):
        class Custom(FastCDCChunker):
            pass

        chunker = Custom(512, 2048, 8192)
        data = random.Random(2).randbytes(100_000)
        assert split_fast(chunker, data) == chunker.split(data)


# ----------------------------------------------------------------------
# Parallel chunk pipeline
# ----------------------------------------------------------------------
class TestParallelChunkPipeline:
    def test_thread_pool_matches_serial(self):
        items = _versions()[0]
        serial = list(ParallelChunkPipeline(_chunker(), workers=1).iter_chunks(items))
        with ParallelChunkPipeline(_chunker(), workers=4, executor="thread") as pipe:
            parallel = list(pipe.iter_chunks(items))
        assert serial == parallel

    def test_process_pool_matches_serial(self):
        items = _versions(items=3)[0]
        serial = list(ParallelChunkPipeline(_chunker(), workers=1).iter_chunks(items))
        with ParallelChunkPipeline(_chunker(), workers=2, executor="process") as pipe:
            parallel = list(pipe.iter_chunks(items))
        assert serial == parallel

    def test_order_preserved_with_unequal_items(self):
        rng = random.Random(3)
        items = [rng.randbytes(rng.randrange(1, 40 * KiB)) for _ in range(24)]
        serial = list(ParallelChunkPipeline(_chunker(), workers=1).iter_chunks(items))
        with ParallelChunkPipeline(_chunker(), workers=4, executor="thread") as pipe:
            parallel = list(pipe.iter_chunks(items))
        assert serial == parallel
        assert b"".join(c.data for c in parallel) == b"".join(items)

    def test_lazy_stream_is_single_pass(self):
        pipe = ParallelChunkPipeline(_chunker(), workers=1)
        stream = pipe.stream([b"x" * 4096], tag="v1")
        assert isinstance(stream, LazyBackupStream)
        assert list(stream)
        with pytest.raises(RuntimeError):
            iter(stream)
        fresh = pipe.stream([b"x" * 4096])
        with pytest.raises(TypeError):
            len(fresh)
        with pytest.raises(RuntimeError):
            fresh.chunks

    def test_materialize_is_reiterable(self):
        pipe = ParallelChunkPipeline(_chunker(), workers=1)
        stream = pipe.materialize([b"y" * 4096], tag="v1")
        assert list(stream) == list(stream)
        assert len(stream) > 0

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            ParallelChunkPipeline(workers=0)
        with pytest.raises(ValueError):
            ParallelChunkPipeline(executor="fiber")
        with pytest.raises(ValueError):
            ParallelChunkPipeline(queue_depth=0)

    def test_fingerprinter_is_picklable(self):
        import pickle

        fp = Fingerprinter("sha256", width=16)
        clone = pickle.loads(pickle.dumps(fp))
        assert clone.fingerprint(b"abc") == fp.fingerprint(b"abc")


# ----------------------------------------------------------------------
# Engine-level parallel-vs-serial equivalence
# ----------------------------------------------------------------------
class TestEngineEquivalence:
    @pytest.mark.parametrize("scheme", ["hidestore", "ddfs"])
    def test_parallel_matches_serial(self, scheme):
        versions = _versions()
        serial = build_engine(scheme, workers=1, chunker=_chunker(), container_size=CONTAINER)
        parallel = build_engine(
            scheme, workers=4, executor="thread", chunker=_chunker(), container_size=CONTAINER
        )
        for i, items in enumerate(versions):
            serial.ingest(items, tag=f"v{i + 1}")
            parallel.ingest(items, tag=f"v{i + 1}")
        assert serial.dedup_ratio == parallel.dedup_ratio
        for vid in serial.version_ids():
            s_recipe = serial.recipes.peek(vid)
            p_recipe = parallel.recipes.peek(vid)
            assert [e.fingerprint for e in s_recipe.entries] == [
                e.fingerprint for e in p_recipe.entries
            ]
            assert concat_stream_bytes(serial.restore_chunks(vid)) == concat_stream_bytes(
                parallel.restore_chunks(vid)
            )
        parallel.close()

    def test_full_pipeline_matches_serial(self):
        """Write-behind + background maintenance change nothing observable."""
        versions = _versions(seed=8)
        serial = build_engine(
            "hidestore", workers=1, chunker=_chunker(), container_size=CONTAINER
        )
        full = build_engine(
            "hidestore",
            workers=2,
            executor="thread",
            chunker=_chunker(),
            write_behind=True,
            background_maintenance=True,
            container_size=CONTAINER,
        )
        for i, items in enumerate(versions):
            serial.ingest(items, tag=f"v{i + 1}")
            full.ingest(items, tag=f"v{i + 1}")
        assert serial.dedup_ratio == full.dedup_ratio
        for vid in serial.version_ids():
            assert concat_stream_bytes(serial.restore_chunks(vid)) == concat_stream_bytes(
                full.restore_chunks(vid)
            )
        assert serial.stored_bytes() == full.stored_bytes()
        full.close()

    def test_engine_satisfies_protocol(self):
        engine = build_engine("hidestore", container_size=CONTAINER)
        assert isinstance(engine, BackupEngine)

    def test_every_scheme_satisfies_protocol(self):
        for name in SCHEMES:
            assert isinstance(build_scheme(name, container_size=CONTAINER), BackupEngine), name


# ----------------------------------------------------------------------
# Background maintenance executor
# ----------------------------------------------------------------------
class TestMaintenanceExecutor:
    def test_drain_is_a_barrier(self):
        import threading

        executor = MaintenanceExecutor()
        gate = threading.Event()
        done = []
        executor.submit(lambda: (gate.wait(5), done.append(1)))
        executor.submit(lambda: done.append(2))
        assert executor.pending == 2
        gate.set()
        assert executor.drain() == 2
        assert done == [1, 2]
        assert executor.pending == 0
        executor.close()

    def test_drain_reraises_task_error(self):
        executor = MaintenanceExecutor()

        def boom():
            raise ValueError("maintenance failed")

        executor.submit(boom)
        with pytest.raises(ValueError, match="maintenance failed"):
            executor.drain()
        assert executor.drain() == 0  # errors don't repeat
        executor.close()

    def test_closed_executor_rejects_submissions(self):
        executor = MaintenanceExecutor()
        executor.close()
        executor.close()  # idempotent
        with pytest.raises(RuntimeError):
            executor.submit(lambda: None)

    def test_background_maintenance_drains_before_restore(self):
        versions = _versions(seed=13)
        executor = MaintenanceExecutor()
        system = HiDeStore(
            container_size=CONTAINER,
            deferred_maintenance=True,
            maintenance_executor=executor,
        )
        pipe = ParallelChunkPipeline(_chunker(), workers=1)
        for i, items in enumerate(versions):
            system.backup(pipe.stream(items, tag=f"v{i + 1}"))
        # The restore path must drain in-flight maintenance before reading.
        restored = concat_stream_bytes(system.restore_chunks(1))
        assert restored == b"".join(versions[0])
        assert system.pending_maintenance == 0
        executor.close()

    def test_background_maintenance_drains_before_delete(self):
        versions = _versions(seed=21, versions=4)
        executor = MaintenanceExecutor()
        system = HiDeStore(
            container_size=CONTAINER,
            deferred_maintenance=True,
            maintenance_executor=executor,
        )
        pipe = ParallelChunkPipeline(_chunker(), workers=1)
        for i, items in enumerate(versions):
            system.backup(pipe.stream(items, tag=f"v{i + 1}"))
        stats = system.delete_oldest()
        assert system.pending_maintenance == 0
        assert stats.versions_deleted == 1
        assert 1 not in system.version_ids()
        executor.close()

    def test_equivalent_to_synchronous_deferred(self):
        """Async execution must be state-identical to the sync queue."""
        versions = _versions(seed=34)
        executor = MaintenanceExecutor()
        background = HiDeStore(
            container_size=CONTAINER,
            deferred_maintenance=True,
            maintenance_executor=executor,
        )
        synchronous = HiDeStore(container_size=CONTAINER, deferred_maintenance=True)
        pipe = ParallelChunkPipeline(_chunker(), workers=1)
        for i, items in enumerate(versions):
            background.backup(pipe.stream(items, tag=f"v{i + 1}"))
            synchronous.backup(pipe.stream(items, tag=f"v{i + 1}"))
        background.run_maintenance()
        synchronous.run_maintenance()
        assert background.stored_bytes() == synchronous.stored_bytes()
        assert background.dedup_ratio == synchronous.dedup_ratio
        for vid in background.version_ids():
            assert concat_stream_bytes(background.restore_chunks(vid)) == concat_stream_bytes(
                synchronous.restore_chunks(vid)
            )
        executor.close()


# ----------------------------------------------------------------------
# Write-behind container store
# ----------------------------------------------------------------------
class TestWriteBehindStore:
    def test_install_and_flush(self):
        system = HiDeStore(container_size=CONTAINER)
        wrapper = install_write_behind(system)
        assert system.containers is wrapper
        assert system.pool.store is wrapper
        assert system.deletion.containers is wrapper
        versions = _versions(seed=55)
        pipe = ParallelChunkPipeline(_chunker(), workers=1)
        for i, items in enumerate(versions):
            system.backup(pipe.stream(items, tag=f"v{i + 1}"))
        for vid in system.version_ids():
            assert concat_stream_bytes(system.restore_chunks(vid)) == b"".join(
                versions[vid - 1]
            )
        wrapper.close()

    def test_reads_flush_pending_writes(self):
        inner_system = build_scheme("ddfs", container_size=CONTAINER)
        wrapper = WriteBehindContainerStore(inner_system.containers)
        container = wrapper.allocate()
        fp = Fingerprinter()
        container.add(fp.chunk(b"z" * 1024))
        wrapper.write(container)
        # container_ids flushes first, so the write is always visible.
        assert container.container_id in wrapper.container_ids()
        assert container.container_id in wrapper
        assert wrapper.stored_bytes() == 1024
        wrapper.close()

    def test_background_write_error_surfaces_on_flush(self):
        inner_system = build_scheme("ddfs", container_size=CONTAINER)
        wrapper = WriteBehindContainerStore(inner_system.containers)
        container = wrapper.allocate()
        container.add(Fingerprinter().chunk(b"q" * 512))
        wrapper.write(container)
        wrapper.flush()
        duplicate = wrapper.inner.peek(container.container_id)
        wrapper.write(duplicate)  # inner store rejects duplicate IDs
        with pytest.raises(Exception):
            wrapper.flush()
        wrapper.close()

    def test_closed_store_rejects_writes(self):
        inner_system = build_scheme("ddfs", container_size=CONTAINER)
        wrapper = WriteBehindContainerStore(inner_system.containers)
        wrapper.close()
        with pytest.raises(RuntimeError):
            wrapper.write(wrapper.allocate())


# ----------------------------------------------------------------------
# PipelinedIngestEngine surface
# ----------------------------------------------------------------------
class TestPipelinedIngestEngine:
    def test_backup_accepts_prechunked_stream(self):
        engine = build_engine("hidestore", container_size=CONTAINER)
        stream = _chunker().chunk_stream([b"w" * 100_000], tag="v1")
        report = engine.backup(stream)
        assert report.total_chunks == len(stream)

    def test_context_manager_closes(self):
        with build_engine(
            "hidestore",
            workers=2,
            executor="thread",
            chunker=_chunker(),
            write_behind=True,
            background_maintenance=True,
            container_size=CONTAINER,
        ) as engine:
            engine.ingest(_versions()[0], tag="v1")
            assert engine.version_ids() == [1]
        # close() ran: further maintenance submissions must be rejected.
        with pytest.raises(RuntimeError):
            engine.maintenance.submit(lambda: None)

    def test_restore_entry_range_joins_first(self):
        engine = build_engine(
            "hidestore",
            chunker=_chunker(),
            background_maintenance=True,
            container_size=CONTAINER,
        )
        versions = _versions(seed=77)
        for i, items in enumerate(versions):
            engine.ingest(items, tag=f"v{i + 1}")
        recipe = engine.recipes.peek(1)
        partial = list(engine.restore_entry_range(1, 0, 5))
        assert [c.fingerprint for c in partial] == [
            e.fingerprint for e in recipe.entries[:5]
        ]
        engine.close()


# ----------------------------------------------------------------------
# Shared daemon-lifetime chunking pool
# ----------------------------------------------------------------------
SEGMENT = 64 * KiB  # small segments so a few hundred KiB exercises many handoffs


def _pool(workers, executor, metrics=None, **kwargs):
    return SharedChunkPool(
        workers,
        executor=executor,
        chunker=_chunker(),
        segment_bytes=SEGMENT,
        metrics=metrics if metrics is not None else MetricsRegistry(),
        **kwargs,
    )


def _inline_chunks(blocks):
    chunker, fp = _chunker(), Fingerprinter()
    return [
        chunk
        for segment in iter_segments(blocks, SEGMENT)
        for chunk in chunk_segment(chunker, fp, segment)
    ]


def _blocks(seed=11, count=12, size=37_000):
    rng = random.Random(seed)
    return [rng.randbytes(size) for _ in range(count)]


class TestSharedChunkPool:
    def test_iter_segments_independent_of_block_framing(self):
        payload = random.Random(7).randbytes(5 * SEGMENT + 123)
        framings = [
            [payload],
            [payload[i : i + 1000] for i in range(0, len(payload), 1000)],
            [payload[:1], payload[1:SEGMENT], payload[SEGMENT:]],
        ]
        segmented = [list(iter_segments(f, SEGMENT)) for f in framings]
        assert segmented[0] == segmented[1] == segmented[2]
        assert all(len(s) == SEGMENT for s in segmented[0][:-1])
        assert b"".join(segmented[0]) == payload

    @pytest.mark.parametrize(
        "workers,executor", [(1, "process"), (4, "process"), (2, "thread")]
    )
    def test_pool_matches_inline_chunking(self, workers, executor):
        blocks = _blocks()
        with _pool(workers, executor) as pool:
            pooled = [c for batch in pool.chunk_blocks(blocks) for c in batch]
        inline = _inline_chunks(blocks)
        assert [(c.fingerprint, c.size) for c in pooled] == [
            (c.fingerprint, c.size) for c in inline
        ]
        assert b"".join(c.data for c in pooled) == b"".join(blocks)

    def test_pool_records_stage_metrics(self):
        metrics = MetricsRegistry()
        blocks = _blocks(count=6)
        with _pool(2, "process", metrics=metrics) as pool:
            list(pool.chunk_blocks(blocks))
        snap = metrics.snapshot()
        assert snap["counters"]["ingest.segments_total"] == len(
            list(iter_segments(blocks, SEGMENT))
        )
        assert snap["gauges"]["ingest.queue_depth"] == 0  # all drained
        assert "ingest.chunk_seconds" in snap["histograms"]
        assert "ingest.handoff_seconds" in snap["histograms"]

    def test_killed_worker_respawns_and_output_is_identical(self):
        metrics = MetricsRegistry()
        blocks = _blocks(seed=23, count=20)
        with _pool(2, "process", metrics=metrics) as pool:
            pool.warm()
            results = pool.chunk_blocks(blocks)
            pooled = [c for c in next(results)]  # pool is live and mid-stream
            for pid in pool.worker_pids():
                os.kill(pid, signal.SIGKILL)
            for batch in results:
                pooled.extend(batch)
        assert [(c.fingerprint, c.size, c.data) for c in pooled] == [
            (c.fingerprint, c.size, c.data) for c in _inline_chunks(blocks)
        ]
        assert metrics.snapshot()["counters"]["ingest.worker_respawns"] >= 1

    def test_retry_budget_exhaustion_raises_typed_error(self):
        blocks = _blocks(seed=31, count=20)
        with _pool(2, "process", max_retries=0) as pool:
            pool.warm()
            results = pool.chunk_blocks(blocks)
            next(results)
            for pid in pool.worker_pids():
                os.kill(pid, signal.SIGKILL)
            with pytest.raises(IngestPoolError):
                for _ in results:
                    pass

    def test_closed_pool_rejects_work_and_unlinks_slabs(self):
        pool = _pool(1, "process")
        names = [slab.shm.name for slab in pool._slabs]
        assert names
        pool.close()
        pool.close()  # idempotent
        if os.path.isdir("/dev/shm"):
            for name in names:
                assert not os.path.exists(os.path.join("/dev/shm", name))
        with pytest.raises(IngestPoolError):
            list(pool.chunk_blocks([b"x"]))

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            SharedChunkPool(0)
        with pytest.raises(ValueError):
            SharedChunkPool(1, executor="fiber")
        with pytest.raises(ValueError):
            SharedChunkPool(1, queue_depth=0)
        with pytest.raises(ValueError):
            SharedChunkPool(1, segment_bytes=0)

    def test_orphan_sweep_removes_only_dead_owners(self, tmp_path):
        dead = subprocess.Popen([sys.executable, "-c", "pass"])
        dead.wait()
        base = str(tmp_path)
        orphan = f"hidestore-ing-{dead.pid}-0"
        mine = f"hidestore-ing-{os.getpid()}-1"
        stranger = "unrelated-file"
        unparsable = "hidestore-ing-notapid-2"
        for name in (orphan, mine, stranger, unparsable):
            with open(os.path.join(base, name), "wb") as handle:
                handle.write(b"slab")
        metrics = MetricsRegistry()
        assert sweep_orphaned_segments(metrics, base=base) == 1
        assert not os.path.exists(os.path.join(base, orphan))
        for kept in (mine, stranger, unparsable):
            assert os.path.exists(os.path.join(base, kept))
        assert metrics.snapshot()["counters"]["ingest.orphaned_segments_swept"] == 1
        assert sweep_orphaned_segments(metrics, base=str(tmp_path / "missing")) == 0


class TestRepositoryPoolDeterminism:
    """The determinism contract at the repository layer: serial inline
    ingest, a 1-worker pool, an N-worker pool and a thread pool must all
    produce identical reports and byte-identical restores."""

    @pytest.mark.parametrize(
        "workers,executor", [(1, "process"), (4, "process"), (2, "thread")]
    )
    def test_pooled_repository_matches_serial(self, workers, executor, tmp_path):
        from repro.repository import LocalRepository

        # Default-config pool: the serial inline path chunks with the
        # default chunker at the default segment size, so equivalence needs
        # the pool on the same configuration.
        rng = random.Random(41)
        size = 5 * 1024 * 1024  # > SEGMENT_BYTES: every backup spans segments
        payloads = [rng.randbytes(size), rng.randbytes(size)]
        payloads[1] = payloads[0][: size // 2] + payloads[1][: size - size // 2]

        def run(root, pool):
            repo = LocalRepository(root, ingest_pool=pool, metrics=MetricsRegistry())
            reports, restored = [], []
            for i, payload in enumerate(payloads):
                blocks = [payload[j : j + 65_536] for j in range(0, len(payload), 65_536)]
                plan = [("stream.bin", len(payload))]
                reports.append(repo.backup_blocks(iter(blocks), plan, tag=f"v{i}"))
                _plan_rows, data = repo.restore(i + 1)
                restored.append(b"".join(bytes(b) for b in data))
            return reports, restored

        serial = run(str(tmp_path / "serial"), None)
        with SharedChunkPool(
            workers, executor=executor, metrics=MetricsRegistry()
        ) as pool:
            pooled = run(str(tmp_path / f"pool-{executor}{workers}"), pool)
        assert pooled == serial
        assert pooled[0][1]["duplicate_chunks"] > 0  # the churn actually deduped
