"""End-to-end tests for the ``hidestore`` CLI."""

import os
import random

import pytest

from repro.cli import main


@pytest.fixture
def source_tree(tmp_path):
    rng = random.Random(5)
    src = tmp_path / "src"
    src.mkdir()
    (src / "sub").mkdir()
    for i in range(4):
        data = rng.getrandbits(8 * 20_000).to_bytes(20_000, "big")
        (src / f"f{i}.bin").write_bytes(data)
    (src / "sub" / "nested.bin").write_bytes(b"nested content" * 100)
    return src


def read_tree(root):
    out = {}
    for dirpath, _dirs, files in os.walk(root):
        for name in files:
            path = os.path.join(dirpath, name)
            out[os.path.relpath(path, root)] = open(path, "rb").read()
    return out


class TestBackupRestoreCycle:
    def test_single_version_round_trip(self, tmp_path, source_tree):
        repo = str(tmp_path / "repo")
        assert main(["backup", repo, str(source_tree), "--tag", "v1"]) == 0
        target = str(tmp_path / "out")
        assert main(["restore", repo, "1", target]) == 0
        assert read_tree(source_tree) == read_tree(target)

    def test_incremental_backup_deduplicates(self, tmp_path, source_tree, capsys):
        repo = str(tmp_path / "repo")
        main(["backup", repo, str(source_tree)])
        capsys.readouterr()
        # Small mutation, then back up again.
        data = bytearray((source_tree / "f1.bin").read_bytes())
        data[100:110] = b"0123456789"
        (source_tree / "f1.bin").write_bytes(bytes(data))
        main(["backup", repo, str(source_tree)])
        out = capsys.readouterr().out
        assert "duplicates" in out
        # Most chunks deduplicated against version 1.
        duplicates = int(out.split("(")[1].split(" ")[0])
        assert duplicates > 0

    def test_multi_version_restore_each(self, tmp_path, source_tree):
        repo = str(tmp_path / "repo")
        trees = []
        for k in range(3):
            trees.append(read_tree(source_tree))
            main(["backup", repo, str(source_tree)])
            (source_tree / f"new{k}.bin").write_bytes(bytes([k]) * 5000)
        for version in (1, 2, 3):
            target = str(tmp_path / f"out{version}")
            assert main(["restore", repo, str(version), target]) == 0
            assert read_tree(target) == trees[version - 1]

    def test_versions_and_stats_commands(self, tmp_path, source_tree, capsys):
        repo = str(tmp_path / "repo")
        main(["backup", repo, str(source_tree), "--tag", "nightly"])
        capsys.readouterr()
        assert main(["versions", repo]) == 0
        out = capsys.readouterr().out
        assert "nightly" in out
        assert main(["stats", repo]) == 0
        out = capsys.readouterr().out
        assert "dedup ratio" in out

    def test_delete_oldest(self, tmp_path, source_tree, capsys):
        repo = str(tmp_path / "repo")
        main(["backup", repo, str(source_tree)])
        (source_tree / "f0.bin").write_bytes(b"changed" * 1000)
        main(["backup", repo, str(source_tree)])
        capsys.readouterr()
        assert main(["delete-oldest", repo]) == 0
        out = capsys.readouterr().out
        assert "deleted version 1" in out
        # Version 2 still restores after the expiry.
        target = str(tmp_path / "out")
        assert main(["restore", repo, "2", target]) == 0
        assert read_tree(target) == read_tree(source_tree)


class TestVerifyAndCheckpoint:
    def test_verify_clean_repo(self, tmp_path, source_tree, capsys):
        repo = str(tmp_path / "repo")
        main(["backup", repo, str(source_tree)])
        capsys.readouterr()
        assert main(["verify", repo]) == 0
        assert "OK" in capsys.readouterr().out

    def test_checkpoint_written_and_reused(self, tmp_path, source_tree, capsys):
        repo = str(tmp_path / "repo")
        main(["backup", repo, str(source_tree)])
        assert os.path.exists(os.path.join(repo, "checkpoint.json"))
        capsys.readouterr()
        # Second, identical backup is fully deduplicated via the checkpoint.
        main(["backup", repo, str(source_tree)])
        out = capsys.readouterr().out
        duplicates = int(out.split("(")[1].split(" ")[0])
        chunks = int(out.split(": ")[1].split(" ")[0])
        assert duplicates == chunks

    def test_verify_detects_damage(self, tmp_path, source_tree, capsys):
        repo = str(tmp_path / "repo")
        main(["backup", repo, str(source_tree)])
        main(["backup", repo, str(source_tree)])  # archives v1's containers
        containers = os.path.join(repo, "containers")
        victims = sorted(os.listdir(containers))
        if victims:
            os.remove(os.path.join(containers, victims[0]))
            capsys.readouterr()
            assert main(["verify", repo]) == 1


class TestStatsDetailAndCompression:
    def test_stats_detail_table(self, tmp_path, source_tree, capsys):
        repo = str(tmp_path / "repo")
        main(["backup", repo, str(source_tree)])
        capsys.readouterr()
        assert main(["stats", repo, "--detail"]) == 0
        out = capsys.readouterr().out
        assert "CFL" in out and "best sf" in out

    def test_compressed_repo_round_trips(self, tmp_path, capsys):
        src = tmp_path / "src"
        src.mkdir()
        (src / "text.log").write_bytes(b"very compressible line\n" * 5000)
        repo = str(tmp_path / "repo")
        assert main(["backup", repo, str(src), "--compress"]) == 0
        target = str(tmp_path / "out")
        assert main(["restore", repo, "1", target]) == 0
        assert (tmp_path / "out" / "text.log").read_bytes() == (src / "text.log").read_bytes()
        # Compressed container files are much smaller than the payload.
        containers = os.path.join(repo, "containers")
        on_disk = sum(
            os.path.getsize(os.path.join(containers, n)) for n in os.listdir(containers)
        )
        assert on_disk < 5000 * 23 / 5


class TestResearchTooling:
    def test_trace_generate_and_stats(self, tmp_path, capsys):
        trace = str(tmp_path / "k.trace")
        assert main(["trace-generate", "kernel", trace, "--versions", "5",
                     "--chunks", "200"]) == 0
        assert os.path.exists(trace)
        capsys.readouterr()
        assert main(["trace-stats", trace]) == 0
        out = capsys.readouterr().out
        assert "recommended depth" in out

    def test_observe(self, tmp_path, capsys):
        trace = str(tmp_path / "k.trace")
        main(["trace-generate", "kernel", trace, "--versions", "4", "--chunks", "150"])
        capsys.readouterr()
        assert main(["observe", trace, "--tags", "3"]) == 0
        out = capsys.readouterr().out
        assert "V1" in out and "v4" in out

    def test_simulate_to_csv(self, tmp_path, capsys):
        out_csv = str(tmp_path / "rows.csv")
        assert main([
            "simulate", "--schemes", "exact,hidestore", "--presets", "kernel",
            "--versions", "4", "--chunks", "150", "--container-size", "64KiB",
            "--output", out_csv,
        ]) == 0
        with open(out_csv) as handle:
            lines = handle.read().strip().splitlines()
        assert len(lines) == 3  # header + 2 rows
        assert lines[0].startswith("scheme,workload")


class TestErrorPaths:
    def test_backup_empty_source_fails(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert main(["backup", str(tmp_path / "repo"), str(empty)]) == 1

    def test_restore_unknown_version_fails(self, tmp_path, source_tree):
        repo = str(tmp_path / "repo")
        main(["backup", repo, str(source_tree)])
        assert main(["restore", repo, "9", str(tmp_path / "out")]) == 1

    def test_delete_from_empty_repo_fails(self, tmp_path):
        repo = str(tmp_path / "repo")
        os.makedirs(os.path.join(repo, "recipes"), exist_ok=True)
        assert main(["delete-oldest", repo]) == 1
