"""Tests for the active-container pool and chunk filter (§4.2, Figure 6)."""

import pytest

from repro.chunking.stream import Chunk, synthetic_fingerprint as fp
from repro.core.chunk_filter import ActiveContainerPool
from repro.core.double_cache import CacheEntry
from repro.errors import StorageError, UnknownContainerError
from repro.storage.container_store import MemoryContainerStore

KB = 1024


def make_pool(capacity=8 * KB, threshold=0.5):
    store = MemoryContainerStore(capacity=capacity)
    return ActiveContainerPool(store, compaction_threshold=threshold), store


def put(pool, token, size=KB):
    return pool.store_chunk(Chunk(fp(token), size))


class TestStoreChunk:
    def test_fills_open_container_then_rolls(self):
        pool, _ = make_pool(capacity=4 * KB)
        cids = [put(pool, t) for t in range(6)]
        assert cids == [1, 1, 1, 1, 2, 2]
        assert pool.container_count() == 2

    def test_location_map_tracks_chunks(self):
        pool, _ = make_pool()
        put(pool, 1)
        assert pool.location[fp(1)] == 1

    def test_oversized_chunk_rejected(self):
        pool, _ = make_pool(capacity=2 * KB)
        with pytest.raises(StorageError):
            put(pool, 1, size=3 * KB)

    def test_hot_bytes(self):
        pool, _ = make_pool()
        put(pool, 1)
        put(pool, 2)
        assert pool.hot_bytes() == 2 * KB


class TestDemote:
    def test_moves_cold_to_archival(self):
        pool, store = make_pool(capacity=4 * KB)
        for t in range(4):
            put(pool, t)
        pool.end_version()
        cold = {fp(1): CacheEntry(KB, 1), fp(3): CacheEntry(KB, 1)}
        moved, written = pool.demote(cold)
        assert set(moved) == {fp(1), fp(3)}
        assert len(written) == 1
        archived = store.peek(written[0])
        assert fp(1) in archived and fp(3) in archived
        assert archived.sealed

    def test_demoted_chunks_leave_active_pool(self):
        pool, _ = make_pool(capacity=4 * KB)
        for t in range(4):
            put(pool, t)
        pool.end_version()
        pool.demote({fp(1): CacheEntry(KB, 1)})
        assert fp(1) not in pool.location
        assert fp(0) in pool.location

    def test_emptied_active_containers_dropped(self):
        pool, _ = make_pool(capacity=2 * KB)
        put(pool, 1)
        put(pool, 2)  # container 1 full
        put(pool, 3)  # container 2
        pool.end_version()
        pool.demote({fp(1): CacheEntry(KB, 1), fp(2): CacheEntry(KB, 1)})
        assert 1 not in pool
        assert pool.container_count() == 1

    def test_already_archival_entry_skipped(self):
        pool, store = make_pool(capacity=4 * KB)
        # Simulate a primed cache entry pointing at an archival container.
        archive = store.allocate()
        archive.add(Chunk(fp(9), KB))
        store.write(archive)
        moved, written = pool.demote({fp(9): CacheEntry(KB, archive.container_id)})
        assert moved == {fp(9): archive.container_id}
        assert written == []

    def test_unknown_container_raises(self):
        pool, _ = make_pool()
        with pytest.raises(UnknownContainerError):
            pool.demote({fp(1): CacheEntry(KB, 77)})

    def test_stats_track_moves(self):
        pool, _ = make_pool(capacity=4 * KB)
        for t in range(4):
            put(pool, t)
        pool.end_version()
        pool.demote({fp(0): CacheEntry(KB, 1)})
        assert pool.stats.cold_chunks_moved == 1
        assert pool.stats.cold_bytes_moved == KB
        assert pool.stats.archival_containers_written == 1
        assert pool.stats.move_seconds > 0

    def test_multi_container_demotion(self):
        pool, store = make_pool(capacity=2 * KB)
        for t in range(8):
            put(pool, t)
        pool.end_version()
        cold = {fp(t): CacheEntry(KB, 1 + t // 2) for t in range(6)}
        moved, written = pool.demote(cold)
        assert len(moved) == 6
        # 6 KB of cold chunks at 2 KB capacity -> 3 archival containers.
        assert len(written) == 3


class TestCompact:
    def test_merges_sparse_containers(self):
        pool, _ = make_pool(capacity=4 * KB, threshold=0.6)
        for t in range(8):
            put(pool, t)  # two full containers
        pool.end_version()
        # Demote half of each container -> both 50% utilised (sparse).
        pool.demote({fp(t): CacheEntry(KB, 1 + t // 4) for t in (0, 1, 4, 5)})
        assert pool.container_count() == 2
        relocations = pool.compact()
        assert set(relocations) == {fp(2), fp(3), fp(6), fp(7)}
        assert pool.container_count() == 1
        merged_cid = next(iter(relocations.values()))
        assert all(cid == merged_cid for cid in relocations.values())
        assert pool.location[fp(2)] == merged_cid

    def test_single_sparse_container_not_churned(self):
        pool, _ = make_pool(capacity=4 * KB, threshold=0.9)
        put(pool, 1)
        pool.end_version()
        assert pool.compact() == {}

    def test_dense_containers_untouched(self):
        pool, _ = make_pool(capacity=4 * KB, threshold=0.5)
        for t in range(8):
            put(pool, t)
        pool.end_version()
        assert pool.compact() == {}
        assert pool.container_count() == 2

    def test_stats_track_compactions(self):
        pool, _ = make_pool(capacity=4 * KB, threshold=0.6)
        for t in range(8):
            put(pool, t)
        pool.end_version()
        pool.demote({fp(t): CacheEntry(KB, 1 + t // 4) for t in (0, 1, 4, 5)})
        pool.compact()
        assert pool.stats.compactions == 1
        assert pool.stats.containers_merged == 2

    def test_invalid_threshold_rejected(self):
        store = MemoryContainerStore()
        with pytest.raises(StorageError):
            ActiveContainerPool(store, compaction_threshold=1.5)


class TestReadPath:
    def test_read_bills_container_read(self):
        pool, store = make_pool()
        put(pool, 1)
        before = store.stats.snapshot()
        container = pool.read(1)
        assert fp(1) in container
        assert store.stats.delta(before).container_reads == 1

    def test_read_unknown_raises(self):
        pool, _ = make_pool()
        with pytest.raises(UnknownContainerError):
            pool.read(42)

    def test_utilizations(self):
        pool, _ = make_pool(capacity=4 * KB)
        put(pool, 1)
        assert pool.utilizations() == [0.25]
