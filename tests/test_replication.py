"""Replication & disaster-recovery subsystem tests.

Covers the planner's O(delta) diffing, the crash-safe sync session
(interrupt + resume without re-shipping, mirror never observable torn),
self-sync rejection, deletion propagation via §4.5 expiry tags, the
``REPLICATE_*`` wire path against a real daemon, verifiable repair from
local and remote mirrors, the registry lock semantics replication must
respect, and the CLI command surface.
"""

import asyncio
import glob
import os
import threading

import pytest

from repro.client.protocol import FrameType
from repro.errors import ReplicationError, ReproError
from repro.observability import MetricsRegistry
from repro.replication import (
    LocalMirror,
    ObjectRef,
    RemoteMirror,
    ReplicationSession,
    SyncPlanner,
    capture_state,
    repair_from_mirror,
    scan_containers,
)
from repro.replication.repair import check_container_blob, verify_repository
from repro.replication.state import validate_object
from repro.repository import LocalRepository, materialize, read_tree
from repro.server import BackupDaemon, DaemonThread


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------
def _write_tree(base, files):
    os.makedirs(base, exist_ok=True)
    for rel, payload in files.items():
        path = os.path.join(base, rel)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "wb") as handle:
            handle.write(payload)


def _blob(seed: int, size: int = 200_000) -> bytes:
    import random

    return random.Random(seed).randbytes(size)


def _build_repo(root, src, versions=3):
    """A repository with ``versions`` backups of a mutating tree.

    Returns (repository, {version_id: {rel: payload}}).
    """
    repo = LocalRepository(str(root))
    files = {"a/one.bin": _blob(1), "two.bin": _blob(2)}
    contents = {}
    for v in range(1, versions + 1):
        if v > 1:
            files = dict(files, **{f"delta{v}.bin": _blob(10 + v)})
            files["two.bin"] = files["two.bin"] + _blob(100 + v, 50_000)
        _write_tree(str(src), files)
        repo.backup_tree(read_tree(str(src)), tag=f"v{v}")
        contents[v] = dict(files)
    return repo, contents


def _restore_files(repo_root, version, out):
    repo = LocalRepository(str(repo_root))
    plan, data = repo.restore(version)
    materialize(plan, data, str(out))
    return {rel: open(path, "rb").read() for rel, path in read_tree(str(out))}


def _assert_mirror_serves(mirror_root, contents, tmp_path, label):
    for version, files in contents.items():
        out = tmp_path / f"out-{label}-{version}"
        restored = _restore_files(mirror_root, version, out)
        assert restored == files, (
            f"mirror restore of version {version} not byte-identical ({label})"
        )


class FlakyTarget:
    """A LocalMirror that dies after ``fail_after`` puts (crash injection)."""

    def __init__(self, root, fail_after):
        self.inner = LocalMirror(str(root))
        self.remaining = fail_after

    def state(self):
        return self.inner.state()

    def put(self, kind, name, blob, staged=False):
        if self.remaining <= 0:
            raise ConnectionError("mirror link died mid-sync")
        self.remaining -= 1
        self.inner.put(kind, name, blob, staged)

    def commit(self, renames, deletes):
        self.inner.commit(renames, deletes)

    def fetch(self, kind, name):
        return self.inner.fetch(kind, name)

    def identity(self):
        return self.inner.identity()

    def close(self):
        pass


# ----------------------------------------------------------------------
# Planner
# ----------------------------------------------------------------------
class TestSyncPlanner:
    def _state(self, containers={}, recipes={}, manifests={}, checkpoint={}):
        return {
            "containers": dict(containers),
            "recipes": dict(recipes),
            "manifests": dict(manifests),
            "checkpoint": dict(checkpoint),
        }

    def test_empty_to_empty(self):
        plan = SyncPlanner().plan(self._state(), self._state())
        assert plan.empty and not plan.needs_commit

    def test_full_seed_ships_everything_in_order(self):
        source = self._state(
            containers={"container-00000001.hdsc": {"size": 10}},
            recipes={"recipe-00000001.hdsr": {"size": 5, "digest": "aa"}},
            manifests={"manifest-00000001.txt": {"size": 3, "digest": "bb"}},
            checkpoint={"checkpoint.json": {"size": 7, "digest": "cc"}},
        )
        plan = SyncPlanner().plan(source, self._state())
        kinds = [a.kind for a in plan.ships]
        assert kinds == ["container", "manifest", "recipe", "checkpoint"]
        # Recipes and the checkpoint stage; containers/manifests go direct.
        assert [a.staged for a in plan.ships] == [False, False, True, True]
        # Commit flips recipes first, checkpoint last.
        assert [r.kind for r in plan.renames] == ["recipe", "checkpoint"]
        assert plan.containers_skipped == 0
        assert plan.bytes_to_ship == 25

    def test_incremental_skips_present_containers(self):
        source = self._state(
            containers={
                "container-00000001.hdsc": {"size": 10},
                "container-00000002.hdsc": {"size": 20},
            },
        )
        target = self._state(containers={"container-00000001.hdsc": {"size": 10}})
        plan = SyncPlanner().plan(source, target)
        assert [a.name for a in plan.ships] == ["container-00000002.hdsc"]
        assert plan.containers_skipped == 1

    def test_size_mismatch_reships_container(self):
        source = self._state(containers={"container-00000001.hdsc": {"size": 10}})
        target = self._state(containers={"container-00000001.hdsc": {"size": 9}})
        plan = SyncPlanner().plan(source, target)
        assert [a.name for a in plan.ships] == ["container-00000001.hdsc"]
        assert plan.containers_skipped == 0

    def test_digest_change_reships_recipe(self):
        source = self._state(recipes={"recipe-00000001.hdsr": {"size": 5, "digest": "new"}})
        target = self._state(recipes={"recipe-00000001.hdsr": {"size": 5, "digest": "old"}})
        plan = SyncPlanner().plan(source, target)
        assert [(a.kind, a.staged) for a in plan.ships] == [("recipe", True)]
        assert plan.renames == [ObjectRef("recipe", "recipe-00000001.hdsr")]

    def test_expired_objects_delete_in_safe_order(self):
        target = self._state(
            containers={"container-00000001.hdsc": {"size": 10}},
            recipes={"recipe-00000001.hdsr": {"size": 5, "digest": "aa"}},
            manifests={"manifest-00000001.txt": {"size": 3, "digest": "bb"}},
        )
        plan = SyncPlanner().plan(self._state(), target)
        assert [d.kind for d in plan.deletes] == ["recipe", "manifest", "container"]
        assert plan.needs_commit and not plan.ships

    def test_unchanged_state_plans_nothing(self):
        state = self._state(
            containers={"container-00000001.hdsc": {"size": 10}},
            recipes={"recipe-00000001.hdsr": {"size": 5, "digest": "aa"}},
            checkpoint={"checkpoint.json": {"size": 7, "digest": "cc"}},
        )
        plan = SyncPlanner().plan(state, state)
        assert plan.empty and plan.containers_skipped == 1


def test_validate_object_rejects_traversal_names():
    for kind, name in [
        ("container", "../evil.hdsc"),
        ("container", "container-1.hdsc"),
        ("recipe", "recipe-00000001.hdsr.staged"),
        ("checkpoint", "other.json"),
        ("nonsense", "container-00000001.hdsc"),
    ]:
        with pytest.raises(ReplicationError):
            validate_object(kind, name)


def test_replicate_frame_values_are_wire_stable():
    assert FrameType.REPLICATE_STATE == 18
    assert FrameType.REPLICATE_STATE_OK == 19
    assert FrameType.REPLICATE_PUT == 20
    assert FrameType.REPLICATE_PUT_OK == 21
    assert FrameType.REPLICATE_COMMIT == 22
    assert FrameType.REPLICATE_COMMIT_OK == 23
    assert FrameType.REPLICATE_FETCH == 24
    assert FrameType.REPLICATE_OBJECT == 25
    assert FrameType.VERIFY == 26
    assert FrameType.VERIFY_OK == 27


# ----------------------------------------------------------------------
# Local sync sessions
# ----------------------------------------------------------------------
class TestLocalSync:
    def test_full_then_incremental_is_o_delta(self, tmp_path):
        repo, contents = _build_repo(tmp_path / "repo", tmp_path / "src", versions=2)
        mirror_root = tmp_path / "mirror"
        metrics = MetricsRegistry()

        first = ReplicationSession(
            str(tmp_path / "repo"), LocalMirror(str(mirror_root)), metrics=metrics
        ).run()
        assert first.containers_shipped > 0 and first.committed
        shipped_before = first.containers_shipped
        _assert_mirror_serves(mirror_root, contents, tmp_path, "seed")

        # One more backup: the next sync must ship only the new delta.
        files = dict(contents[2], extra=_blob(77))
        _write_tree(str(tmp_path / "src"), files)
        repo.backup_tree(read_tree(str(tmp_path / "src")), tag="v3")
        contents[3] = files

        second = ReplicationSession(
            str(tmp_path / "repo"), LocalMirror(str(mirror_root)), metrics=metrics
        ).run()
        total = len(capture_state(str(tmp_path / "repo"))["containers"])
        assert second.containers_skipped == shipped_before
        assert second.containers_shipped == total - shipped_before
        counters = metrics.snapshot()["counters"]
        assert counters["replication.containers_skipped"] == shipped_before
        assert counters["replication.containers_shipped"] == total
        assert counters["replication.syncs_total"] == 2
        _assert_mirror_serves(mirror_root, contents, tmp_path, "incr")

    def test_steady_state_sync_ships_nothing(self, tmp_path):
        _build_repo(tmp_path / "repo", tmp_path / "src", versions=2)
        mirror = LocalMirror(str(tmp_path / "mirror"))
        ReplicationSession(str(tmp_path / "repo"), mirror, journal="").run()
        again = ReplicationSession(str(tmp_path / "repo"), mirror, journal="").run()
        assert again.objects_shipped == 0 and not again.committed

    def test_deletion_propagates_next_sync(self, tmp_path):
        repo, contents = _build_repo(tmp_path / "repo", tmp_path / "src", versions=3)
        mirror_root = tmp_path / "mirror"
        ReplicationSession(str(tmp_path / "repo"), LocalMirror(str(mirror_root))).run()

        repo.delete_oldest()
        report = ReplicationSession(
            str(tmp_path / "repo"), LocalMirror(str(mirror_root))
        ).run()
        assert report.objects_deleted > 0
        mirrored = LocalRepository(str(mirror_root)).versions()
        assert [row["version_id"] for row in mirrored] == [2, 3]
        del contents[1]
        _assert_mirror_serves(mirror_root, contents, tmp_path, "afterdel")

    def test_interrupted_sync_leaves_mirror_consistent_and_resumes(self, tmp_path):
        repo, contents = _build_repo(tmp_path / "repo", tmp_path / "src", versions=2)
        mirror_root = tmp_path / "mirror"
        ReplicationSession(str(tmp_path / "repo"), LocalMirror(str(mirror_root))).run()
        versions_before = [
            r["version_id"] for r in LocalRepository(str(mirror_root)).versions()
        ]

        files = dict(contents[2], extra=_blob(88, 400_000))
        _write_tree(str(tmp_path / "src"), files)
        repo.backup_tree(read_tree(str(tmp_path / "src")), tag="v3")
        contents[3] = files

        # Kill the link after one put: new containers partially shipped,
        # nothing committed.
        flaky = FlakyTarget(mirror_root, fail_after=1)
        with pytest.raises((ReproError, ConnectionError)):
            ReplicationSession(str(tmp_path / "repo"), flaky, journal="").run()

        # Torn-state check: the mirror still serves exactly its old
        # versions, byte-identically — the interrupted sync is invisible.
        mirror_repo = LocalRepository(str(mirror_root))
        mirror_repo.invalidate()
        assert [
            r["version_id"] for r in mirror_repo.versions()
        ] == versions_before
        _assert_mirror_serves(
            mirror_root, {v: contents[v] for v in versions_before}, tmp_path, "torn"
        )

        # Resume: the re-diff skips every container that already landed.
        metrics = MetricsRegistry()
        resumed = ReplicationSession(
            str(tmp_path / "repo"), LocalMirror(str(mirror_root)), metrics=metrics
        ).run()
        total = len(capture_state(str(tmp_path / "repo"))["containers"])
        assert resumed.containers_shipped + resumed.containers_skipped == total
        assert resumed.containers_skipped > 0, "resume re-shipped completed containers"
        assert resumed.committed
        _assert_mirror_serves(mirror_root, contents, tmp_path, "resumed")

    def test_self_sync_rejected(self, tmp_path):
        _build_repo(tmp_path / "repo", tmp_path / "src", versions=1)
        session = ReplicationSession(
            str(tmp_path / "repo"), LocalMirror(str(tmp_path / "repo"))
        )
        with pytest.raises(ReplicationError, match="self-sync"):
            session.run()
        # Symlinked paths resolve to the same directory too.
        link = tmp_path / "repo-link"
        os.symlink(tmp_path / "repo", link)
        with pytest.raises(ReplicationError, match="self-sync"):
            ReplicationSession(str(tmp_path / "repo"), LocalMirror(str(link))).run()

    def test_journal_records_the_run(self, tmp_path):
        import json

        _build_repo(tmp_path / "repo", tmp_path / "src", versions=1)
        session = ReplicationSession(
            str(tmp_path / "repo"), LocalMirror(str(tmp_path / "mirror"))
        )
        session.run()
        assert session.journal_path and os.path.exists(session.journal_path)
        with open(session.journal_path, encoding="utf-8") as handle:
            events = [json.loads(line) for line in handle]
        assert events[0]["event"] == "sync_begin"
        assert events[-1]["event"] == "sync_end"
        assert any(e["event"] == "ship" for e in events)
        assert any(e["event"] == "commit" for e in events)

    def test_source_mutation_mid_sync_detected(self, tmp_path):
        _build_repo(tmp_path / "repo", tmp_path / "src", versions=1)

        class MutatingTarget(LocalMirror):
            """Rewrites the source checkpoint between diff and ship."""

            def __init__(self, root, source_root):
                super().__init__(root)
                self.source_root = source_root

            def state(self):
                state = super().state()
                checkpoint = os.path.join(self.source_root, "checkpoint.json")
                with open(checkpoint, "r+", encoding="utf-8") as handle:
                    doc = handle.read()
                    handle.seek(0)
                    handle.write(doc + " ")
                return state

        target = MutatingTarget(str(tmp_path / "mirror"), str(tmp_path / "repo"))
        with pytest.raises(ReplicationError, match="changed while syncing"):
            ReplicationSession(str(tmp_path / "repo"), target, journal="").run()


# ----------------------------------------------------------------------
# Remote sync over the wire
# ----------------------------------------------------------------------
class TestRemoteSync:
    def test_failover_restore_from_mirror_daemon(self, tmp_path):
        _, contents = _build_repo(tmp_path / "repo", tmp_path / "src", versions=3)
        served = tmp_path / "served"
        with DaemonThread(str(served)) as address:
            mirror = RemoteMirror(address, "mirror")
            try:
                report = ReplicationSession(str(tmp_path / "repo"), mirror).run()
                assert report.committed and report.containers_shipped > 0
                again = ReplicationSession(str(tmp_path / "repo"), mirror).run()
                assert again.objects_shipped == 0
                assert again.containers_skipped == report.containers_shipped
            finally:
                mirror.close()
            # Failover restore over the wire: every version byte-identical.
            from repro.client import RemoteRepository

            with RemoteRepository(address, "mirror") as remote:
                for version, files in contents.items():
                    plan, data = remote.restore(version)
                    out = tmp_path / f"wire-out-{version}"
                    materialize(plan, data, str(out))
                    restored = {
                        rel: open(path, "rb").read()
                        for rel, path in read_tree(str(out))
                    }
                    assert restored == files

        # Persistence: a fresh daemon over the same root still serves it.
        with DaemonThread(str(served)) as address:
            from repro.client import RemoteRepository

            with RemoteRepository(address, "mirror") as remote:
                rows = remote.versions()
                assert [row["version_id"] for row in rows] == sorted(contents)
                doc = remote.verify(deep=True)
                assert doc["ok"], doc

    def test_remote_self_sync_rejected_same_daemon_tenant(self, tmp_path):
        served = tmp_path / "served"
        tenant_root = served / "tenant"
        _build_repo(tenant_root, tmp_path / "src", versions=1)
        with DaemonThread(str(served)) as address:
            mirror = RemoteMirror(address, "tenant")
            try:
                session = ReplicationSession(str(tenant_root), mirror)
                with pytest.raises(ReplicationError, match="self-sync"):
                    session.run()
            finally:
                mirror.close()

    def test_remote_fetch_and_bad_names_rejected(self, tmp_path):
        # versions=2 so at least one archival container has been sealed.
        _build_repo(tmp_path / "repo", tmp_path / "src", versions=2)
        with DaemonThread(str(tmp_path / "served")) as address:
            mirror = RemoteMirror(address, "m")
            try:
                ReplicationSession(str(tmp_path / "repo"), mirror).run()
                name = os.path.basename(
                    sorted(glob.glob(str(tmp_path / "repo/containers/*.hdsc")))[0]
                )
                blob = mirror.fetch("container", name)
                with open(tmp_path / "repo/containers" / name, "rb") as handle:
                    assert handle.read() == blob
                with pytest.raises(ReplicationError):
                    mirror.fetch("container", "../../etc/passwd")
                with pytest.raises(ReplicationError):
                    mirror.fetch("container", "container-99999999.hdsc")
            finally:
                mirror.close()


# ----------------------------------------------------------------------
# Repair
# ----------------------------------------------------------------------
def _first_container(repo_root):
    return sorted(glob.glob(os.path.join(str(repo_root), "containers", "*.hdsc")))[0]


def _flip_payload_byte(path):
    with open(path, "rb") as handle:
        blob = bytearray(handle.read())
    blob[-4] ^= 0xFF  # payload region sits at the end of the file
    with open(path, "wb") as handle:
        handle.write(bytes(blob))


class TestRepair:
    @pytest.fixture
    def mirrored(self, tmp_path):
        # versions=3 seals two distinct archival containers, so tests can
        # damage two different files.
        _, contents = _build_repo(tmp_path / "repo", tmp_path / "src", versions=3)
        ReplicationSession(
            str(tmp_path / "repo"), LocalMirror(str(tmp_path / "mirror"))
        ).run()
        return tmp_path, contents

    def test_payload_bitflip_caught_only_by_deep_verify_then_repaired(self, mirrored):
        tmp_path, contents = mirrored
        victim = _first_container(tmp_path / "repo")
        _flip_payload_byte(victim)
        # The container still unpacks — shallow verification is blind to
        # the flip; deep payload re-hashing is the whole point.
        assert verify_repository(str(tmp_path / "repo"), deep=False).ok
        assert not verify_repository(str(tmp_path / "repo"), deep=True).ok

        report = repair_from_mirror(
            str(tmp_path / "repo"), LocalMirror(str(tmp_path / "mirror"))
        )
        assert report.ok and report.repaired == [os.path.basename(victim)]
        assert verify_repository(str(tmp_path / "repo"), deep=True).ok
        _assert_mirror_serves(tmp_path / "repo", contents, tmp_path, "repaired")

    def test_truncated_and_missing_containers_repaired(self, mirrored):
        tmp_path, contents = mirrored
        containers = sorted(
            glob.glob(str(tmp_path / "repo" / "containers" / "*.hdsc"))
        )
        with open(containers[0], "r+b") as handle:
            handle.truncate(10)
        os.remove(containers[-1])
        scanned, bad = scan_containers(str(tmp_path / "repo"))
        assert set(bad) == {os.path.basename(containers[0]), os.path.basename(containers[-1])}
        assert bad[os.path.basename(containers[-1])] == "missing"

        report = repair_from_mirror(
            str(tmp_path / "repo"), LocalMirror(str(tmp_path / "mirror"))
        )
        assert report.ok and len(report.repaired) == 2
        assert verify_repository(str(tmp_path / "repo"), deep=True).ok
        _assert_mirror_serves(tmp_path / "repo", contents, tmp_path, "refetched")

    def test_corrupt_mirror_copy_rejected_not_installed(self, mirrored):
        tmp_path, _ = mirrored
        victim = _first_container(tmp_path / "repo")
        _flip_payload_byte(victim)
        twin = os.path.join(
            str(tmp_path / "mirror"), "containers", os.path.basename(victim)
        )
        _flip_payload_byte(twin)  # mirror damaged too, differently placed

        with open(victim, "rb") as handle:
            before = handle.read()
        report = repair_from_mirror(
            str(tmp_path / "repo"), LocalMirror(str(tmp_path / "mirror"))
        )
        assert not report.ok
        assert os.path.basename(victim) in report.unrepaired
        with open(victim, "rb") as handle:
            assert handle.read() == before, "repair installed an invalid blob"

    def test_repair_from_remote_mirror(self, mirrored):
        tmp_path, contents = mirrored
        served = tmp_path / "served"
        with DaemonThread(str(served)) as address:
            mirror = RemoteMirror(address, "mirror")
            try:
                ReplicationSession(str(tmp_path / "repo"), mirror).run()
                victim = _first_container(tmp_path / "repo")
                _flip_payload_byte(victim)
                report = repair_from_mirror(str(tmp_path / "repo"), mirror)
                assert report.ok and report.repaired == [os.path.basename(victim)]
            finally:
                mirror.close()
        assert verify_repository(str(tmp_path / "repo"), deep=True).ok

    def test_self_repair_rejected(self, mirrored):
        tmp_path, _ = mirrored
        with pytest.raises(ReplicationError, match="repair"):
            repair_from_mirror(
                str(tmp_path / "repo"), LocalMirror(str(tmp_path / "repo"))
            )

    def test_check_container_blob_verdicts(self, mirrored):
        tmp_path, _ = mirrored
        victim = _first_container(tmp_path / "repo")
        cid = int(os.path.basename(victim)[len("container-") : -len(".hdsc")])
        with open(victim, "rb") as handle:
            blob = handle.read()
        assert check_container_blob(blob, cid) is None
        assert "unreadable" in check_container_blob(b"garbage", cid)
        assert "unreadable" in check_container_blob(blob, cid + 1)  # wrong ID
        flipped = bytearray(blob)
        flipped[-4] ^= 0xFF
        assert "re-hash" in check_container_blob(bytes(flipped), cid)
        assert check_container_blob(bytes(flipped), cid, deep=False) is None


# ----------------------------------------------------------------------
# Registry lock semantics under replication (the daemon's reader lock)
# ----------------------------------------------------------------------
class GatedTarget:
    """A LocalMirror whose first put blocks until the test releases it."""

    def __init__(self, root):
        self.inner = LocalMirror(str(root))
        self.entered = threading.Event()
        self.gate = threading.Event()

    def state(self):
        return self.inner.state()

    def put(self, kind, name, blob, staged=False):
        self.entered.set()
        assert self.gate.wait(timeout=30), "test never released the gated mirror"
        self.inner.put(kind, name, blob, staged)

    def commit(self, renames, deletes):
        self.inner.commit(renames, deletes)

    def fetch(self, kind, name):
        return self.inner.fetch(kind, name)

    def identity(self):
        return self.inner.identity()

    def close(self):
        pass


def test_replication_lock_semantics(tmp_path):
    """Sync under the reader lock: restores run concurrently, deletion
    waits, the deletion propagates on the next sync, nothing deadlocks."""

    async def scenario():
        daemon = BackupDaemon(str(tmp_path / "root"))
        tenant_root = os.path.join(str(tmp_path / "root"), "tenant")
        _build_repo(tenant_root, tmp_path / "src", versions=2)
        handle = daemon.registry.get("tenant")
        target = GatedTarget(tmp_path / "mirror")

        sync_task = asyncio.ensure_future(daemon.replicate_tenant("tenant", target))
        await asyncio.to_thread(target.entered.wait, 10)

        # A reader proceeds while the sync holds the read lock.
        async with handle.lock.read_locked():
            rows = await asyncio.to_thread(handle.repository.versions)
        assert [row["version_id"] for row in rows] == [1, 2]

        # A writer (delete_oldest) must wait for the in-flight sync.
        async def delete_oldest():
            async with handle.lock.write_locked():
                return await asyncio.to_thread(handle.repository.delete_oldest)

        delete_task = asyncio.ensure_future(delete_oldest())
        await asyncio.sleep(0.3)
        assert not delete_task.done(), (
            "delete_oldest ran during an in-flight sync (snapshot torn)"
        )

        target.gate.set()
        report = await asyncio.wait_for(sync_task, timeout=60)
        assert report.committed
        deleted = await asyncio.wait_for(delete_task, timeout=60)
        assert deleted["version_id"] == 1

        # The sync that ran concurrently saw the pre-delete snapshot...
        mirrored = LocalRepository(str(tmp_path / "mirror"))
        assert [r["version_id"] for r in mirrored.versions()] == [1, 2]
        # ...and the deletion propagates on the next sync.
        follow_up = await asyncio.wait_for(
            daemon.replicate_tenant("tenant", target.inner), timeout=60
        )
        assert follow_up.objects_deleted > 0
        mirrored.invalidate()
        assert [r["version_id"] for r in mirrored.versions()] == [2]

    asyncio.run(asyncio.wait_for(scenario(), timeout=120))


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
class TestReplicationCli:
    def test_replicate_repair_verify_roundtrip(self, tmp_path, capsys):
        from repro.cli import main

        _, contents = _build_repo(tmp_path / "repo", tmp_path / "src", versions=2)
        repo, mirror = str(tmp_path / "repo"), str(tmp_path / "mirror")

        assert main(["replicate", repo, mirror, "--dry-run"]) == 0
        assert "would ship" in capsys.readouterr().out
        assert main(["replicate", repo, mirror]) == 0
        assert main(["verify", mirror, "--deep"]) == 0

        victim = _first_container(repo)
        _flip_payload_byte(victim)
        assert main(["verify", repo]) == 0  # shallow misses payload flips
        assert main(["verify", repo, "--deep"]) == 1
        assert main(["repair", repo, "--from", mirror]) == 0
        assert main(["verify", repo, "--deep"]) == 0

    def test_replicate_rejects_source_as_target(self, tmp_path):
        from repro.cli import main

        _build_repo(tmp_path / "repo", tmp_path / "src", versions=1)
        repo = str(tmp_path / "repo")
        assert main(["replicate", repo, repo]) == 1
        assert main(["repair", repo, "--from", repo]) == 1

    def test_remote_replicate_and_verify(self, tmp_path, capsys):
        from repro.cli import main

        _build_repo(tmp_path / "repo", tmp_path / "src", versions=2)
        repo = str(tmp_path / "repo")
        with DaemonThread(str(tmp_path / "served")) as address:
            assert main(["replicate", repo, "mirror", "--remote", address]) == 0
            assert main(["verify", "mirror", "--remote", address, "--deep"]) == 0
            out = capsys.readouterr().out
            assert "replicated" in out and "OK" in out
