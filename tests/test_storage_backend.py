"""Storage-backend protocol contract: file, SQLite and object-store.

One parametrized suite drives every backend through the same surface —
immutable ``put``, mutable ``put_meta``, ranged ``get_range``, listing,
rename, delete — so a new backend can't drift from the contract the
engine stores and the replication layer rely on.  Also covered here:

* the fake-S3 server's dialect (ranged GETs, conflict PUTs, digests,
  the request log the CI smoke job asserts parallelism from);
* repo-spec parsing (:class:`RepoLocation`) including tiered
  ``?archive=`` specs and per-tenant ``child()`` composition;
* the :class:`ContainerStore` ID-allocation contract (``next_id`` /
  ``reserve_ids`` / resume-above-highest) across every store kind.
"""

import threading

import pytest

from repro.chunking.stream import Chunk, synthetic_fingerprint
from repro.errors import ObjectMissingError, StorageError, UnknownChunkError
from repro.storage.backend import (
    FileBackend,
    RepoLocation,
    SQLiteBackend,
    StorageBackend,
    open_backend,
    parse_repo_spec,
    validate_object_name,
)
from repro.storage.container_store import (
    BackendContainerStore,
    FileContainerStore,
    MemoryContainerStore,
)
from repro.storage.fake_s3 import FakeS3Server
from repro.storage.object_store import ObjectStoreBackend


@pytest.fixture(scope="module")
def s3_server():
    with FakeS3Server("127.0.0.1") as server:
        yield server


@pytest.fixture(params=["file", "sqlite", "s3"])
def backend(request, tmp_path, s3_server):
    if request.param == "file":
        b = FileBackend(str(tmp_path / "objs"))
    elif request.param == "sqlite":
        b = SQLiteBackend(str(tmp_path / "objs.db"))
    else:
        # A fresh prefix per test keeps the shared server's bucket clean.
        b = ObjectStoreBackend(s3_server.url("bucket", f"t-{request.node.name}"))
    yield b
    b.close()


class TestBackendContract:
    def test_satisfies_protocol(self, backend):
        assert isinstance(backend, StorageBackend)

    def test_put_get_round_trip(self, backend):
        backend.put("a/blob", b"payload")
        assert backend.get("a/blob") == b"payload"
        assert backend.exists("a/blob")
        assert backend.size("a/blob") == len(b"payload")

    def test_put_refuses_overwrite(self, backend):
        backend.put("x", b"one")
        with pytest.raises(StorageError):
            backend.put("x", b"two")
        assert backend.get("x") == b"one"

    def test_put_meta_overwrites(self, backend):
        backend.put_meta("m", b"one")
        backend.put_meta("m", b"two")
        assert backend.get("m") == b"two"

    def test_get_missing_raises(self, backend):
        with pytest.raises(ObjectMissingError):
            backend.get("nope")

    def test_get_range(self, backend):
        backend.put("r", b"0123456789")
        assert backend.get_range("r", 2, 3) == b"234"
        assert backend.get_range("r", 0, 10) == b"0123456789"
        assert backend.get_range("r", 8, 100) == b"89"  # clipped at end
        assert backend.get_range("r", 0, 0) == b""

    def test_get_range_missing_raises(self, backend):
        with pytest.raises(ObjectMissingError):
            backend.get_range("nope", 0, 4)

    def test_digest_is_sha256_hex(self, backend):
        import hashlib

        backend.put("d", b"digest me")
        assert backend.digest("d") == hashlib.sha256(b"digest me").hexdigest()

    def test_delete(self, backend):
        backend.put("gone", b"x")
        backend.delete("gone")
        assert not backend.exists("gone")
        with pytest.raises(ObjectMissingError):
            backend.delete("gone")

    def test_list_with_prefix(self, backend):
        backend.put("p/one", b"1")
        backend.put("p/two", b"2")
        backend.put("q/other", b"3")
        assert backend.list("p/") == ["p/one", "p/two"]
        listing = backend.list()
        assert {"p/one", "p/two", "q/other"} <= set(listing)

    def test_rename_replaces(self, backend):
        backend.put_meta("old", b"new-bytes")
        backend.put_meta("target", b"stale")
        backend.rename("old", "target")
        assert backend.get("target") == b"new-bytes"
        assert not backend.exists("old")

    def test_rename_missing_raises(self, backend):
        with pytest.raises(ObjectMissingError):
            backend.rename("absent", "anywhere")

    def test_threaded_reads(self, backend):
        backend.put("shared", bytes(range(256)) * 64)
        results, errors = [], []

        def read(offset):
            try:
                results.append(backend.get_range("shared", offset, 128))
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [threading.Thread(target=read, args=(i * 128,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert sorted(results) == sorted(
            (bytes(range(256)) * 64)[i * 128 : i * 128 + 128] for i in range(8)
        )


class TestObjectNames:
    @pytest.mark.parametrize(
        "bad", ["", "/abs", "a/../b", "..", "a\x00b", "a\nb", "con\\tainers"]
    )
    def test_rejected(self, bad):
        with pytest.raises(StorageError):
            validate_object_name(bad)

    def test_accepted(self):
        validate_object_name("containers/container-00000001.hdsc")
        validate_object_name("checkpoint.json")


class TestFakeS3Dialect:
    def test_conflicting_put_is_412(self, s3_server):
        backend = ObjectStoreBackend(s3_server.url("bucket", "dialect-conflict"))
        backend.put("obj", b"first")
        with pytest.raises(StorageError):
            backend.put("obj", b"second")
        backend.close()

    def test_ranged_get_records(self, s3_server):
        backend = ObjectStoreBackend(s3_server.url("bucket", "dialect-ranged"))
        backend.put("obj", b"0123456789")
        s3_server.clear_log()
        assert backend.get_range("obj", 4, 3) == b"456"
        records = s3_server.ranged_get_records()
        assert len(records) == 1
        assert records[0].range_header == "bytes=4-6"
        assert records[0].status == 206
        backend.close()

    def test_parallel_ranged_gets_tracked(self, s3_server):
        backend = ObjectStoreBackend(s3_server.url("bucket", "dialect-parallel"))
        backend.put("obj", b"x" * 4096)
        s3_server.clear_log()
        s3_server.latency = 0.05
        try:
            threads = [
                threading.Thread(target=backend.get_range, args=("obj", i * 256, 256))
                for i in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        finally:
            s3_server.latency = 0.0
        assert len(s3_server.ranged_get_records()) == 4
        assert s3_server.max_concurrent_ranged_gets() >= 2
        backend.close()

    def test_suffix_and_invalid_ranges(self, s3_server):
        backend = ObjectStoreBackend(s3_server.url("bucket", "dialect-edges"))
        backend.put("obj", b"0123456789")
        # Past-the-end start clips to empty rather than erroring.
        assert backend.get_range("obj", 50, 10) == b""
        backend.close()


class TestRepoLocation:
    def test_bare_path_is_file(self, tmp_path):
        loc = parse_repo_spec(str(tmp_path / "repo"))
        assert loc.scheme == "file"
        assert loc.is_file
        assert loc.archive_url is None

    def test_file_url(self, tmp_path):
        loc = parse_repo_spec(f"file://{tmp_path}/repo")
        assert loc.scheme == "file"
        assert loc.path == str(tmp_path / "repo")

    def test_sqlite_url(self, tmp_path):
        loc = parse_repo_spec(f"sqlite://{tmp_path}/repo.db")
        assert loc.scheme == "sqlite"
        assert not loc.is_file

    def test_s3_url(self):
        loc = parse_repo_spec("s3://127.0.0.1:9000/bucket/pre/fix")
        assert loc.scheme == "s3"

    def test_archive_option(self, tmp_path):
        loc = parse_repo_spec(f"file://{tmp_path}/hot?archive=sqlite://{tmp_path}/cold.db")
        assert loc.scheme == "file"
        assert loc.archive_url == f"sqlite://{tmp_path}/cold.db"
        assert not loc.is_file  # tiered repos never take the plain-file path

    def test_unknown_scheme_rejected(self):
        with pytest.raises(StorageError):
            parse_repo_spec("ftp://host/path")

    def test_unknown_param_rejected(self, tmp_path):
        with pytest.raises(StorageError):
            parse_repo_spec(f"file://{tmp_path}/repo?bogus=1")

    def test_child_specs(self, tmp_path):
        assert RepoLocation(str(tmp_path)).child("t1") == str(tmp_path / "t1")
        assert (
            RepoLocation(f"sqlite://{tmp_path}/tenants").child("t1")
            == f"sqlite://{tmp_path}/tenants/t1.db"
        )
        assert (
            RepoLocation("s3://h:1/bucket/root").child("t1")
            == "s3://h:1/bucket/root/t1"
        )
        tiered = RepoLocation(f"file://{tmp_path}/hot?archive=s3://h:1/b/cold")
        child = parse_repo_spec(tiered.child("t1"))
        assert child.path == str(tmp_path / "hot" / "t1")
        assert child.archive_url == "s3://h:1/b/cold/t1"

    def test_canonical_url_identity(self, tmp_path):
        bare = parse_repo_spec(str(tmp_path / "r"))
        url = parse_repo_spec(f"file://{tmp_path}/r")
        assert bare.canonical_url() == url.canonical_url()

    def test_open_backend_round_trip(self, tmp_path):
        b = open_backend(f"sqlite://{tmp_path}/x.db")
        try:
            b.put("k", b"v")
            assert b.get("k") == b"v"
        finally:
            b.close()


# ----------------------------------------------------------------------
# ContainerStore ID-allocation contract (reserve_ids / next_id resume)
# ----------------------------------------------------------------------
def _fill(container, tokens, size=100):
    for t in tokens:
        container.add(Chunk(synthetic_fingerprint(t), size, bytes([t % 256]) * size))


@pytest.fixture(params=["memory", "file", "sqlite", "s3"])
def id_store_factory(request, tmp_path, s3_server):
    """A factory producing stores over the *same* persistent location."""
    if request.param == "memory":
        store = MemoryContainerStore(capacity=10_000)
        return lambda: store  # memory has no reopen; same instance
    if request.param == "file":
        return lambda: FileContainerStore(str(tmp_path / "c"), capacity=10_000)
    if request.param == "sqlite":
        return lambda: BackendContainerStore(
            SQLiteBackend(str(tmp_path / "c.db")), capacity=10_000
        )
    url = s3_server.url("bucket", f"ids-{request.node.name}")
    return lambda: BackendContainerStore(ObjectStoreBackend(url), capacity=10_000)


class TestIdAllocationContract:
    def test_allocation_starts_at_one_and_is_monotonic(self, id_store_factory):
        store = id_store_factory()
        assert store.next_id == 1
        assert [store.allocate().container_id for _ in range(3)] == [1, 2, 3]
        assert store.next_id == 4

    def test_reserve_ids_moves_forward_only(self, id_store_factory):
        store = id_store_factory()
        store.reserve_ids(10)
        assert store.next_id == 11
        store.reserve_ids(5)  # never backwards
        assert store.next_id == 11
        assert store.allocate().container_id == 11

    def test_reopen_resumes_above_highest_stored_id(self, id_store_factory):
        store = id_store_factory()
        for _ in range(3):
            c = store.allocate()
            _fill(c, [c.container_id])
            store.write(c)
        reopened = id_store_factory()
        assert reopened.next_id >= 4
        c = reopened.allocate()
        _fill(c, [99])
        reopened.write(c)  # must not collide with an existing object

    def test_reserve_then_reopen_keeps_stored_ids_safe(self, id_store_factory):
        store = id_store_factory()
        store.reserve_ids(7)
        c = store.allocate()
        assert c.container_id == 8
        _fill(c, [8])
        store.write(c)
        reopened = id_store_factory()
        # The checkpoint-reload path: reserve from a stored document.
        reopened.reserve_ids(8)
        assert reopened.next_id == 9


# ----------------------------------------------------------------------
# Ranged chunk reads (BackendContainerStore.read_chunks)
# ----------------------------------------------------------------------
class TestReadChunks:
    def _store_with_container(self, backend, compress=False):
        store = BackendContainerStore(backend, capacity=100_000, compress=compress)
        c = store.allocate()
        _fill(c, range(10), size=500)
        store.write(c)
        return store, c.container_id

    def test_matches_full_read(self, tmp_path):
        store, cid = self._store_with_container(SQLiteBackend(str(tmp_path / "c.db")))
        wanted = [synthetic_fingerprint(t) for t in (1, 5, 9)]
        chunks = store.read_chunks(cid, wanted)
        full = store.peek(cid)
        assert chunks is not None
        for fp in wanted:
            assert chunks[fp].data == full.get_chunk(fp).data

    def test_bills_whole_container(self, tmp_path):
        store, cid = self._store_with_container(SQLiteBackend(str(tmp_path / "c.db")))
        before_bytes = store.stats.bytes_read
        before_reads = store.stats.container_reads
        store.read_chunks(cid, [synthetic_fingerprint(1)])
        full = store.peek(cid)
        # Ranged fetch, whole-container billing: one read, all logical bytes.
        assert store.stats.container_reads - before_reads == 1
        assert store.stats.bytes_read - before_bytes == full.used

    def test_unknown_fingerprint_raises(self, tmp_path):
        store, cid = self._store_with_container(SQLiteBackend(str(tmp_path / "c.db")))
        with pytest.raises(UnknownChunkError):
            store.read_chunks(cid, [synthetic_fingerprint(999)])

    def test_compressed_returns_none(self, tmp_path):
        store, cid = self._store_with_container(
            SQLiteBackend(str(tmp_path / "z.db")), compress=True
        )
        assert store.read_chunks(cid, [synthetic_fingerprint(1)]) is None

    def test_file_backend_returns_none(self, tmp_path):
        # FileBackend declines ranged reads (a local read is one syscall;
        # declining also keeps benchmark monkeypatching of ``read`` honest).
        store, cid = self._store_with_container(FileBackend(str(tmp_path / "c")))
        assert store.read_chunks(cid, [synthetic_fingerprint(1)]) is None
