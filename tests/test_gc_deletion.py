"""Tests for the traditional mark-sweep-copy deletion baseline (§5.5 foil)."""

import pytest

from repro.core.verify import verify_system
from repro.errors import DeletionError
from repro.index import ExactFullIndex
from repro.pipeline import GCDeletionManager
from repro.pipeline.system import BackupSystem
from repro.units import KiB
from tests.conftest import make_stream


def build(workload, container_size=64 * KiB):
    system = BackupSystem(ExactFullIndex(), container_size=container_size)
    for stream in workload.versions():
        system.backup(stream)
    return system


class TestMarkPhase:
    def test_scans_every_retained_recipe(self, small_workload):
        system = build(small_workload)
        stats = GCDeletionManager(system).delete_version(1)
        assert stats.recipes_scanned == 7

    def test_marks_only_exclusive_chunks_dead(self):
        system = BackupSystem(ExactFullIndex(), container_size=16 * KiB)
        system.backup(make_stream([1, 2, 3], size=1024))
        system.backup(make_stream([2, 3, 4], size=1024))
        stats = GCDeletionManager(system, utilization_threshold=1.0).delete_version(1)
        assert stats.chunks_marked_dead == 1  # only chunk 1 is exclusive

    def test_mark_time_recorded(self, small_workload):
        system = build(small_workload)
        stats = GCDeletionManager(system).delete_version(1)
        assert stats.mark_seconds > 0


class TestSweepAndCopy:
    def test_fully_dead_container_deleted_without_copying(self):
        system = BackupSystem(ExactFullIndex(), container_size=4 * KiB)
        # v1's 4 chunks fill one container exactly; v2 shares nothing.
        system.backup(make_stream([1, 2, 3, 4], size=1024))
        system.backup(make_stream([5, 6, 7, 8], size=1024))
        containers_before = len(system.containers)
        stats = GCDeletionManager(system, utilization_threshold=1.0).delete_version(1)
        assert stats.containers_deleted == 1
        assert stats.bytes_copied == 0
        assert len(system.containers) == containers_before - 1

    def test_mixed_container_copy_gc_moves_live_chunks(self):
        system = BackupSystem(ExactFullIndex(), container_size=4 * KiB)
        system.backup(make_stream([1, 2, 3, 4], size=1024))  # one container
        system.backup(make_stream([2, 3], size=1024))  # keeps 2, 3 alive
        stats = GCDeletionManager(system, utilization_threshold=1.0).delete_version(1)
        assert stats.containers_rewritten == 1
        assert stats.bytes_copied == 2 * 1024
        assert stats.bytes_reclaimed == 2 * 1024
        assert stats.recipes_rewritten == 1
        # The survivor still restores.
        restored = list(system.restore_chunks(2))
        assert len(restored) == 2

    def test_threshold_zero_never_copies(self):
        system = BackupSystem(ExactFullIndex(), container_size=4 * KiB)
        system.backup(make_stream([1, 2, 3, 4], size=1024))
        system.backup(make_stream([2, 3], size=1024))
        stats = GCDeletionManager(system, utilization_threshold=0.0).delete_version(1)
        assert stats.containers_rewritten == 0
        assert stats.bytes_copied == 0

    def test_retained_versions_restore_after_gc(self, small_workload):
        system = build(small_workload)
        gc = GCDeletionManager(system, utilization_threshold=1.0)
        gc.delete_version(1)
        gc.delete_version(2)
        for version_id in system.version_ids():
            restored = list(system.restore_chunks(version_id))
            assert [c.fingerprint for c in restored] == small_workload.version(
                version_id
            ).fingerprints()
        assert verify_system(system).ok

    def test_index_learns_new_locations(self):
        system = BackupSystem(ExactFullIndex(), container_size=4 * KiB)
        system.backup(make_stream([1, 2, 3, 4], size=1024))
        system.backup(make_stream([2, 3], size=1024))
        GCDeletionManager(system, utilization_threshold=1.0).delete_version(1)
        # Backing up the surviving chunks again must still deduplicate.
        report = system.backup(make_stream([2, 3], size=1024))
        assert report.unique_chunks == 0

    def test_any_version_deletable(self, small_workload):
        """Unlike HiDeStore, traditional GC can delete mid-history versions
        (at its cost) — verify correctness when it does."""
        system = build(small_workload)
        GCDeletionManager(system, utilization_threshold=1.0).delete_version(4)
        for version_id in system.version_ids():
            restored = list(system.restore_chunks(version_id))
            assert len(restored) == len(small_workload.version(version_id))


class TestErrors:
    def test_unknown_version_rejected(self, small_workload):
        system = build(small_workload)
        with pytest.raises(DeletionError):
            GCDeletionManager(system).delete_version(99)

    def test_bad_threshold_rejected(self, small_workload):
        system = build(small_workload)
        with pytest.raises(DeletionError):
            GCDeletionManager(system, utilization_threshold=2.0)


class TestCostAsymmetry:
    def test_gc_costs_grow_with_retained_history(self):
        """The §5.5 point: traditional deletion scans ALL retained recipes."""
        from repro.workloads import SyntheticWorkload, WorkloadSpec

        def run(versions):
            workload = SyntheticWorkload(
                WorkloadSpec(versions=versions, chunks_per_version=300, seed=3,
                             modify_rate=0.05, delete_rate=0.02, insert_rate=0.03)
            )
            system = build(workload)
            return GCDeletionManager(system).delete_version(1)

        small = run(4)
        large = run(12)
        assert large.recipes_scanned > small.recipes_scanned
