"""Tests for the fingerprinting layer."""

import hashlib

import pytest

from repro.chunking.fingerprint import (
    DEFAULT_FINGERPRINTER,
    Fingerprinter,
    sha1_fingerprint,
)
from repro.errors import ChunkingError


class TestFingerprinter:
    def test_default_is_sha1_20_bytes(self):
        data = b"hello world"
        assert DEFAULT_FINGERPRINTER.fingerprint(data) == hashlib.sha1(data).digest()

    def test_sha1_helper(self):
        assert sha1_fingerprint(b"x") == hashlib.sha1(b"x").digest()

    def test_md5_pads_to_width(self):
        fp = Fingerprinter("md5").fingerprint(b"abc")
        assert len(fp) == 20
        assert fp[:16] == hashlib.md5(b"abc").digest()
        assert fp[16:] == b"\x00" * 4

    def test_sha256_truncates_to_width(self):
        fp = Fingerprinter("sha256").fingerprint(b"abc")
        assert fp == hashlib.sha256(b"abc").digest()[:20]

    def test_custom_width(self):
        fp = Fingerprinter("sha1", width=8).fingerprint(b"abc")
        assert fp == hashlib.sha1(b"abc").digest()[:8]

    def test_chunk_wraps_payload(self):
        chunk = Fingerprinter().chunk(b"payload")
        assert chunk.size == 7
        assert chunk.data == b"payload"
        assert chunk.fingerprint == hashlib.sha1(b"payload").digest()

    def test_identical_payloads_share_fingerprint(self):
        fp = Fingerprinter()
        assert fp.chunk(b"same").fingerprint == fp.chunk(b"same").fingerprint

    def test_distinct_payloads_differ(self):
        fp = Fingerprinter()
        assert fp.chunk(b"a").fingerprint != fp.chunk(b"b").fingerprint

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ChunkingError):
            Fingerprinter("crc32")

    def test_bad_width_rejected(self):
        with pytest.raises(ChunkingError):
            Fingerprinter("sha1", width=0)
