"""Tests for the Extreme Binning index."""

import pytest

from repro.chunking.stream import Chunk, synthetic_fingerprint
from repro.errors import IndexError_
from repro.index import ExtremeBinningIndex, make_index
from repro.metrics import exact_dedup_ratio
from repro.pipeline import build_scheme
from repro.pipeline.system import BackupSystem
from repro.units import KiB


def chunks(tokens, size=1000):
    return [Chunk(synthetic_fingerprint(t), size) for t in tokens]


class TestBinning:
    def test_identical_file_fully_deduplicated(self):
        index = ExtremeBinningIndex(segment_chunks=8)
        batch = chunks(range(8))
        assert index.lookup_batch(batch) == [None] * 8
        for i, c in enumerate(batch):
            index.record(c, 10 + i)
        index.end_batch()
        results = index.lookup_batch(batch)
        assert results == list(range(10, 18))
        assert index.whole_file_hits == 1

    def test_similar_file_deduplicates_against_its_bin(self):
        index = ExtremeBinningIndex(segment_chunks=8)
        rep_chunk = Chunk(b"\x00" * 20, 1000)  # pinned representative
        original = [rep_chunk] + chunks(range(7))
        index.lookup_batch(original)
        for i, c in enumerate(original):
            index.record(c, i)
        index.end_batch()
        # Same representative (min fp kept), two chunks changed.
        edited = original[:6] + chunks([100, 101])
        results = index.lookup_batch(edited)
        assert results[:6] == list(range(6))
        assert results[6:] == [None, None]

    def test_bin_update_accumulates_new_chunks(self):
        index = ExtremeBinningIndex(segment_chunks=8)
        # Pin the representative: an all-zero fingerprint is always minimal.
        rep_chunk = Chunk(b"\x00" * 20, 1000)

        def ingest(batch):
            index.lookup_batch(batch)
            for i, c in enumerate(batch):
                index.record(c, i)
            index.end_batch()

        ingest([rep_chunk] + chunks(range(7)))
        ingest([rep_chunk] + chunks(range(5)) + chunks([100, 101]))
        # Third generation: the bin accumulated generation-two's additions.
        third = [rep_chunk] + chunks([100, 101]) + chunks([102, 103])
        results = index.lookup_batch(third)
        assert None not in results[:3]  # rep + generation-two chunks found
        assert results[3:] == [None, None]

    def test_one_disk_access_per_matched_file(self):
        index = ExtremeBinningIndex(segment_chunks=8)
        batch = chunks(range(8))
        index.lookup_batch(batch)
        for i, c in enumerate(batch):
            index.record(c, i)
        index.end_batch()
        assert index.stats.disk_lookups == 0  # first file: no bin existed
        index.lookup_batch(batch)
        assert index.stats.disk_lookups == 1

    def test_memory_is_one_entry_per_file(self):
        index = ExtremeBinningIndex(segment_chunks=4)
        for base in range(0, 40, 4):
            batch = chunks(range(base, base + 4))
            index.lookup_batch(batch)
            for i, c in enumerate(batch):
                index.record(c, i)
            index.end_batch()
        assert index.memory_bytes == 10 * 44

    def test_rejects_bad_segment_size(self):
        with pytest.raises(IndexError_):
            ExtremeBinningIndex(segment_chunks=0)

    def test_factory(self):
        assert isinstance(make_index("binning"), ExtremeBinningIndex)


class TestBinningEndToEnd:
    def test_near_exact_on_versioned_workload(self, small_workload):
        system = BackupSystem(
            ExtremeBinningIndex(segment_chunks=64), container_size=64 * KiB
        )
        for stream in small_workload.versions():
            system.backup(stream)
        exact = exact_dedup_ratio(small_workload.versions())
        # File-similarity binning loses more than SiLo on boundary drift,
        # but must stay within a moderate band and never exceed exact.
        assert system.dedup_ratio <= exact + 1e-9
        assert system.dedup_ratio > exact - 0.30

    def test_restores_correctly(self, small_workload):
        system = build_scheme("binning", container_size=64 * KiB)
        for stream in small_workload.versions():
            system.backup(stream)
        restored = list(system.restore_chunks(8))
        assert [c.fingerprint for c in restored] == small_workload.version(8).fingerprints()
