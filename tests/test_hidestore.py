"""End-to-end tests for the HiDeStore system (§4)."""

import pytest

from repro.chunking.stream import BackupStream, Chunk, synthetic_fingerprint as fp
from repro.core.hidestore import HiDeStore
from repro.errors import ReproError, RestoreError, VersionNotFoundError
from repro.metrics import exact_dedup_ratio
from repro.restore import ContainerCacheRestore
from repro.units import KiB
from tests.conftest import make_stream


def run(workload, **kwargs):
    system = HiDeStore(container_size=kwargs.pop("container_size", 64 * KiB), **kwargs)
    for stream in workload.versions():
        system.backup(stream)
    return system


class TestBackup:
    def test_dedup_ratio_matches_exact(self, small_workload):
        system = run(small_workload)
        assert abs(system.dedup_ratio - exact_dedup_ratio(small_workload.versions())) < 1e-12

    def test_no_disk_index_lookups_beyond_prefetch(self, small_workload):
        system = run(small_workload)
        total_prefetch = sum(r.disk_index_lookups for r in system.report.per_version)
        # Bounded by ~one recipe per version in 4 KiB lookup units.
        per_version_entries = 400 * 28 / 4096
        assert total_prefetch <= (per_version_entries + 1) * 8

    def test_first_version_all_unique(self, small_workload):
        system = HiDeStore()
        report = system.backup(next(iter([small_workload.version(1)])))
        assert report.unique_chunks == report.total_chunks
        assert report.duplicate_chunks == 0

    def test_adjacent_versions_dedup(self, small_workload):
        system = HiDeStore()
        system.backup(small_workload.version(1))
        report = system.backup(small_workload.version(2))
        assert report.duplicate_chunks > report.unique_chunks

    def test_index_memory_is_zero(self, small_workload):
        system = run(small_workload)
        assert system.report.index_memory_bytes == 0

    def test_transient_cache_bounded_by_history(self, small_workload):
        system = run(small_workload)
        # T1 + T2 hold at most two versions' metadata at 28 B per entry.
        assert system.transient_cache_bytes <= 2 * 450 * 28

    def test_intra_version_duplicates_stored_once(self):
        system = HiDeStore(container_size=64 * KiB)
        stream = make_stream([1, 2, 1, 3, 1], size=1024)
        report = system.backup(stream)
        assert report.unique_chunks == 3
        assert report.duplicate_chunks == 2

    def test_containers_written_is_per_version_delta(self, small_workload):
        """Regression: this used to report the *cumulative* container count.

        ``containers_written`` must count only the archival containers this
        backup call produced (matching BackupSystem's delta semantics), so
        summing the per-version reports reproduces the store's total.
        """
        system = run(small_workload)
        per_version = [r.containers_written for r in system.report.per_version]
        assert sum(per_version) == len(system.containers)
        # Cumulative reporting would make the sequence non-decreasing and
        # its sum far larger than the store; deltas stay individually small.
        assert all(w <= len(system.containers) for w in per_version)

    def test_containers_written_deferred_attributed_to_drain(self, small_workload):
        """With deferred maintenance the delta is 0 until someone drains."""
        system = HiDeStore(container_size=64 * KiB, deferred_maintenance=True)
        reports = [system.backup(s) for s in small_workload.versions()]
        assert all(r.containers_written == 0 for r in reports)
        assert len(system.containers) == 0
        system.run_maintenance()
        assert len(system.containers) > 0


class TestRestore:
    def test_every_version_restores_exact_sequence(self, small_workload):
        system = run(small_workload)
        expected = {i + 1: s for i, s in enumerate(small_workload.versions())}
        for version_id in system.version_ids():
            restored = list(system.restore_chunks(version_id))
            want = expected[version_id]
            assert [c.fingerprint for c in restored] == want.fingerprints()
            assert sum(c.size for c in restored) == want.logical_size

    def test_restore_result_accounting(self, small_workload):
        system = run(small_workload)
        result = system.restore(8)
        assert result.chunks == len(small_workload.version(8))
        assert result.container_reads > 0
        assert result.speed_factor > 0

    def test_newest_version_restores_with_fewer_reads_than_oldest(self, small_workload):
        system = run(small_workload)
        newest = system.restore(8)
        oldest = system.restore(1)
        assert newest.speed_factor >= oldest.speed_factor

    def test_restore_with_custom_algorithm(self, small_workload):
        system = run(small_workload)
        restored = list(
            system.restore_chunks(3, restorer=ContainerCacheRestore(cache_containers=8))
        )
        assert [c.fingerprint for c in restored] == small_workload.version(3).fingerprints()

    def test_unknown_version_raises(self):
        with pytest.raises(VersionNotFoundError):
            HiDeStore().restore(1)

    def test_restore_without_flatten_of_newest_works(self, small_workload):
        system = run(small_workload)
        restored = list(system.restore_chunks(8, flatten=False))
        assert len(restored) == len(small_workload.version(8))

    def test_payload_round_trip(self):
        system = HiDeStore(container_size=16 * KiB)
        v1 = BackupStream(
            [Chunk(fp(t), 4, bytes([t] * 4)) for t in range(10)], tag="v1"
        )
        v2 = BackupStream(
            [Chunk(fp(t), 4, bytes([t] * 4)) for t in range(5, 15)], tag="v2"
        )
        system.backup(v1)
        system.backup(v2)
        out = list(system.restore_chunks(1))
        assert [c.data for c in out] == [bytes([t] * 4) for t in range(10)]


class TestHistoryDepth:
    def test_depth_two_recovers_skipped_chunks(self, skip_workload):
        exact = exact_dedup_ratio(skip_workload.versions())
        shallow = run(skip_workload, history_depth=1)
        deep = run(skip_workload, history_depth=2)
        assert deep.dedup_ratio > shallow.dedup_ratio
        assert abs(deep.dedup_ratio - exact) < 1e-12

    def test_depth_two_restores_all_versions(self, skip_workload):
        system = run(skip_workload, history_depth=2)
        for version_id in system.version_ids():
            restored = list(system.restore_chunks(version_id))
            assert len(restored) == len(skip_workload.version(version_id))


class TestRetireAndReopen:
    def test_retire_archives_everything(self, small_workload):
        system = run(small_workload)
        system.retire()
        assert system.pool.hot_bytes() == 0
        for version_id in system.version_ids():
            recipe = system.recipes.peek(version_id)
            assert all(e.cid > 0 for e in recipe.entries)

    def test_retired_system_rejects_backup(self, small_workload):
        system = run(small_workload)
        system.retire()
        with pytest.raises(ReproError):
            system.backup(small_workload.version(1))

    def test_retired_system_still_restores(self, small_workload):
        system = run(small_workload)
        system.retire()
        for version_id in (1, 4, 8):
            restored = list(system.restore_chunks(version_id))
            assert [c.fingerprint for c in restored] == small_workload.version(
                version_id
            ).fingerprints()

    def test_retire_is_idempotent(self, small_workload):
        system = run(small_workload)
        system.retire()
        system.retire()

    def test_prime_from_recipe_resumes_dedup(self, small_workload):
        system = run(small_workload)
        system.retire()
        primed = system.prime_from_recipe()
        assert primed == len(small_workload.version(8))
        report = system.backup(small_workload.version(8))  # re-backup same data
        assert report.unique_chunks == 0
        assert report.duplicate_chunks == report.total_chunks

    def test_primed_version_restores(self, small_workload):
        system = run(small_workload)
        system.retire()
        system.prime_from_recipe()
        system.backup(small_workload.version(8))
        restored = list(system.restore_chunks(9))
        assert [c.fingerprint for c in restored] == small_workload.version(8).fingerprints()

    def test_prime_requires_archival_recipe(self, small_workload):
        system = run(small_workload)
        with pytest.raises(ReproError):
            system.prime_from_recipe()  # newest recipe still has active CIDs

    def test_prime_on_empty_store_raises(self):
        with pytest.raises(VersionNotFoundError):
            HiDeStore().prime_from_recipe()


class TestPhysicalLocality:
    def test_hot_set_stays_bounded(self, small_workload):
        """Active containers hold roughly one version's bytes, not history."""
        system = run(small_workload)
        version_bytes = small_workload.version(8).logical_size
        assert system.pool.hot_bytes() <= version_bytes * 1.5

    def test_stored_bytes_equals_unique_bytes(self, small_workload):
        system = run(small_workload)
        seen = set()
        unique = 0
        for stream in small_workload.versions():
            for chunk in stream:
                if chunk.fingerprint not in seen:
                    seen.add(chunk.fingerprint)
                    unique += chunk.size
        assert system.stored_bytes() == unique
