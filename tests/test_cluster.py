"""Cluster subsystem: ring placement, map epochs, routed failover, rebalance.

The failure tests drive a real (in-process) multi-daemon cluster through
the client router and kill the primary at the worst moment — mid-restore —
asserting the reassembled bytes are identical to the source and no tenant
is left with a torn version.
"""

import io
import json
import os
import random

import pytest

from repro.client import RemoteRepository
from repro.cluster import (
    ClusterClient,
    ClusterHarness,
    ClusterMap,
    ClusterRebalancer,
    HashRing,
    NodeSpec,
    moved_keys,
    newer_map,
)
from repro.cluster.rebalance import moved_tenants
from repro.errors import ClusterError, RemoteError, VersionNotFoundError
from repro.observability import JsonEventLogger
from repro.repository import read_tree
from repro.server import DaemonThread


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
def make_tree(root, files=3, size=300_000, seed=0):
    rng = random.Random(seed)
    os.makedirs(root, exist_ok=True)
    for index in range(files):
        with open(os.path.join(root, f"file{index}.bin"), "wb") as handle:
            handle.write(rng.randbytes(size))
    return read_tree(root)


def tree_bytes(entries):
    parts = []
    for _rel, path in entries:
        with open(path, "rb") as handle:
            parts.append(handle.read())
    return b"".join(parts)


def events_from(stream):
    return [json.loads(line) for line in stream.getvalue().splitlines() if line]


# ----------------------------------------------------------------------
# Ring
# ----------------------------------------------------------------------
def test_ring_is_deterministic():
    a = HashRing(["n1", "n2", "n3"])
    b = HashRing(["n3", "n1", "n2"])  # order must not matter
    keys = [f"tenant-{i}" for i in range(100)]
    assert [a.primary(k) for k in keys] == [b.primary(k) for k in keys]
    assert [a.preference(k, 2) for k in keys] == [b.preference(k, 2) for k in keys]


def test_ring_spreads_keys():
    ring = HashRing(["n1", "n2", "n3", "n4"])
    shares = ring.shares(2000)
    assert set(shares) == {"n1", "n2", "n3", "n4"}
    for share in shares.values():
        assert 0.10 < share < 0.45  # rough balance, not perfection


def test_ring_join_moves_a_bounded_fraction():
    keys = [f"tenant-{i}" for i in range(300)]
    before = HashRing(["n1", "n2", "n3"])
    after = HashRing(["n1", "n2", "n3", "n4"])
    moved = moved_keys(before, after, keys)
    # Consistent hashing: ~1/4 of keys should move to the joiner; allow
    # generous variance for 64 vnodes, but far below full reshuffling.
    assert len(moved) < len(keys) * 0.45
    # Every moved key must now land on the new node (nothing shuffles
    # between survivors).
    for key in moved:
        assert after.primary(key) == "n4"


def test_ring_removal_restores_prior_placement():
    keys = [f"tenant-{i}" for i in range(200)]
    original = HashRing(["n1", "n2", "n3"])
    grown = HashRing(["n1", "n2", "n3", "n4"])
    shrunk = HashRing(["n1", "n2", "n3"])  # n4 left again
    assert [original.primary(k) for k in keys] == [shrunk.primary(k) for k in keys]
    assert moved_keys(grown, shrunk, keys, replicas=2) == moved_keys(
        grown, original, keys, replicas=2
    )


def test_ring_preference_is_distinct_and_clamped():
    ring = HashRing(["n1", "n2", "n3"])
    for key in ("a", "b", "c", "zz"):
        pref = ring.preference(key, 2)
        assert len(pref) == 2
        assert len(set(pref)) == 2
        assert ring.preference(key, 10) == ring.preference(key, 3)  # clamped
    with pytest.raises(ClusterError):
        HashRing([])


# ----------------------------------------------------------------------
# Map
# ----------------------------------------------------------------------
def test_cluster_map_roundtrip_and_epochs(tmp_path):
    cmap = ClusterMap(
        [NodeSpec("n1", "127.0.0.1:7101", "/srv/n1"), NodeSpec("n2", "127.0.0.1:7102")],
        epoch=3,
        replicas=2,
    )
    clone = ClusterMap.from_doc(cmap.as_doc())
    assert clone.epoch == 3
    assert [n.name for n in clone.placement("t")] == [n.name for n in cmap.placement("t")]

    path = str(tmp_path / "spec.json")
    cmap.save(path)
    assert ClusterMap.load(path).as_doc() == cmap.as_doc()

    successor = cmap.with_nodes(cmap.nodes[:1])
    assert successor.epoch == 4
    # Epoch-based invalidation: highest epoch wins, never downgrade.
    assert newer_map(cmap, successor) is successor
    assert newer_map(successor, cmap) is successor
    assert newer_map(None, cmap) is cmap

    with pytest.raises(ClusterError):
        ClusterMap([NodeSpec("x", "h:1"), NodeSpec("x", "h:2")])
    with pytest.raises(ClusterError):
        ClusterMap([NodeSpec("x", "h:1")], epoch=0)


def test_cluster_map_wire_frame(tmp_path):
    cmap = ClusterMap([NodeSpec("solo", "127.0.0.1:0", str(tmp_path / "solo"))])
    with DaemonThread(
        str(tmp_path / "solo"), cluster_map=cmap, node_name="solo"
    ) as address:
        with RemoteRepository(address, "any") as remote:
            reply = remote.cluster_map()
        assert reply["node"] == "solo"
        assert reply["map"]["epoch"] == 1
        assert reply["map"]["nodes"][0]["name"] == "solo"
    # A daemon outside any cluster answers map: null, not an error.
    with DaemonThread(str(tmp_path / "plain")) as address:
        with RemoteRepository(address, "any") as remote:
            assert remote.cluster_map()["map"] is None


# ----------------------------------------------------------------------
# Router
# ----------------------------------------------------------------------
def test_router_places_tenants_on_ring_primary(tmp_path):
    with ClusterHarness(str(tmp_path), nodes=3, replicas=2) as cmap:
        with ClusterClient([n.address for n in cmap.nodes]) as client:
            entries = make_tree(str(tmp_path / "srcA"), files=2, size=50_000)
            for tenant in ("alpha", "beta", "gamma"):
                client.repo(tenant).backup_tree(entries)
                primary = cmap.primary(tenant)
                assert os.path.isdir(os.path.join(primary.root, tenant))
                for other in cmap.nodes:
                    if other.name != primary.name:
                        assert not os.path.isdir(os.path.join(other.root, tenant))


def test_router_adopts_highest_epoch(tmp_path):
    harness = ClusterHarness(str(tmp_path), nodes=2, replicas=1)
    cmap = harness.start()
    try:
        stale = ClusterMap(cmap.nodes, epoch=1, replicas=1, vnodes=cmap.vnodes)
        with ClusterClient([cmap.nodes[0].address], cluster_map=stale) as client:
            assert client.refresh().epoch == max(cmap.epoch, stale.epoch)
        # A client seeded only with addresses bootstraps the full map.
        with ClusterClient([cmap.nodes[1].address]) as client:
            adopted = client.refresh()
            assert [n.name for n in adopted.nodes] == [n.name for n in cmap.nodes]
    finally:
        harness.stop()


def test_router_kill_primary_mid_restore_is_byte_identical(tmp_path):
    stream = io.StringIO()
    harness = ClusterHarness(str(tmp_path), nodes=3, replicas=2)
    cmap = harness.start()
    try:
        client = ClusterClient(
            [n.address for n in cmap.nodes],
            event_log=JsonEventLogger(stream, source="client"),
        )
        entries = make_tree(str(tmp_path / "src"), files=4, size=400_000, seed=3)
        expected = tree_bytes(entries)
        tenant = "victim"
        repo = client.repo(tenant)
        repo.backup_tree(entries)
        primary = cmap.primary(tenant)
        replica = cmap.successors(tenant)[0]
        # Push the copy to the ring successor, then capture its view.
        client.remote(primary.address, tenant).cluster_sync(tenant)
        versions_before = client.remote(replica.address, tenant).versions()
        assert len(versions_before) == 1

        plan, data = repo.restore(1)
        received = [next(data)]  # the stream is live on the primary

        harness.kill_node(primary.name)  # mid-stream, zero drain patience

        received.extend(data)  # router must fail over and resume
        blob = b"".join(received)
        assert blob == expected  # byte-identical despite the mid-stream kill
        assert sum(size for _rel, size in plan) == len(expected)

        # The failover left a typed client event behind.
        failovers = [e for e in events_from(stream) if e["event"] == "cluster_failover"]
        assert failovers and failovers[0]["repo"] == tenant
        assert failovers[0]["failed_node"] == primary.name

        # Zero torn versions: the replica's history is exactly what it was,
        # and its copy still deep-verifies.
        assert client.remote(replica.address, tenant).versions() == versions_before
        assert client.remote(replica.address, tenant).verify(deep=True)["ok"]

        # The surviving replica recorded that it served a failover restore.
        snapshot = client.remote(replica.address, tenant).stats()["metrics"]
        assert snapshot["counters"]["cluster.failovers"] >= 1
        client.close()
    finally:
        harness.stop()


def test_mutating_ops_never_fail_over(tmp_path):
    # write_retry_timeout=0 disables the promotion-wait retry loop: with no
    # health prober running there is nothing to wait for, and a write must
    # fail loudly rather than land on a replica and fork it.
    harness = ClusterHarness(str(tmp_path), nodes=3, replicas=2)
    cmap = harness.start()
    try:
        with ClusterClient(
            [n.address for n in cmap.nodes], write_retry_timeout=0
        ) as client:
            entries = make_tree(str(tmp_path / "src"), files=1, size=20_000)
            tenant = "writer"
            repo = client.repo(tenant)
            repo.backup_tree(entries)
            primary = cmap.primary(tenant)
            client.remote(primary.address, tenant).cluster_sync(tenant)
            harness.kill_node(primary.name)
            with pytest.raises((RemoteError, OSError, ClusterError)):
                repo.backup_tree(entries)
            with pytest.raises((RemoteError, OSError, ClusterError)):
                repo.delete_oldest()
            for node in cmap.successors(tenant):
                assert len(client.remote(node.address, tenant).versions()) == 1
    finally:
        harness.stop()


def test_typed_domain_errors_are_authoritative(tmp_path):
    with ClusterHarness(str(tmp_path), nodes=2, replicas=2) as cmap:
        with ClusterClient([n.address for n in cmap.nodes]) as client:
            entries = make_tree(str(tmp_path / "src"), files=1, size=10_000)
            repo = client.repo("tenant")
            repo.backup_tree(entries)
            # The primary is alive and says "no such version" — the router
            # must NOT mask that by asking the replica.
            with pytest.raises(VersionNotFoundError):
                repo.restore(99)


# ----------------------------------------------------------------------
# Rebalance
# ----------------------------------------------------------------------
def test_rebalance_moves_only_changed_tenants(tmp_path):
    harness = ClusterHarness(str(tmp_path), nodes=3, replicas=2)
    cmap = harness.start()
    try:
        with ClusterClient([n.address for n in cmap.nodes], cluster_map=cmap) as client:
            entries = make_tree(str(tmp_path / "src"), files=2, size=80_000, seed=5)
            tenants = [f"tenant-{i}" for i in range(6)]
            for tenant in tenants:
                client.repo(tenant).backup_tree(entries)
            client.sync_all()

            # Membership change: drop the last node (its daemon stays up so
            # the rebalancer can pull from and drop-clean the old holder).
            gone = cmap.nodes[-1]
            new_map = cmap.with_nodes(cmap.nodes[:-1])
            moved = moved_tenants(cmap, new_map, tenants)
            assert moved, "expected at least one tenant to change ownership"
            unchanged = sorted(set(tenants) - set(moved))
            for tenant in unchanged:
                # Unchanged tenants never involved the dropped node.
                assert gone.name not in [n.name for n in cmap.placement(tenant)]

            report = ClusterRebalancer(client, cmap, new_map).run(tenants)
            assert report["tenants_moved"] == len(moved)
            assert report["unchanged"] == unchanged
            for move in report["moves"]:
                assert move["verified"] is True

            # Old copies on holders outside the new placement are gone...
            for move in report["moves"]:
                for old_name in move["old"]:
                    if old_name in move["new"]:
                        continue
                    old_root = next(n.root for n in cmap.nodes if n.name == old_name)
                    assert not os.path.isdir(os.path.join(old_root, move["tenant"]))
            # ...and every tenant restores byte-identically under the new map.
            expected = tree_bytes(entries)
            with ClusterClient(
                [n.address for n in new_map.nodes], cluster_map=new_map
            ) as routed:
                for tenant in tenants:
                    _plan, data = routed.repo(tenant).restore(1)
                    assert b"".join(data) == expected
    finally:
        harness.stop()


def test_rebalance_keeps_old_copy_when_verify_fails(tmp_path):
    harness = ClusterHarness(str(tmp_path), nodes=2, replicas=1)
    cmap = harness.start()
    try:
        with ClusterClient([n.address for n in cmap.nodes], cluster_map=cmap) as client:
            survivor, other = cmap.nodes[0], cmap.nodes[1]
            # Pick a tenant the shrink will actually move (primary on the
            # node being removed) — the ring is deterministic, so scan.
            victim = next(
                name for name in (f"t{i}" for i in range(64))
                if cmap.primary(name).name == other.name
            )
            # Two backups with disjoint content: the v1 chunks go cold at
            # the v2 backup and are demoted into sealed archival containers.
            # Sealed containers are diffed by *size*, which is what lets
            # the corruption below survive the re-copy inside move_tenant.
            entries = make_tree(str(tmp_path / "src"), files=2, size=400_000, seed=9)
            client.repo(victim).backup_tree(entries)
            entries = make_tree(str(tmp_path / "src"), files=2, size=400_000, seed=10)
            client.repo(victim).backup_tree(entries)
            new_map = cmap.with_nodes([survivor])
            assert moved_tenants(cmap, new_map, [victim]) == [victim]
            rebalancer = ClusterRebalancer(client, cmap, new_map)

            # First, copy the victim to its new primary, then corrupt the
            # copy in place: the container keeps its size (so the O(delta)
            # diff skips it) but deep verify must catch the flipped bytes.
            rebalancer._copy(victim, other, survivor)
            containers = os.path.join(survivor.root, victim, "containers")
            name = sorted(os.listdir(containers))[0]
            path = os.path.join(containers, name)
            blob = bytearray(open(path, "rb").read())
            blob[len(blob) // 2] ^= 0xFF
            open(path, "wb").write(bytes(blob))

            with pytest.raises(ClusterError, match="deep verify"):
                rebalancer.move_tenant(victim)
            # The old holder keeps its copy — rebalance never drops an
            # unverified tenant.
            assert os.path.isdir(os.path.join(other.root, victim))
    finally:
        harness.stop()
