"""Surgical behavioural scenarios built with the edit-script DSL.

These tests pin down mechanism-level semantics that the statistical
workloads only exercise in aggregate: exact recipe-chain shapes after known
edits, demotion contents, capping decisions under crafted fragmentation,
and ALACC's adaptive split.
"""

import pytest

from repro.chunking.stream import synthetic_fingerprint as fp
from repro.core import HiDeStore
from repro.restore import ALACCRestore
from repro.storage.recipe import ACTIVE_CID
from repro.units import KiB
from repro.workloads import EditScriptWorkload, delete, insert, modify, revive
from repro.workloads.synthetic import token_size


class TestRecipeChainScenarios:
    def test_chain_shape_after_two_versions(self):
        """v2 = v1 with chunk #3 modified: R_1 must hold exactly one
        archival CID (the demoted original of chunk #3) and -2 elsewhere."""
        workload = EditScriptWorkload(initial_chunks=10, mean_chunk_size=2 * KiB)
        workload.add_version(modify(3, 1))
        system = HiDeStore(container_size=64 * KiB)
        streams = workload.all_versions()
        for stream in streams:
            system.backup(stream)

        recipe = system.recipes.peek(1)
        archival = [e for e in recipe.entries if e.cid > 0]
        chained = [e for e in recipe.entries if e.cid < 0]
        assert len(archival) == 1
        assert archival[0].fingerprint == streams[0].fingerprints()[3]
        assert len(chained) == 9
        assert all(e.cid == -2 for e in chained)

    def test_demoted_bytes_equal_modified_chunks(self):
        workload = EditScriptWorkload(initial_chunks=20, mean_chunk_size=2 * KiB)
        workload.add_version(modify(5, 4))
        system = HiDeStore(container_size=64 * KiB)
        streams = workload.all_versions()
        for stream in streams:
            system.backup(stream)
        expected = sum(
            token_size(t, 2 * KiB) for t in range(5, 9)
        )
        assert system.pool.stats.cold_bytes_moved == expected
        assert system.pool.stats.cold_chunks_moved == 4

    def test_pure_insertion_demotes_nothing(self):
        workload = EditScriptWorkload(initial_chunks=10, mean_chunk_size=2 * KiB)
        workload.add_version(insert(5, 3))
        system = HiDeStore(container_size=64 * KiB)
        for stream in workload.versions():
            system.backup(stream)
        assert system.pool.stats.cold_chunks_moved == 0
        recipe = system.recipes.peek(1)
        assert all(e.cid == -2 for e in recipe.entries)

    def test_deletion_tags_name_the_right_version(self):
        workload = EditScriptWorkload(initial_chunks=10, mean_chunk_size=2 * KiB)
        workload.add_version(delete(0, 2))  # v1's chunks 0-1 die with v1
        workload.add_version(modify(0, 1))  # one of v2's survivors dies with v2
        system = HiDeStore(container_size=64 * KiB)
        for stream in workload.versions():
            system.backup(stream)
        # Cold sets: after v2 -> tagged 1 (chunks 0,1); after v3 -> tagged 2.
        assert len(system.deletion.containers_for(1)) >= 1
        assert len(system.deletion.containers_for(2)) >= 1
        tagged_v1 = {
            fingerprint
            for cid in system.deletion.containers_for(1)
            for fingerprint in system.containers.peek(cid).fingerprints()
        }
        assert tagged_v1 == {fp(0), fp(1)}

    def test_newest_recipe_is_all_active(self):
        workload = EditScriptWorkload(initial_chunks=8, mean_chunk_size=2 * KiB)
        workload.add_version(modify(0, 2))
        system = HiDeStore(container_size=64 * KiB)
        for stream in workload.versions():
            system.backup(stream)
        newest = system.recipes.peek(2)
        assert all(e.cid == ACTIVE_CID for e in newest.entries)


class TestDepthTwoScenario:
    def test_skipped_chunk_location_resolves_through_the_gap(self):
        """v1 has X; v2 lacks X; v3 revives X.  With depth 2, X stays hot
        and all three recipes must restore X from the same physical copy."""
        workload = EditScriptWorkload(initial_chunks=6, mean_chunk_size=2 * KiB)
        workload.add_version(delete(0, 1))
        workload.add_version(revive(0))
        system = HiDeStore(container_size=64 * KiB, history_depth=2)
        streams = workload.all_versions()
        for stream in streams:
            system.backup(stream)
        assert system.report.stored_bytes == sum(
            token_size(t, 2 * KiB) for t in range(6)
        )
        for version_id, stream in enumerate(streams, start=1):
            restored = list(system.restore_chunks(version_id))
            assert [c.fingerprint for c in restored] == stream.fingerprints()


class TestCappingScenario:
    def test_crafted_fragmentation_is_repaired(self):
        """A version whose duplicates span many one-chunk containers gets its
        scattered chunks rewritten under a tight cap, and the repaired layout
        restores with few reads."""
        from repro.pipeline import build_scheme
        from repro.units import MiB

        chunk_bytes = 2 * KiB
        workload = EditScriptWorkload(initial_chunks=64, mean_chunk_size=chunk_bytes)
        # Interleave heavy churn to scatter survivors over generations.
        for k in range(6):
            workload.add_version(modify(k * 8, 8))
        system = build_scheme(
            "capping",
            container_size=8 * KiB,  # 2-4 chunks per container
            rewriter_kwargs=dict(cap=4, segment_bytes=1 * MiB),
            index_kwargs=dict(cache_containers=8),
        )
        for stream in workload.versions():
            system.backup(stream)
        newest = system.version_ids()[-1]
        recipe = system.recipes.peek(newest)
        assert len(recipe.referenced_containers()) <= 4 + 64 * chunk_bytes // (8 * KiB) + 1


class TestALACCAdaptivity:
    def _layout(self, repeats):
        from tests.test_restore_algorithms import Layout

        pattern = []
        for r in range(repeats):
            pattern += [(t, 1 + (t % 6)) for t in range(36)]
        return Layout(pattern, chunk_size=KiB, capacity=8 * KiB)

    def test_split_adapts_toward_faa_on_cache_hostile_stream(self):
        """A stream with no cross-area reuse makes the cache useless; the
        split must drift toward a bigger assembly area."""
        from tests.test_restore_algorithms import Layout

        # 200 chunks, each container visited once, never revisited.
        layout = Layout(
            [(t, 1 + t // 8) for t in range(200)], chunk_size=KiB, capacity=8 * KiB
        )
        algorithm = ALACCRestore(
            total_bytes=32 * KiB,
            lookahead_bytes=32 * KiB,
            min_faa_bytes=8 * KiB,
            step_bytes=4 * KiB,
        )
        algorithm.run(layout.entries, layout.reader)
        assert algorithm.last_faa_bytes > algorithm.total_bytes // 2

    def test_split_keeps_cache_on_cache_friendly_stream(self):
        """Heavy cross-area reuse keeps the chunk cache funded."""
        layout = self._layout(repeats=6)
        algorithm = ALACCRestore(
            total_bytes=24 * KiB,
            lookahead_bytes=64 * KiB,
            min_faa_bytes=8 * KiB,
            step_bytes=4 * KiB,
            grow_threshold=0.05,
        )
        algorithm.run(layout.entries, layout.reader)
        assert algorithm.last_cache_bytes >= algorithm.total_bytes // 2

    def test_alacc_beats_faa_when_reuse_fits_the_cache(self):
        """The design-premise regime: repeats within the look-ahead window
        and a working set the cache half can actually hold."""
        from tests.test_restore_algorithms import Layout
        from repro.restore import FAARestore

        # Working set: 2 containers (16 chunks, 16 KiB) revisited 8 times.
        pattern = []
        for _ in range(8):
            pattern += [(t, 1 + (t % 2)) for t in range(16)]
        faa_layout = Layout(pattern, chunk_size=KiB, capacity=8 * KiB)
        FAARestore(area_bytes=8 * KiB).run(faa_layout.entries, faa_layout.reader)
        alacc_layout = Layout(pattern, chunk_size=KiB, capacity=8 * KiB)
        ALACCRestore(
            total_bytes=32 * KiB,
            lookahead_bytes=128 * KiB,
            min_faa_bytes=8 * KiB,
            step_bytes=4 * KiB,
            grow_threshold=0.05,
        ).run(alacc_layout.entries, alacc_layout.reader)
        assert alacc_layout.reads < faa_layout.reads
