"""Tests for the experiment matrix runner and auto-flatten policy."""

import pytest

from repro.core import HiDeStore
from repro.experiments import COLUMNS, read_csv, run_matrix, run_single, write_csv
from repro.storage.recipe import ACTIVE_CID
from repro.units import KiB
from repro.workloads import SyntheticWorkload, WorkloadSpec, load_preset


class TestRunSingle:
    def test_returns_all_columns(self):
        row = run_single(
            "ddfs", "kernel", versions=6, chunks_per_version=300,
            container_size=64 * KiB,
        )
        assert set(COLUMNS) <= set(row)
        assert row["scheme"] == "ddfs"
        assert row["workload"] == "kernel"
        assert row["versions"] == 6
        assert 0.0 < row["dedup_ratio"] < 1.0
        assert row["speed_factor_last"] > 0

    def test_hidestore_gets_preset_history_depth(self):
        row = run_single(
            "hidestore", "macos", versions=6, chunks_per_version=300,
            container_size=64 * KiB,
        )
        assert row["scheme"] == "hidestore"

    def test_accepts_prebuilt_workload(self):
        workload = SyntheticWorkload(
            WorkloadSpec(name="custom", versions=4, chunks_per_version=200, seed=5)
        )
        row = run_single("exact", workload, container_size=64 * KiB)
        assert row["workload"] == "custom"

    def test_scheme_kwargs_forwarded(self):
        row = run_single(
            "capping", "kernel", versions=6, chunks_per_version=300,
            container_size=64 * KiB,
            scheme_kwargs=dict(rewriter_kwargs=dict(cap=2, segment_bytes=256 * KiB)),
        )
        baseline = run_single(
            "ddfs", "kernel", versions=6, chunks_per_version=300,
            container_size=64 * KiB,
        )
        assert row["dedup_ratio"] < baseline["dedup_ratio"]


class TestRunMatrix:
    def test_full_grid(self):
        rows = run_matrix(
            {"ddfs": {}, "hidestore": {}},
            ["kernel", "gcc"],
            versions=5,
            chunks_per_version=250,
            container_size=64 * KiB,
        )
        assert len(rows) == 4
        assert {(r["scheme"], r["workload"]) for r in rows} == {
            ("ddfs", "kernel"), ("hidestore", "kernel"),
            ("ddfs", "gcc"), ("hidestore", "gcc"),
        }

    def test_progress_callback(self):
        seen = []
        run_matrix(
            {"exact": {}},
            ["kernel"],
            versions=4,
            chunks_per_version=200,
            container_size=64 * KiB,
            progress=seen.append,
        )
        assert len(seen) == 1


class TestCSV:
    def test_round_trip(self, tmp_path):
        rows = run_matrix(
            {"exact": {}},
            ["kernel"],
            versions=4,
            chunks_per_version=200,
            container_size=64 * KiB,
        )
        path = str(tmp_path / "out.csv")
        assert write_csv(rows, path) == 1
        loaded = read_csv(path)
        assert loaded[0]["scheme"] == "exact"
        assert abs(float(loaded[0]["dedup_ratio"]) - rows[0]["dedup_ratio"]) < 1e-9


class TestAutoFlatten:
    def _run(self, flatten_every):
        system = HiDeStore(container_size=64 * KiB, flatten_every=flatten_every)
        for stream in load_preset("kernel", versions=6, chunks_per_version=300).versions():
            system.backup(stream)
        return system

    def test_periodic_flatten_resolves_old_chains(self):
        system = self._run(flatten_every=2)
        newest = system.recipes.latest_version()
        for version in system.version_ids()[:-2]:
            recipe = system.recipes.peek(version)
            for entry in recipe.entries:
                # Resolved: archival, or a direct pointer to the newest
                # flatten target — never an intermediate chain hop.
                assert entry.cid > 0 or entry.cid in (-newest, -(newest - 1), ACTIVE_CID)

    def test_disabled_leaves_chains(self):
        system = self._run(flatten_every=0)
        recipe = system.recipes.peek(1)
        # Without flattening, R_1 points at R_2 (one hop).
        assert any(entry.cid == -2 for entry in recipe.entries)

    def test_restores_identical_either_way(self):
        flattened = self._run(flatten_every=2)
        lazy = self._run(flatten_every=0)
        for version in flattened.version_ids():
            a = [c.fingerprint for c in flattened.restore_chunks(version)]
            b = [c.fingerprint for c in lazy.restore_chunks(version)]
            assert a == b

    def test_flatten_stats_recorded(self):
        system = self._run(flatten_every=2)
        assert system.chain.stats.flatten_runs >= 2
