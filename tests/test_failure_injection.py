"""Failure-injection tests: damaged stores must fail loudly, not corrupt.

A backup system's worst behaviour is silently returning wrong bytes.  These
tests damage containers, recipes and checkpoints in targeted ways and assert
that every path either raises a library error or flags the damage in
verification — never yields corrupt data as if healthy.
"""

import json
import os

import pytest

from repro.core import HiDeStore, load_checkpoint, save_checkpoint, verify_system
from repro.errors import (
    RecipeError,
    ReproError,
    RestoreError,
    StorageError,
    UnknownChunkError,
    UnknownContainerError,
)
from repro.index import ExactFullIndex
from repro.pipeline.system import BackupSystem
from repro.storage import FileContainerStore, FileRecipeStore
from repro.units import KiB
from tests.conftest import make_stream


def traditional(workload):
    system = BackupSystem(ExactFullIndex(), container_size=64 * KiB)
    for stream in workload.versions():
        system.backup(stream)
    return system


def hidestore(workload):
    system = HiDeStore(container_size=64 * KiB)
    for stream in workload.versions():
        system.backup(stream)
    return system


class TestMissingContainers:
    def test_traditional_restore_raises(self, small_workload):
        system = traditional(small_workload)
        victim = system.recipes.peek(1).referenced_containers()[0]
        system.containers.delete(victim)
        with pytest.raises(UnknownContainerError):
            list(system.restore_chunks(1))

    def test_hidestore_restore_raises_for_lost_archival(self, small_workload):
        system = hidestore(small_workload)
        system.chain.flatten()
        recipe = system.recipes.peek(1)
        archival = [e.cid for e in recipe.entries if e.cid > 0]
        assert archival
        system.containers.delete(archival[0])
        with pytest.raises(UnknownContainerError):
            list(system.restore_chunks(1))

    def test_verify_flags_before_restore_burns(self, small_workload):
        system = traditional(small_workload)
        victim = system.recipes.peek(1).referenced_containers()[0]
        system.containers.delete(victim)
        assert not verify_system(system).ok


class TestWrongChunkInContainer:
    def test_missing_chunk_raises_not_silence(self, small_workload):
        system = traditional(small_workload)
        recipe = system.recipes.peek(1)
        entry = recipe.entries[0]
        container = system.containers.peek(entry.cid)
        container.sealed = False
        container.remove(entry.fingerprint)
        container.sealed = True
        with pytest.raises(UnknownChunkError):
            list(system.restore_chunks(1))


class TestDamagedFileStores:
    def _file_system(self, tmp_path, workload):
        system = HiDeStore(
            container_store=FileContainerStore(str(tmp_path / "c")),
            recipe_store=FileRecipeStore(str(tmp_path / "r")),
            container_size=64 * KiB,
        )
        for stream in workload.versions():
            system.backup(stream)
        system.retire()
        return system

    def test_truncated_container_file(self, tmp_path, small_workload):
        system = self._file_system(tmp_path, small_workload)
        containers_dir = str(tmp_path / "c")
        victim = sorted(os.listdir(containers_dir))[0]
        path = os.path.join(containers_dir, victim)
        with open(path, "r+b") as handle:
            handle.truncate(16)
        with pytest.raises((StorageError, ReproError)):
            reloaded = FileContainerStore(containers_dir)
            reloaded.read(reloaded.container_ids()[0])

    def test_garbage_recipe_file(self, tmp_path, small_workload):
        self._file_system(tmp_path, small_workload)
        recipes_dir = str(tmp_path / "r")
        victim = sorted(os.listdir(recipes_dir))[0]
        with open(os.path.join(recipes_dir, victim), "wb") as handle:
            handle.write(b"not a recipe at all")
        store = FileRecipeStore(recipes_dir)
        with pytest.raises(RecipeError):
            store.read(store.version_ids()[0])


class TestDamagedCheckpoints:
    def _checkpointed(self, tmp_path, workload):
        system = HiDeStore(
            container_store=FileContainerStore(str(tmp_path / "c")),
            recipe_store=FileRecipeStore(str(tmp_path / "r")),
            container_size=64 * KiB,
        )
        for stream in workload.versions():
            system.backup(stream)
        path = str(tmp_path / "ckpt.json")
        save_checkpoint(system, path)
        return path

    def test_truncated_checkpoint_raises(self, tmp_path, small_workload):
        path = self._checkpointed(tmp_path, small_workload)
        with open(path, "r+") as handle:
            handle.truncate(50)
        with pytest.raises((ReproError, ValueError)):
            load_checkpoint(path)

    def test_tampered_format_raises(self, tmp_path, small_workload):
        path = self._checkpointed(tmp_path, small_workload)
        with open(path) as handle:
            document = json.load(handle)
        document["format"] = "evil"
        with open(path, "w") as handle:
            json.dump(document, handle)
        with pytest.raises(ReproError):
            load_checkpoint(path)

    def test_checkpoint_with_wrong_stores_fails_verification(self, tmp_path, small_workload):
        path = self._checkpointed(tmp_path, small_workload)
        # Load against EMPTY stores: structure loads, verification must flag.
        system = load_checkpoint(path)
        report = verify_system(system)
        assert not report.ok


class TestHiDeStoreStateCorruption:
    def test_restore_of_unflattened_deleted_chain_raises(self, small_workload):
        """Breaking the chain by hand must surface, not wrap around."""
        system = hidestore(small_workload)
        # Point v1's first entry at a recipe that will never exist.
        system.recipes.peek(1).entries[0].cid = -99
        # Flatten treats "past newest" as active; the chunk is genuinely
        # active here, so restore still works...
        restored = list(system.restore_chunks(1))
        assert len(restored) == len(small_workload.version(1))

    def test_active_location_loss_raises_on_restore(self, small_workload):
        system = hidestore(small_workload)
        fp = next(iter(system.pool.location))
        del system.pool.location[fp]
        newest = system.recipes.latest_version()
        if any(e.fingerprint == fp for e in system.recipes.peek(newest).entries):
            with pytest.raises(RestoreError):
                list(system.restore_chunks(newest))


class TestAtomicWrites:
    def test_no_tmp_litter_after_backups(self, tmp_path, small_workload):
        system = HiDeStore(
            container_store=FileContainerStore(str(tmp_path / "c")),
            recipe_store=FileRecipeStore(str(tmp_path / "r")),
            container_size=64 * KiB,
        )
        for stream in small_workload.versions():
            system.backup(stream)
        system.retire()
        for sub in ("c", "r"):
            names = os.listdir(str(tmp_path / sub))
            assert not [n for n in names if n.endswith(".tmp")]

    def test_checkpoint_write_is_atomic(self, tmp_path, small_workload):
        system = hidestore(small_workload)
        path = str(tmp_path / "ckpt.json")
        save_checkpoint(system, path)
        save_checkpoint(system, path)  # overwrite in place
        assert not os.path.exists(path + ".tmp")
        load_checkpoint(path)


# ----------------------------------------------------------------------
# Daemon-level fault injection (chaos harness seams)
# ----------------------------------------------------------------------
def _daemon_tree(root, files=3, size=20_000, seed=3):
    import random

    from repro.repository import read_tree

    rng = random.Random(seed)
    os.makedirs(root, exist_ok=True)
    for index in range(files):
        with open(os.path.join(root, f"file{index}.bin"), "wb") as handle:
            handle.write(rng.randbytes(size))
    return read_tree(root)


class TestDaemonDiskFull:
    def test_enospc_mid_container_seal_rolls_back(self, tmp_path):
        """An injected ENOSPC while the daemon seals a container must fail
        the backup typed and leave zero trace — and the very next backup
        (same tenant, same daemon) must succeed."""
        from repro.chaos.faults import FaultController
        from repro.client import RemoteRepository
        from repro.server import DaemonThread

        tree = _daemon_tree(str(tmp_path / "tree"))
        controller = FaultController()
        with controller:  # installed before the daemon builds backends
            with DaemonThread(str(tmp_path / "served")) as address:
                repo = RemoteRepository(address, "tenant-a")
                try:
                    repo.backup_tree(tree, tag="v1")
                    before = repo.versions()
                    controller.arm(
                        "enospc", op="put", match_name="container"
                    )
                    _daemon_tree(str(tmp_path / "tree"), seed=4)
                    from repro.repository import read_tree

                    churned = read_tree(str(tmp_path / "tree"))
                    with pytest.raises(ReproError):
                        repo.backup_tree(churned, tag="v2")
                    # Rollback: nothing new listed, nothing half-written.
                    assert repo.versions() == before
                    assert repo.verify(deep=True)["ok"]
                    # The fault consumed itself; the retry lands.
                    report = repo.backup_tree(churned, tag="v2-retry")
                    after = [row["version_id"] for row in repo.versions()]
                    assert report["version_id"] in after
                    assert len(after) == len(before) + 1
                    assert repo.verify(deep=True)["ok"]
                finally:
                    repo.close()


class TestReplicateWireCorruption:
    def test_bitflip_in_transit_rejected_by_digest_validation(self, tmp_path):
        """A container blob corrupted between the source digest computation
        and the mirror daemon must be rejected server-side, leaving the
        mirror clean; the clean retry then succeeds."""
        from repro.chaos.faults import FaultController, WireCorruptingMirror
        from repro.errors import ReplicationError
        from repro.replication import ReplicationSession
        from repro.replication.repair import verify_repository
        from repro.replication.targets import RemoteMirror
        from repro.repository import LocalRepository
        from repro.server import DaemonThread

        source_root = str(tmp_path / "source")
        repo = LocalRepository(source_root)
        repo.backup_tree(_daemon_tree(str(tmp_path / "tree")), tag="v1")
        repo.backup_tree(_daemon_tree(str(tmp_path / "tree"), seed=5), tag="v2")

        controller = FaultController()
        with DaemonThread(str(tmp_path / "mirror")) as address:
            target = WireCorruptingMirror(
                RemoteMirror(address, "tenant-a"), controller
            )
            try:
                with pytest.raises(ReplicationError, match="digest validation"):
                    ReplicationSession(source_root, target, journal="").run()
            finally:
                target.close()
            assert [f["kind"] for f in controller.fired] == ["corrupt_transit"]

            # The clean retry ships everything and the mirror verifies.
            clean = RemoteMirror(address, "tenant-a")
            try:
                report = ReplicationSession(source_root, clean, journal="").run()
            finally:
                clean.close()
            assert report.objects_shipped > 0
        mirror_root = os.path.join(str(tmp_path / "mirror"), "tenant-a")
        assert verify_repository(mirror_root, deep=True).ok
        mirror_repo = LocalRepository(mirror_root)
        assert [row["version_id"] for row in mirror_repo.versions()] == [1, 2]


class TestKillMidBackup:
    def test_sigkill_mid_backup_leaves_no_partial_version(self, tmp_path):
        """Killing the daemon while a backup has a container in flight must
        leave the repository either without the new version entirely or
        with it complete — never torn — and a restarted daemon serves it."""
        import threading

        from repro.chaos.faults import FaultController
        from repro.client import RemoteRepository
        from repro.server import DaemonThread

        tree = _daemon_tree(str(tmp_path / "tree"), files=4, size=60_000)
        controller = FaultController()
        with controller:
            daemon = DaemonThread(str(tmp_path / "served"))
            daemon.start()
            port = daemon.daemon.port
            repo = RemoteRepository(f"127.0.0.1:{port}", "tenant-a")
            try:
                repo.backup_tree(tree, tag="v1")
                # Kill the daemon from another thread the moment the
                # victim backup writes a container.
                fired = threading.Event()
                controller.arm(
                    "trigger",
                    op="put",
                    match_name="container",
                    callback=lambda _url, _name: fired.set(),
                )
                killer = threading.Thread(
                    target=lambda: (fired.wait(10.0), daemon.kill())
                )
                killer.start()
                churned = _daemon_tree(str(tmp_path / "tree"), files=4,
                                       size=60_000, seed=9)
                with pytest.raises((ReproError, OSError)):
                    repo.backup_tree(churned, tag="v2")
                killer.join(timeout=15.0)
                assert fired.is_set()
            finally:
                repo.close()

            # Restart on the same root: no torn version, state verifies.
            with DaemonThread(str(tmp_path / "served"), port=port) as address:
                again = RemoteRepository(address, "tenant-a")
                try:
                    ids = [row["version_id"] for row in again.versions()]
                    assert ids in ([1], [1, 2])
                    assert again.verify(deep=True)["ok"]
                    # And the tenant accepts new work immediately.
                    report = again.backup_tree(churned, tag="after-restart")
                    assert report["version_id"] > ids[-1]
                    assert again.verify(deep=True)["ok"]
                finally:
                    again.close()
