"""Property-based tests (hypothesis) on the core invariants.

The invariants checked here are the load-bearing ones:

* **Losslessness**: whatever the version history, every version of every
  scheme restores to the exact original chunk sequence.
* **Exactness**: HiDeStore's dedup ratio equals exact deduplication for
  adjacent-similar histories (skip-free), and never exceeds it otherwise.
* **Chunker safety**: arbitrary bytes split losslessly within size bounds.
* **Container conservation**: bytes in == bytes held + bytes removed.
* **Recipe chain**: flatten never changes what a recipe resolves to.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.chunking import FastCDCChunker, FixedChunker, TTTDChunker
from repro.chunking.stream import BackupStream, Chunk, synthetic_fingerprint as fp
from repro.core.hidestore import HiDeStore
from repro.index import ExactFullIndex
from repro.metrics import exact_dedup_ratio
from repro.pipeline.system import BackupSystem
from repro.storage.container import Container

KB = 1024


# ---------------------------------------------------------------------------
# Strategy: a version history as edit operations over a chunk-token list.
# ---------------------------------------------------------------------------
@st.composite
def version_histories(draw):
    """A list of versions, each derived from the previous by random edits."""
    rng = random.Random(draw(st.integers(0, 2**32 - 1)))
    n_versions = draw(st.integers(1, 6))
    size = draw(st.integers(5, 60))
    next_token = size
    current = list(range(size))
    versions = [list(current)]
    for _ in range(n_versions - 1):
        evolved = []
        for token in current:
            op = rng.random()
            if op < 0.1:
                evolved.append(next_token)
                next_token += 1
            elif op < 0.18:
                pass  # delete
            else:
                evolved.append(token)
            if rng.random() < 0.06:
                evolved.append(next_token)
                next_token += 1
        if not evolved:
            evolved = [next_token]
            next_token += 1
        # Occasional intra-version duplicate.
        if evolved and rng.random() < 0.3:
            evolved.insert(rng.randrange(len(evolved)), rng.choice(evolved))
        current = evolved
        versions.append(list(current))
    return versions


def to_streams(token_versions):
    return [
        BackupStream([Chunk(fp(t), 512 + (t % 7) * 64) for t in tokens], tag=f"v{k}")
        for k, tokens in enumerate(token_versions, start=1)
    ]


class TestBackupRestoreProperty:
    @given(version_histories())
    @settings(max_examples=40, deadline=None)
    def test_hidestore_round_trips_every_version(self, history):
        streams = to_streams(history)
        system = HiDeStore(container_size=8 * KB)
        for stream in streams:
            system.backup(stream)
        for version_id, stream in enumerate(streams, start=1):
            restored = list(system.restore_chunks(version_id))
            assert [c.fingerprint for c in restored] == stream.fingerprints()
            assert [c.size for c in restored] == [c.size for c in stream]

    @given(version_histories())
    @settings(max_examples=30, deadline=None)
    def test_traditional_system_round_trips_every_version(self, history):
        streams = to_streams(history)
        system = BackupSystem(ExactFullIndex(), container_size=8 * KB)
        for stream in streams:
            system.backup(stream)
        for version_id, stream in enumerate(streams, start=1):
            restored = list(system.restore_chunks(version_id))
            assert [c.fingerprint for c in restored] == stream.fingerprints()

    @given(version_histories())
    @settings(max_examples=30, deadline=None)
    def test_hidestore_never_beats_exact_dedup(self, history):
        streams = to_streams(history)
        system = HiDeStore(container_size=8 * KB)
        for stream in streams:
            system.backup(stream)
        exact = exact_dedup_ratio(streams)
        assert system.dedup_ratio <= exact + 1e-9

    @given(version_histories())
    @settings(max_examples=30, deadline=None)
    def test_hidestore_matches_exact_dedup_without_skips(self, history):
        """Adjacent-derived histories (no reappearance) are deduped exactly."""
        streams = to_streams(history)
        # The strategy derives each version from its predecessor, so a chunk
        # absent from version k never reappears — HiDeStore's sweet spot.
        system = HiDeStore(container_size=8 * KB)
        for stream in streams:
            system.backup(stream)
        assert abs(system.dedup_ratio - exact_dedup_ratio(streams)) < 1e-9

    @given(version_histories())
    @settings(max_examples=20, deadline=None)
    def test_flatten_preserves_restores(self, history):
        streams = to_streams(history)
        system = HiDeStore(container_size=8 * KB)
        for stream in streams:
            system.backup(stream)
        system.chain.flatten()
        system.chain.flatten()  # idempotence under repetition
        for version_id, stream in enumerate(streams, start=1):
            restored = list(system.restore_chunks(version_id))
            assert [c.fingerprint for c in restored] == stream.fingerprints()

    @given(version_histories())
    @settings(max_examples=20, deadline=None)
    def test_retire_preserves_restores(self, history):
        streams = to_streams(history)
        system = HiDeStore(container_size=8 * KB)
        for stream in streams:
            system.backup(stream)
        system.retire()
        for version_id, stream in enumerate(streams, start=1):
            restored = list(system.restore_chunks(version_id))
            assert [c.fingerprint for c in restored] == stream.fingerprints()

    @given(version_histories())
    @settings(max_examples=20, deadline=None)
    def test_deleting_oldest_preserves_the_rest(self, history):
        streams = to_streams(history)
        system = HiDeStore(container_size=8 * KB)
        for stream in streams:
            system.backup(stream)
        system.retire()
        while len(system.version_ids()) > 1:
            system.delete_oldest()
            for version_id in system.version_ids():
                restored = list(system.restore_chunks(version_id))
                assert [c.fingerprint for c in restored] == streams[
                    version_id - 1
                ].fingerprints()


class TestChunkerProperties:
    @given(st.binary(min_size=0, max_size=30_000))
    @settings(max_examples=50, deadline=None)
    def test_fastcdc_lossless_and_bounded(self, data):
        chunker = FastCDCChunker(min_size=64, avg_size=256, max_size=1024)
        pieces = chunker.split(data)
        assert b"".join(pieces) == data
        for piece in pieces[:-1]:
            assert 64 <= len(piece) <= 1024

    @given(st.binary(min_size=0, max_size=20_000))
    @settings(max_examples=30, deadline=None)
    def test_tttd_lossless_and_bounded(self, data):
        chunker = TTTDChunker(min_size=128, avg_size=256, max_size=1024)
        pieces = chunker.split(data)
        assert b"".join(pieces) == data
        for piece in pieces[:-1]:
            assert len(piece) <= 1024

    @given(st.binary(min_size=0, max_size=10_000), st.integers(1, 2000))
    @settings(max_examples=30, deadline=None)
    def test_fixed_lossless(self, data, size):
        pieces = FixedChunker(size).split(data)
        assert b"".join(pieces) == data


class TestContainerProperties:
    @given(st.lists(st.integers(1, 500), min_size=1, max_size=40), st.data())
    @settings(max_examples=50, deadline=None)
    def test_byte_conservation_under_remove_and_compact(self, sizes, data):
        container = Container(1, capacity=500 * 50)
        added = 0
        for i, size in enumerate(sizes):
            container.add(Chunk(fp(i), size))
            added += size
        removable = data.draw(
            st.lists(st.integers(0, len(sizes) - 1), unique=True, max_size=len(sizes))
        )
        removed = sum(sizes[i] for i in removable)
        for i in removable:
            container.remove(fp(i))
        assert container.used == added - removed
        container.compact()
        assert container.used == added - removed
        assert container.written == container.used
        survivors = [i for i in range(len(sizes)) if i not in removable]
        for i in survivors:
            assert container.get(fp(i)).size == sizes[i]
