"""Mixed-tier repositories: hot metadata on one backend, cold containers
on another (``?archive=URL``), end to end through the CLI.

What §4.2 immutability buys operationally: sealed containers read
identically from any tier, so a repository can keep recipes, manifests
and the checkpoint on fast local storage while archival containers live
on SQLite or an object store — and restores, replication and repair all
cross the backend boundary transparently.
"""

import filecmp
import os
import random

import pytest

from repro.cli import main
from repro.repository import LocalRepository, materialize, read_tree
from repro.replication.repair import repair_from_mirror, scan_containers
from repro.replication.session import ReplicationSession
from repro.replication.targets import LocalMirror
from repro.storage.fake_s3 import FakeS3Server


@pytest.fixture(scope="module")
def s3_server():
    with FakeS3Server("127.0.0.1") as server:
        yield server


def make_tree(root, files=4, size=50_000, seed=0):
    rng = random.Random(seed)
    os.makedirs(root, exist_ok=True)
    for i in range(files):
        with open(os.path.join(root, f"f{i}.bin"), "wb") as handle:
            handle.write(rng.randbytes(size))
    return root


def assert_identical(a, b):
    names = sorted(os.listdir(a))
    match, mismatch, errors = filecmp.cmpfiles(a, b, names, shallow=False)
    assert (sorted(match), mismatch, errors) == (names, [], [])


def backup_twice(repo_spec, tmp_path, seed=1):
    """Two different backups, so v1's chunks retire to the cold tier."""
    src1 = make_tree(str(tmp_path / "src1"), seed=seed)
    src2 = make_tree(str(tmp_path / "src2"), files=2, seed=seed + 100)
    repo = LocalRepository(repo_spec)
    v1 = repo.backup_tree(read_tree(src1))["version_id"]
    repo.backup_tree(read_tree(src2))
    return repo, v1, src1


@pytest.fixture(params=["sqlite", "s3"])
def mixed_spec(request, tmp_path, s3_server):
    hot = str(tmp_path / "hot")
    if request.param == "sqlite":
        return f"file://{hot}?archive=sqlite://{tmp_path}/cold.db"
    return f"file://{hot}?archive={s3_server.url('bucket', f'mixed-{request.node.name}')}"


class TestMixedTierRestore:
    def test_restore_verify_byte_identical(self, mixed_spec, tmp_path):
        repo, v1, src1 = backup_twice(mixed_spec, tmp_path)
        plan, data = repo.restore(v1, verify=True, workers=4)
        out = str(tmp_path / "out")
        materialize(plan, data, out)
        assert_identical(src1, out)

    def test_containers_live_on_cold_tier_only(self, mixed_spec, tmp_path):
        backup_twice(mixed_spec, tmp_path)
        hot = str(tmp_path / "hot")
        # Hot tier holds the mutable metadata…
        assert os.path.isdir(os.path.join(hot, "recipes"))
        assert os.path.exists(os.path.join(hot, "checkpoint.json"))
        # …but no sealed containers: those are on the archive backend.
        containers_dir = os.path.join(hot, "containers")
        assert not os.path.isdir(containers_dir) or not os.listdir(containers_dir)

    def test_serial_and_prefetched_restores_agree(self, mixed_spec, tmp_path):
        repo, v1, src1 = backup_twice(mixed_spec, tmp_path)
        for workers, out_name in ((1, "serial"), (4, "pooled")):
            plan, data = repo.restore(v1, verify=True, workers=workers)
            out = str(tmp_path / out_name)
            materialize(plan, data, out)
            assert_identical(src1, out)


class TestS3RangedRestore:
    def test_restore_uses_parallel_ranged_gets(self, tmp_path, s3_server):
        spec = s3_server.url("bucket", "ranged-restore")
        repo, v1, src1 = backup_twice(spec, tmp_path)
        s3_server.clear_log()
        s3_server.latency = 0.01
        try:
            plan, data = repo.restore(v1, verify=True, workers=4)
            out = str(tmp_path / "out")
            materialize(plan, data, out)
        finally:
            s3_server.latency = 0.0
        assert_identical(src1, out)
        # The prefetching pool fetched container slots with ranged GETs.
        assert len(s3_server.ranged_get_records()) > 0


class TestReplicationAcrossBackends:
    def test_file_to_sqlite_and_back(self, tmp_path):
        repo_root = str(tmp_path / "repo")
        _repo, v1, src1 = backup_twice(repo_root, tmp_path)
        mirror_url = f"sqlite://{tmp_path}/mirror.db"
        report = ReplicationSession(repo_root, LocalMirror(mirror_url)).run()
        assert report.committed
        assert report.containers_shipped >= 1

        # Second hop: URL source back onto a plain directory.
        hop = str(tmp_path / "hop")
        report2 = ReplicationSession(mirror_url, LocalMirror(hop)).run()
        assert report2.committed
        plan, data = LocalRepository(hop).restore(v1, verify=True)
        out = str(tmp_path / "out")
        materialize(plan, data, out)
        assert_identical(src1, out)

    def test_resync_ships_nothing(self, tmp_path):
        repo_root = str(tmp_path / "repo")
        backup_twice(repo_root, tmp_path)
        mirror_url = f"sqlite://{tmp_path}/mirror.db"
        ReplicationSession(repo_root, LocalMirror(mirror_url)).run()
        again = ReplicationSession(repo_root, LocalMirror(mirror_url)).run()
        assert again.objects_shipped == 0
        assert again.containers_skipped >= 1

    def test_mixed_tier_source_replicates(self, tmp_path, s3_server):
        spec = (
            f"file://{tmp_path}/hot"
            f"?archive={s3_server.url('bucket', 'repl-mixed')}"
        )
        _repo, v1, src1 = backup_twice(spec, tmp_path)
        mirror = str(tmp_path / "mirror")
        report = ReplicationSession(spec, LocalMirror(mirror)).run()
        assert report.committed
        plan, data = LocalRepository(mirror).restore(v1, verify=True)
        out = str(tmp_path / "out")
        materialize(plan, data, out)
        assert_identical(src1, out)


class TestRepairAcrossBackends:
    def test_repair_file_repo_from_sqlite_mirror(self, tmp_path):
        repo_root = str(tmp_path / "repo")
        repo, v1, src1 = backup_twice(repo_root, tmp_path)
        mirror_url = f"sqlite://{tmp_path}/mirror.db"
        ReplicationSession(repo_root, LocalMirror(mirror_url)).run()

        containers_dir = os.path.join(repo_root, "containers")
        victim = sorted(os.listdir(containers_dir))[0]
        with open(os.path.join(containers_dir, victim), "r+b") as handle:
            handle.seek(64)
            handle.write(b"\xff" * 64)
        _scanned, damaged = scan_containers(repo_root, deep=True)
        assert victim in damaged

        report = repair_from_mirror(repo_root, LocalMirror(mirror_url), deep=True)
        assert report.ok
        assert victim in report.repaired
        repo.invalidate()
        plan, data = repo.restore(v1, verify=True)
        out = str(tmp_path / "out")
        materialize(plan, data, out)
        assert_identical(src1, out)

    def test_repair_sqlite_repo_from_file_mirror(self, tmp_path):
        repo_url = f"sqlite://{tmp_path}/repo.db"
        repo, v1, src1 = backup_twice(repo_url, tmp_path)
        mirror = str(tmp_path / "mirror")
        ReplicationSession(repo_url, LocalMirror(mirror)).run()

        # Corrupt one container object inside the SQLite backend.
        import sqlite3

        conn = sqlite3.connect(str(tmp_path / "repo.db"))
        with conn:
            name, blob = conn.execute(
                "SELECT name, data FROM objects WHERE name LIKE 'containers/%' "
                "ORDER BY name LIMIT 1"
            ).fetchone()
            bad = bytes(blob[:64]) + b"\xff" * 64 + bytes(blob[128:])
            conn.execute("UPDATE objects SET data = ? WHERE name = ?", (bad, name))
        conn.close()

        _scanned, damaged = scan_containers(repo_url, deep=True)
        assert damaged
        report = repair_from_mirror(repo_url, LocalMirror(mirror), deep=True)
        assert report.ok
        repo.invalidate()
        plan, data = repo.restore(v1, verify=True)
        out = str(tmp_path / "out")
        materialize(plan, data, out)
        assert_identical(src1, out)


class TestCLIBackendURLs:
    def test_backup_restore_verify_via_cli(self, tmp_path, s3_server):
        src = make_tree(str(tmp_path / "src"), seed=5)
        spec = (
            f"file://{tmp_path}/hot"
            f"?archive={s3_server.url('bucket', 'cli-mixed')}"
        )
        assert main(["backup", spec, src]) == 0
        out = str(tmp_path / "out")
        assert main(["restore", spec, "1", out, "--verify", "--workers", "2"]) == 0
        assert_identical(src, out)
        assert main(["verify", spec, "--deep"]) == 0

    def test_cli_replicate_and_repair_across_backends(self, tmp_path):
        src = make_tree(str(tmp_path / "src"), seed=6)
        repo = str(tmp_path / "repo")
        assert main(["backup", repo, src]) == 0
        mirror = f"sqlite://{tmp_path}/mirror.db"
        assert main(["replicate", repo, mirror]) == 0
        assert main(["repair", repo, "--from", mirror]) == 0

    def test_bare_path_equals_file_url(self, tmp_path):
        src = make_tree(str(tmp_path / "src"), seed=7)
        bare = str(tmp_path / "bare")
        url = f"file://{tmp_path}/url"
        assert main(["backup", bare, src]) == 0
        assert main(["backup", url, src]) == 0
        bare_files = {
            os.path.relpath(os.path.join(d, f), bare)
            for d, _, fs in os.walk(bare) for f in fs
        }
        url_root = str(tmp_path / "url")
        url_files = {
            os.path.relpath(os.path.join(d, f), url_root)
            for d, _, fs in os.walk(url_root) for f in fs
        }
        assert bare_files == url_files

    def test_help_mentions_backend_urls(self, capsys):
        with pytest.raises(SystemExit):
            main(["backup", "--help"])
        assert "backend URL" in capsys.readouterr().out

    def test_serve_help_carries_deprecation_note(self, capsys):
        with pytest.raises(SystemExit):
            main(["serve", "--help"])
        out = capsys.readouterr().out
        assert "deprecated" in out
        assert "URL" in out
