"""Tests for metric definitions and the analysis harnesses."""

import pytest

from repro.analysis import (
    format_observation_table,
    fragmentation_growth,
    measure_fragmentation,
    run_observation,
)
from repro.core.hidestore import HiDeStore
from repro.index import ExactFullIndex
from repro.metrics import (
    chunk_fragmentation_level,
    containers_referenced,
    dedup_ratio,
    exact_dedup_ratio,
    index_bytes_per_mb,
    lookups_per_gb,
    speed_factor,
)
from repro.pipeline.system import BackupSystem
from repro.storage.recipe import Recipe, RecipeEntry
from repro.units import GiB, KiB, MiB
from tests.conftest import make_stream


class TestDedupMetrics:
    def test_dedup_ratio(self):
        assert dedup_ratio(100, 25) == 0.75
        assert dedup_ratio(0, 0) == 0.0

    def test_exact_dedup_ratio(self):
        streams = [make_stream([1, 2], size=100), make_stream([2, 3], size=100)]
        # 4 chunks logical, 3 unique -> 25% eliminated.
        assert exact_dedup_ratio(streams) == 0.25

    def test_lookups_per_gb(self):
        assert lookups_per_gb(1000, GiB) == 1000
        assert lookups_per_gb(1000, 2 * GiB) == 500
        assert lookups_per_gb(5, 0) == 0.0

    def test_index_bytes_per_mb(self):
        assert index_bytes_per_mb(28, MiB) == 28
        assert index_bytes_per_mb(28, 0) == 0.0


class TestRestoreMetrics:
    def test_speed_factor(self):
        assert speed_factor(4 * MiB, 1) == 4.0
        assert speed_factor(4 * MiB, 4) == 1.0
        assert speed_factor(MiB, 0) == 0.0

    def test_cfl_perfect_packing(self):
        entries = [RecipeEntry(bytes([i]) * 20, 1024, 1 + i // 4) for i in range(8)]
        assert chunk_fragmentation_level(entries, container_bytes=4096) == 1.0

    def test_cfl_degrades_with_scatter(self):
        entries = [RecipeEntry(bytes([i]) * 20, 1024, 1 + i) for i in range(8)]
        cfl = chunk_fragmentation_level(entries, container_bytes=4096)
        assert cfl == pytest.approx(2 / 8)

    def test_cfl_empty_is_perfect(self):
        assert chunk_fragmentation_level([]) == 1.0

    def test_containers_referenced(self):
        recipe = Recipe(1)
        for cid in (1, 2, 2, 0, -1):
            recipe.append(bytes([cid % 7]) * 20, 10, cid)
        assert containers_referenced(recipe) == 2


class TestThroughputModel:
    def test_backup_seconds_combines_seeks_and_writes(self):
        from repro.metrics import modeled_backup_seconds
        from repro.storage.io_model import DiskModel

        model = DiskModel(index_lookup_seconds=0.01, transfer_bytes_per_second=100 * MiB)
        seconds = modeled_backup_seconds(
            logical_bytes=GiB, stored_bytes=100 * MiB, index_lookups=100, model=model
        )
        assert abs(seconds - (1.0 + 1.0)) < 1e-9

    def test_sequential_index_bytes_cheaper_than_seeks(self):
        from repro.metrics import modeled_backup_seconds

        random_probe = modeled_backup_seconds(GiB, 0, index_lookups=1000)
        sequential = modeled_backup_seconds(
            GiB, 0, index_lookups=0, sequential_index_bytes=1000 * 4096
        )
        assert sequential < random_probe

    def test_backup_throughput_inverse_of_seconds(self):
        from repro.metrics import modeled_backup_seconds, modeled_backup_throughput

        logical = 512 * MiB
        seconds = modeled_backup_seconds(logical, 64 * MiB, 500)
        assert abs(
            modeled_backup_throughput(logical, 64 * MiB, 500)
            - (logical / MiB) / seconds
        ) < 1e-9

    def test_restore_throughput(self):
        from repro.metrics import modeled_restore_throughput
        from repro.storage.io_model import DiskModel

        model = DiskModel(seek_seconds=0.0, transfer_bytes_per_second=100 * MiB)
        # Restoring 200 MiB logical by reading 100 MiB in 2 s... 1 s.
        assert abs(
            modeled_restore_throughput(200 * MiB, 10, 100 * MiB, model) - 200.0
        ) < 1e-6

    def test_zero_traffic_is_zero_throughput(self):
        from repro.metrics import modeled_backup_throughput, modeled_restore_throughput

        assert modeled_backup_throughput(0, 0, 0) == 0.0
        assert modeled_restore_throughput(0, 0, 0) == 0.0


class TestObservation:
    def test_tag_counts_follow_recurrence(self):
        streams = [
            make_stream([1, 2, 3], tag="v1"),
            make_stream([2, 3, 4], tag="v2"),
            make_stream([3, 4, 5], tag="v3"),
        ]
        result = run_observation(streams)
        assert result.versions == 3
        # After v3: chunk1 tagged v1, chunk2 tagged v2, chunks 3-5 tagged v3.
        assert result.counts[-1] == {1: 1, 2: 1, 3: 3}
        assert result.tag_series(1) == [3, 1, 1]

    def test_final_exclusive(self):
        streams = [make_stream([1, 2]), make_stream([2])]
        result = run_observation(streams)
        assert result.final_exclusive(1) == 1

    def test_decay_step_plateau(self):
        streams = [
            make_stream([1, 2, 3, 4]),
            make_stream([3, 4]),
            make_stream([3, 4]),
        ]
        result = run_observation(streams)
        assert result.decay_step(1) == 1

    def test_format_table_renders(self):
        streams = [make_stream([1, 2]), make_stream([2, 3])]
        table = format_observation_table(run_observation(streams))
        assert "V1" in table and "v2" in table

    def test_empty_observation(self):
        result = run_observation([])
        assert result.versions == 0
        assert result.counts == []


class TestFragmentationAnalysis:
    def _traditional(self, workload):
        system = BackupSystem(ExactFullIndex(), container_size=64 * KiB)
        for stream in workload.versions():
            system.backup(stream)
        return system

    def test_measure_traditional(self, small_workload):
        system = self._traditional(small_workload)
        frag = measure_fragmentation(system, 1)
        assert frag.version_id == 1
        assert frag.containers_referenced > 0
        assert 0 < frag.cfl <= 1.0
        assert frag.best_speed_factor > 0

    def test_growth_over_versions(self, small_workload):
        system = self._traditional(small_workload)
        growth = fragmentation_growth(system)
        assert len(growth) == 8
        # Figure 2: newer versions reference at least as many containers.
        assert growth[-1].containers_referenced >= growth[0].containers_referenced

    def test_hidestore_newest_is_dense(self, small_workload):
        system = HiDeStore(container_size=64 * KiB)
        for stream in small_workload.versions():
            system.backup(stream)
        growth = fragmentation_growth(system)
        assert growth[-1].cfl >= growth[0].cfl
