"""Tests for integrity verification and HiDeStore checkpointing."""

import os

import pytest

from repro.chunking.stream import Chunk, synthetic_fingerprint as fp
from repro.core import (
    HiDeStore,
    load_checkpoint,
    save_checkpoint,
    verify_system,
)
from repro.errors import IndexError_, ReproError
from repro.index import ExactFullIndex
from repro.pipeline.system import BackupSystem
from repro.storage import FileContainerStore, FileRecipeStore
from repro.units import KiB
from tests.conftest import make_stream


class TestVerifyTraditional:
    def test_clean_system_verifies(self, small_workload):
        system = BackupSystem(ExactFullIndex(), container_size=64 * KiB)
        for stream in small_workload.versions():
            system.backup(stream)
        report = verify_system(system)
        assert report.ok
        assert report.versions_checked == 8
        assert report.entries_checked == sum(
            len(s) for s in small_workload.versions()
        )

    def test_detects_missing_container(self, small_workload):
        system = BackupSystem(ExactFullIndex(), container_size=64 * KiB)
        system.backup(small_workload.version(1))
        system.containers.delete(system.containers.container_ids()[0])
        report = verify_system(system)
        assert not report.ok
        assert any("missing container" in issue for issue in report.issues)

    def test_detects_corrupt_recipe_size(self, small_workload):
        system = BackupSystem(ExactFullIndex(), container_size=64 * KiB)
        system.backup(small_workload.version(1))
        system.recipes.peek(1).entries[0].size += 1
        report = verify_system(system)
        assert any("size mismatch" in issue for issue in report.issues)

    def test_summary_text(self, small_workload):
        system = BackupSystem(ExactFullIndex(), container_size=64 * KiB)
        system.backup(small_workload.version(1))
        assert "OK" in verify_system(system).summary()


class TestVerifyHiDeStore:
    def build(self, workload):
        system = HiDeStore(container_size=64 * KiB)
        for stream in workload.versions():
            system.backup(stream)
        return system

    def test_clean_system_verifies(self, small_workload):
        assert verify_system(self.build(small_workload)).ok

    def test_verifies_after_flatten_retire_delete(self, small_workload):
        system = self.build(small_workload)
        system.chain.flatten()
        assert verify_system(system).ok
        system.retire()
        assert verify_system(system).ok
        system.delete_oldest()
        assert verify_system(system).ok

    def test_detects_location_map_corruption(self, small_workload):
        system = self.build(small_workload)
        victim = next(iter(system.pool.location))
        system.pool.location[victim] = 999_999
        report = verify_system(system)
        assert not report.ok

    def test_detects_lost_active_chunk(self, small_workload):
        system = self.build(small_workload)
        victim = next(iter(system.pool.location))
        cid = system.pool.location.pop(victim)
        system.pool.peek(cid).remove(victim)
        report = verify_system(system)
        assert not report.ok


class TestCheckpoint:
    def test_round_trip_equals_uninterrupted_run(self, small_workload, tmp_path):
        streams = small_workload.all_versions()
        containers = str(tmp_path / "c")
        recipes = str(tmp_path / "r")
        first = HiDeStore(
            container_store=FileContainerStore(containers),
            recipe_store=FileRecipeStore(recipes),
            container_size=64 * KiB,
        )
        for stream in streams[:4]:
            first.backup(stream)
        path = str(tmp_path / "ckpt.json")
        save_checkpoint(first, path)

        resumed = load_checkpoint(
            path, FileContainerStore(containers), FileRecipeStore(recipes)
        )
        for stream in streams[4:]:
            resumed.backup(stream)

        reference = HiDeStore(container_size=64 * KiB)
        for stream in streams:
            reference.backup(stream)

        assert abs(resumed.dedup_ratio - reference.dedup_ratio) < 1e-12
        for version_id, stream in enumerate(streams, start=1):
            restored = list(resumed.restore_chunks(version_id))
            assert [c.fingerprint for c in restored] == stream.fingerprints()
        assert verify_system(resumed).ok

    def test_preserves_configuration(self, tmp_path):
        system = HiDeStore(
            container_store=FileContainerStore(str(tmp_path / "c")),
            recipe_store=FileRecipeStore(str(tmp_path / "r")),
            history_depth=2,
            compaction_threshold=0.42,
            container_size=32 * KiB,
            lookup_unit_bytes=2048,
        )
        system.backup(make_stream([1, 2, 3], size=1024))
        path = str(tmp_path / "ckpt.json")
        save_checkpoint(system, path)
        loaded = load_checkpoint(
            path, FileContainerStore(str(tmp_path / "c")), FileRecipeStore(str(tmp_path / "r"))
        )
        assert loaded.history_depth == 2
        assert loaded.pool.compaction_threshold == 0.42
        assert loaded.container_size == 32 * KiB
        assert loaded.lookup_unit_bytes == 2048

    def test_preserves_payloads(self, tmp_path):
        system = HiDeStore(
            container_store=FileContainerStore(str(tmp_path / "c")),
            recipe_store=FileRecipeStore(str(tmp_path / "r")),
            container_size=16 * KiB,
        )
        stream = [Chunk(fp(t), 4, bytes([t] * 4)) for t in range(6)]
        from repro.chunking.stream import BackupStream

        system.backup(BackupStream(stream))
        path = str(tmp_path / "ckpt.json")
        save_checkpoint(system, path)
        loaded = load_checkpoint(
            path, FileContainerStore(str(tmp_path / "c")), FileRecipeStore(str(tmp_path / "r"))
        )
        restored = list(loaded.restore_chunks(1))
        assert [c.data for c in restored] == [bytes([t] * 4) for t in range(6)]

    def test_preserves_deletion_tags(self, small_workload, tmp_path):
        system = HiDeStore(
            container_store=FileContainerStore(str(tmp_path / "c")),
            recipe_store=FileRecipeStore(str(tmp_path / "r")),
            container_size=64 * KiB,
        )
        for stream in small_workload.versions():
            system.backup(stream)
        path = str(tmp_path / "ckpt.json")
        save_checkpoint(system, path)
        loaded = load_checkpoint(
            path, FileContainerStore(str(tmp_path / "c")), FileRecipeStore(str(tmp_path / "r"))
        )
        stats = loaded.delete_oldest()
        assert stats.versions_deleted == 1
        assert verify_system(loaded).ok

    def test_allocations_resume_above_checkpointed_ids(self, small_workload, tmp_path):
        system = HiDeStore(
            container_store=FileContainerStore(str(tmp_path / "c")),
            recipe_store=FileRecipeStore(str(tmp_path / "r")),
            container_size=64 * KiB,
        )
        for stream in small_workload.versions():
            system.backup(stream)
        highest = system.containers.next_id
        path = str(tmp_path / "ckpt.json")
        save_checkpoint(system, path)
        loaded = load_checkpoint(
            path, FileContainerStore(str(tmp_path / "c")), FileRecipeStore(str(tmp_path / "r"))
        )
        assert loaded.containers.next_id >= highest

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ReproError):
            load_checkpoint(str(tmp_path / "nope.json"))

    def test_bad_format_raises(self, tmp_path):
        path = tmp_path / "ckpt.json"
        path.write_text('{"format": "something-else"}')
        with pytest.raises(ReproError):
            load_checkpoint(str(path))

    def test_export_mid_version_rejected(self):
        from repro.core.double_cache import DoubleHashCache

        cache = DoubleHashCache()
        cache.insert(fp(1), 100, 1)
        with pytest.raises(IndexError_):
            cache.export_tables()

    def test_restore_tables_requires_empty_cache(self):
        from repro.core.double_cache import DoubleHashCache

        cache = DoubleHashCache()
        cache.insert(fp(1), 100, 1)
        cache.end_version()
        with pytest.raises(IndexError_):
            cache.restore_tables([])
