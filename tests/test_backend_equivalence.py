"""Cross-backend equivalence: memory and file stores must behave identically.

The benchmarks run on in-memory stores; the CLI runs on file-backed ones.
Any behavioural drift between the two backends (serialisation quirks,
billing differences, ID allocation) would silently invalidate the
benchmark results for real deployments — so we assert equality of every
observable: dedup accounting, restore sequences, container-read counts,
and chain shapes.
"""

import pytest

from repro.core import HiDeStore, verify_system
from repro.index import ExactFullIndex
from repro.pipeline.system import BackupSystem
from repro.storage import (
    FileContainerStore,
    FileRecipeStore,
    MemoryContainerStore,
    MemoryRecipeStore,
)
from repro.units import KiB


def hidestore_pair(tmp_path):
    memory = HiDeStore(container_size=64 * KiB)
    file_backed = HiDeStore(
        container_store=FileContainerStore(str(tmp_path / "c"), capacity=64 * KiB),
        recipe_store=FileRecipeStore(str(tmp_path / "r")),
        container_size=64 * KiB,
    )
    return memory, file_backed


def traditional_pair(tmp_path):
    memory = BackupSystem(ExactFullIndex(), container_size=64 * KiB)
    file_backed = BackupSystem(
        ExactFullIndex(),
        container_store=FileContainerStore(str(tmp_path / "c"), capacity=64 * KiB),
        recipe_store=FileRecipeStore(str(tmp_path / "r")),
        container_size=64 * KiB,
    )
    return memory, file_backed


@pytest.mark.parametrize("pair_factory", [hidestore_pair, traditional_pair])
class TestBackendEquivalence:
    def test_identical_backup_accounting(self, pair_factory, tmp_path, small_workload):
        memory, file_backed = pair_factory(tmp_path)
        for stream in small_workload.versions():
            a = memory.backup(stream)
            b = file_backed.backup(stream)
            assert a.unique_chunks == b.unique_chunks
            assert a.duplicate_chunks == b.duplicate_chunks
            assert a.stored_bytes == b.stored_bytes
        assert memory.dedup_ratio == file_backed.dedup_ratio
        assert len(memory.containers) == len(file_backed.containers)

    def test_identical_restore_sequences_and_reads(
        self, pair_factory, tmp_path, small_workload
    ):
        memory, file_backed = pair_factory(tmp_path)
        for stream in small_workload.versions():
            memory.backup(stream)
            file_backed.backup(stream)
        for version_id in (1, 4, 8):
            mem_before = memory.io.snapshot()
            file_before = file_backed.io.snapshot()
            a = [c.fingerprint for c in memory.restore_chunks(version_id)]
            b = [c.fingerprint for c in file_backed.restore_chunks(version_id)]
            assert a == b
            assert (
                memory.io.delta(mem_before).container_reads
                == file_backed.io.delta(file_before).container_reads
            )

    def test_both_verify_clean(self, pair_factory, tmp_path, small_workload):
        memory, file_backed = pair_factory(tmp_path)
        for stream in small_workload.versions():
            memory.backup(stream)
            file_backed.backup(stream)
        assert verify_system(memory).ok
        assert verify_system(file_backed).ok


class TestHiDeStoreChainEquivalence:
    def test_identical_recipe_chains(self, tmp_path, small_workload):
        memory, file_backed = hidestore_pair(tmp_path)
        for stream in small_workload.versions():
            memory.backup(stream)
            file_backed.backup(stream)
        memory.chain.flatten()
        file_backed.chain.flatten()
        for version_id in memory.recipes.version_ids():
            a = memory.recipes.peek(version_id)
            b = file_backed.recipes.peek(version_id)
            assert [(e.fingerprint, e.size, e.cid) for e in a.entries] == [
                (e.fingerprint, e.size, e.cid) for e in b.entries
            ]

    def test_identical_deletion_outcomes(self, tmp_path, small_workload):
        memory, file_backed = hidestore_pair(tmp_path)
        for stream in small_workload.versions():
            memory.backup(stream)
            file_backed.backup(stream)
        a = memory.delete_oldest()
        b = file_backed.delete_oldest()
        assert a.containers_deleted == b.containers_deleted
        assert a.bytes_reclaimed == b.bytes_reclaimed
        assert memory.recipes.version_ids() == file_backed.recipes.version_ids()
