"""The unified restore stack: scheduler plans, prefetched execution, knobs.

Covers the restore-side pipeline end to end:

* scheduler layer — FAA's native planner and the simulated planner derived
  from any :class:`RestoreAlgorithm` produce plans whose execution is
  byte-identical to the algorithm and billed identically;
* pipelined engine — parallel restores match serial ones byte for byte
  (local and over the daemon) at every worker/readahead combination;
* streaming ``materialize`` — bounded memory, ``.part`` + rename, no
  partial files after a mid-stream failure;
* ``verify`` — corrupted container payloads raise typed errors instead of
  restoring silently-wrong bytes;
* partial restore — one file out of a snapshot, local and remote;
* daemon failure path — a restore that dies mid-stream surfaces a typed
  ERROR frame and leaves the connection pool and target directory clean.
"""

from __future__ import annotations

import os
import random
import tracemalloc

import pytest

from repro.chunking.fingerprint import Fingerprinter
from repro.chunking.stream import BackupStream, Chunk
from repro.client import RemoteRepository
from repro.engine.restore import PipelinedRestoreEngine, restore_stream
from repro.errors import ReproError, RestoreError, VersionNotFoundError
from repro.pipeline.schemes import build_baseline
from repro.repository import LocalRepository, materialize, read_tree
from repro.restore import (
    ALACCRestore,
    ChunkCacheRestore,
    ContainerCacheRestore,
    FAARestore,
    FAAScheduler,
    HotSetRestore,
    OptimalContainerCacheRestore,
    execute_plan,
)
from repro.server import DaemonThread
from repro.units import KiB, MiB


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------
def payload_stream(seed: int, pool: list, n: int, tag: str) -> BackupStream:
    """Chunks drawn from a shared payload pool (cross-version duplicates)."""
    rng = random.Random(seed)
    fingerprinter = Fingerprinter()
    chunks = []
    for _ in range(n):
        if rng.random() < 0.6:
            data = pool[rng.randrange(len(pool))]
        else:
            data = rng.randbytes(rng.randrange(1500, 4000))
        chunks.append(fingerprinter.chunk(data))
    return BackupStream(chunks, tag=tag)


@pytest.fixture
def fragmented_system():
    """A traditional system with many small containers and real dedup."""
    rng = random.Random(3)
    pool = [rng.randbytes(rng.randrange(1500, 4000)) for _ in range(120)]
    system = build_baseline(container_size=32 * KiB)
    for v in range(3):
        system.backup(payload_stream(100 + v, pool, 600, tag=f"v{v}"))
    return system


def make_tree(base, files):
    os.makedirs(base, exist_ok=True)
    for rel, payload in files.items():
        path = os.path.join(base, rel)
        os.makedirs(os.path.dirname(path) or base, exist_ok=True)
        with open(path, "wb") as handle:
            handle.write(payload)
    return read_tree(base)


def tree_bytes(base):
    return {rel: open(path, "rb").read() for rel, path in read_tree(base)}


def synthetic_files(seed, count=4, size=40_000):
    rng = random.Random(seed)
    return {f"dir{i % 2}/file{i}.bin": rng.randbytes(size) for i in range(count)}


ALGORITHMS = [
    FAARestore,
    ALACCRestore,
    ChunkCacheRestore,
    ContainerCacheRestore,
    HotSetRestore,
    OptimalContainerCacheRestore,
]


# ----------------------------------------------------------------------
# Scheduler layer
# ----------------------------------------------------------------------
class TestSchedulerLayer:
    def test_faa_plan_invariants(self, fragmented_system):
        entries = fragmented_system.resolved_restore_range(
            fragmented_system.version_ids()[-1]
        )
        emitted = []
        for span in FAAScheduler().plan(entries):
            for read in span.reads:
                for slot in read.slots:
                    assert slot >= len(emitted), "read serves an already-emitted slot"
            emitted.extend(span.emit)
        assert emitted == list(range(len(entries)))

    @pytest.mark.parametrize("algorithm_cls", ALGORITHMS)
    def test_plan_execution_matches_algorithm(self, fragmented_system, algorithm_cls):
        system = fragmented_system
        version = system.version_ids()[-1]
        entries = system.resolved_restore_range(version)

        before = system.io.snapshot()
        direct = [
            bytes(c.data)
            for c in algorithm_cls().restore(entries, system._read_container)
        ]
        direct_reads = system.io.delta(before).container_reads

        scheduler = system.restore_scheduler(algorithm_cls())
        before = system.io.snapshot()
        planned = [
            bytes(c.data)
            for c in execute_plan(
                entries, scheduler.plan(entries), system._read_container
            )
        ]
        planned_reads = system.io.delta(before).container_reads

        assert planned == direct
        assert planned_reads == direct_reads

    def test_speed_factor_accounting_unchanged(self, fragmented_system):
        # The Fig. 11 metric must not move: restore() through the scheduler
        # bills the same reads the serial FAA loop always has.
        result = fragmented_system.restore(fragmented_system.version_ids()[-1])
        assert result.container_reads > 1
        assert result.speed_factor > 0


# ----------------------------------------------------------------------
# Pipelined engine
# ----------------------------------------------------------------------
class TestPrefetchedExecution:
    @pytest.mark.parametrize("workers,readahead", [(2, None), (4, 2), (4, 16)])
    def test_parallel_matches_serial(self, fragmented_system, workers, readahead):
        version = fragmented_system.version_ids()[-1]
        serial = [
            bytes(c.data) for c in restore_stream(fragmented_system, version)
        ]
        parallel = [
            bytes(c.data)
            for c in restore_stream(
                fragmented_system, version, workers=workers, readahead=readahead
            )
        ]
        assert parallel == serial

    @pytest.mark.parametrize("algorithm_cls", ALGORITHMS)
    def test_parallel_billing_matches_serial(self, fragmented_system, algorithm_cls):
        system = fragmented_system
        version = system.version_ids()[-1]
        before = system.io.snapshot()
        list(system.restore_chunks(version, restorer=algorithm_cls()))
        serial_reads = system.io.delta(before).container_reads
        before = system.io.snapshot()
        list(
            restore_stream(
                system, version, restorer=algorithm_cls(), workers=4
            )
        )
        assert system.io.delta(before).container_reads == serial_reads

    def test_engine_facade_restore_result(self, fragmented_system):
        version = fragmented_system.version_ids()[-1]
        serial = fragmented_system.restore(version)
        engine = PipelinedRestoreEngine(fragmented_system, workers=4)
        parallel = engine.restore(version)
        assert parallel.chunks == serial.chunks
        assert parallel.logical_bytes == serial.logical_bytes
        assert parallel.container_reads == serial.container_reads

    def test_abandoned_stream_shuts_pool_down(self, fragmented_system):
        version = fragmented_system.version_ids()[-1]
        stream = restore_stream(fragmented_system, version, workers=4)
        next(stream)
        stream.close()  # no hang, no leaked worker exceptions

    def test_rejects_bad_knobs(self, fragmented_system):
        version = fragmented_system.version_ids()[-1]
        with pytest.raises(RestoreError):
            list(restore_stream(fragmented_system, version, workers=0))
        with pytest.raises(RestoreError):
            list(
                restore_stream(
                    fragmented_system, version, workers=2, readahead=0
                )
            )


# ----------------------------------------------------------------------
# Streaming materialize
# ----------------------------------------------------------------------
class TestMaterializeStreaming:
    def test_large_file_bounded_memory(self, tmp_path):
        # 48 MiB of stream through materialize must not buffer whole files:
        # peak traced allocation stays near one block, far under file size.
        block = bytes(1024) * 1024  # 1 MiB, referenced repeatedly

        def blocks():
            for _ in range(48):
                yield block

        plan = [("big.bin", 48 * MiB)]
        tracemalloc.start()
        materialize(plan, blocks(), str(tmp_path / "out"))
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert os.path.getsize(tmp_path / "out" / "big.bin") == 48 * MiB
        assert peak < 12 * MiB, f"materialize buffered {peak} bytes"

    def test_boundary_straddling_blocks(self, tmp_path):
        rng = random.Random(5)
        files = [(f"f{i}", rng.randbytes(rng.randrange(0, 5000))) for i in range(20)]
        joined = b"".join(data for _, data in files)
        # Rechunk the stream at boundaries unrelated to file edges.
        blocks = [joined[i : i + 777] for i in range(0, len(joined), 777)]
        plan = [(rel, len(data)) for rel, data in files]
        assert materialize(plan, iter(blocks), str(tmp_path / "out")) == 20
        for rel, data in files:
            assert (tmp_path / "out" / rel).read_bytes() == data

    def test_short_stream_leaves_no_partial_file(self, tmp_path):
        plan = [("ok.bin", 4), ("short.bin", 10)]
        with pytest.raises(RestoreError, match="ended early"):
            materialize(plan, iter([b"abcd", b"1234"]), str(tmp_path / "out"))
        assert (tmp_path / "out" / "ok.bin").read_bytes() == b"abcd"
        assert not (tmp_path / "out" / "short.bin").exists()
        assert not list((tmp_path / "out").glob("**/*.part"))


# ----------------------------------------------------------------------
# Verified restore
# ----------------------------------------------------------------------
class TestVerifiedRestore:
    def _corrupted_repo(self, tmp_path):
        # Version 2 drops two of version 1's files, so their now-cold
        # chunks demote from the active pool into archival container files
        # we can tamper with on disk.
        files = synthetic_files(21, count=3)
        entries = make_tree(str(tmp_path / "src"), files)
        repo = LocalRepository(str(tmp_path / "repo"))
        repo.backup_tree(entries, tag="one")
        keep = sorted(files)[0]
        survivor = make_tree(str(tmp_path / "src2"), {keep: files[keep]})
        repo.backup_tree(survivor, tag="two")
        containers = tmp_path / "repo" / "containers"
        victims = sorted(containers.glob("container-*.hdsc"))
        assert victims, "expected archival containers after the demotion"
        for victim in victims:
            # Payloads sit at the end of the file; flipping the final byte
            # corrupts one chunk's data without breaking the framing.
            blob = bytearray(victim.read_bytes())
            blob[-1] ^= 0xFF
            victim.write_bytes(bytes(blob))
        return LocalRepository(str(tmp_path / "repo"))

    @pytest.mark.parametrize("workers", [1, 4])
    def test_verify_catches_corruption(self, tmp_path, workers):
        repo = self._corrupted_repo(tmp_path)
        plan, data = repo.restore(1, verify=True, workers=workers)
        with pytest.raises(RestoreError, match="integrity failure"):
            for _ in data:
                pass

    def test_unverified_restore_misses_it(self, tmp_path):
        # The control: without --verify the corruption streams through,
        # which is exactly why the switch exists.
        repo = self._corrupted_repo(tmp_path)
        plan, data = repo.restore(1)
        restored = b"".join(data)
        assert len(restored) == sum(size for _, size in plan)


# ----------------------------------------------------------------------
# Partial restore
# ----------------------------------------------------------------------
class TestPartialRestore:
    def test_local_single_file(self, tmp_path):
        files = synthetic_files(31, count=5, size=30_000)
        entries = make_tree(str(tmp_path / "src"), files)
        repo = LocalRepository(str(tmp_path / "repo"))
        repo.backup_tree(entries, tag="snap")
        target = files and sorted(files)[2]
        plan, data = repo.restore(1, file=target)
        assert plan == [(target, len(files[target]))]
        assert b"".join(data) == files[target]

    def test_partial_reads_fewer_containers(self, tmp_path):
        rng = random.Random(41)
        files = {f"f{i}.bin": rng.randbytes(600_000) for i in range(12)}
        entries = make_tree(str(tmp_path / "src"), files)
        repo = LocalRepository(str(tmp_path / "repo"))
        repo.backup_tree(entries, tag="snap")
        store = repo._open()
        before = store.io.snapshot()
        plan, data = repo.restore(1, file="f0.bin")
        assert b"".join(data) == files["f0.bin"]
        partial_reads = store.io.delta(before).container_reads
        before = store.io.snapshot()
        _, full = repo.restore(1)
        b"".join(full)
        full_reads = store.io.delta(before).container_reads
        assert partial_reads < full_reads

    def test_unknown_file_raises(self, tmp_path):
        entries = make_tree(str(tmp_path / "src"), synthetic_files(32, count=2))
        repo = LocalRepository(str(tmp_path / "repo"))
        repo.backup_tree(entries, tag="snap")
        with pytest.raises(VersionNotFoundError, match="no file"):
            repo.restore(1, file="nope.bin")

    def test_remote_single_file(self, tmp_path):
        files = synthetic_files(33, count=4)
        entries = make_tree(str(tmp_path / "src"), files)
        with DaemonThread(str(tmp_path / "served")) as address:
            with RemoteRepository(address, "alpha") as repo:
                repo.backup_tree(entries, tag="snap")
                target = sorted(files)[1]
                plan, data = repo.restore(
                    1, file=target, workers=2, verify=True
                )
                assert plan == [(target, len(files[target]))]
                assert b"".join(data) == files[target]

    def test_cli_partial_restore(self, tmp_path, capsys):
        from repro.cli import main

        files = synthetic_files(34, count=4)
        make_tree(str(tmp_path / "src"), files)
        repo_dir = str(tmp_path / "repo")
        assert main(["backup", repo_dir, str(tmp_path / "src")]) == 0
        target = sorted(files)[0]
        out = str(tmp_path / "out")
        assert main(
            ["restore", repo_dir, "1", out, "--file", target,
             "--workers", "2", "--verify"]
        ) == 0
        assert tree_bytes(out) == {target: files[target]}


# ----------------------------------------------------------------------
# Remote parallel restores and the failure path
# ----------------------------------------------------------------------
class TestDaemonRestorePath:
    def test_remote_parallel_matches_local_bytes(self, tmp_path):
        files = synthetic_files(51, count=6, size=60_000)
        entries = make_tree(str(tmp_path / "src"), files)
        with DaemonThread(str(tmp_path / "served"), restore_workers=4) as address:
            with RemoteRepository(address, "alpha") as repo:
                repo.backup_tree(entries, tag="snap")
                plan, data = repo.restore(1, workers=4, readahead=8)
                materialize(plan, data, str(tmp_path / "out"))
                stats = repo.stats()
        assert tree_bytes(str(tmp_path / "out")) == files
        # The per-stage restore timings land in the daemon's registry.
        histograms = stats["metrics"]["histograms"]
        assert "restore.send_seconds" in histograms
        assert "restore.container_read_seconds" in histograms
        assert "restore.assemble_seconds" in histograms

    def test_midstream_failure_is_typed_and_clean(self, tmp_path):
        rng = random.Random(61)
        files = {"f0.bin": rng.randbytes(1 * MiB), "f1.bin": rng.randbytes(6 * MiB)}
        entries = make_tree(str(tmp_path / "src"), files)
        with DaemonThread(str(tmp_path / "served"), restore_workers=4) as address:
            with RemoteRepository(address, "alpha") as repo:
                repo.backup_tree(entries, tag="one")
                # Version 2 drops f1.bin, demoting its 6 MiB of chunks into
                # multiple archival containers on disk.
                survivor = make_tree(
                    str(tmp_path / "src2"), {"f0.bin": files["f0.bin"]}
                )
                repo.backup_tree(survivor, tag="two")
                containers = tmp_path / "served" / "alpha" / "containers"
                victims = sorted(containers.glob("container-*.hdsc"))
                assert len(victims) >= 2, "need multiple containers mid-stream"
                victims[-1].unlink()  # the engine dies after streaming some data
                plan, data = repo.restore(1, workers=4)
                target = str(tmp_path / "out")
                with pytest.raises(ReproError):
                    materialize(plan, data, target)
                # No truncated files masquerade as restored ones.
                assert not list((tmp_path / "out").glob("**/*.part"))
                for rel, payload in tree_bytes(target).items():
                    assert payload == files[rel], f"partial file {rel} left behind"
                # The pooled connection was discarded, not reused mid-error:
                # the next request on the same client works.
                assert [row["version_id"] for row in repo.versions()] == [1, 2]
