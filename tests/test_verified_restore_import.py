"""Tests for verified restore, the delimited importer, and entry-range restore."""

import pytest

from repro.chunking.fingerprint import Fingerprinter
from repro.chunking.stream import BackupStream, Chunk
from repro.core import HiDeStore
from repro.errors import RestoreError, WorkloadError
from repro.index import ExactFullIndex
from repro.pipeline.system import BackupSystem
from repro.restore import VerifyingRestore
from repro.units import KiB
from repro.workloads import import_delimited
from tests.conftest import make_stream


def payload_stream(count=10, size=64):
    fingerprinter = Fingerprinter()
    return BackupStream(
        [fingerprinter.chunk(bytes([i]) * size) for i in range(count)]
    )


class TestVerifyingRestore:
    def test_clean_restore_verifies(self):
        system = HiDeStore(container_size=16 * KiB)
        system.backup(payload_stream())
        restorer = VerifyingRestore()
        out = list(system.restore_chunks(1, restorer=restorer))
        assert len(out) == 10
        assert restorer.chunks_verified == 10
        assert restorer.chunks_unverifiable == 0

    def test_detects_payload_corruption(self):
        system = HiDeStore(container_size=16 * KiB)
        system.backup(payload_stream())
        # Flip a byte inside a stored payload, keeping the recorded metadata.
        container = next(iter(system.pool.iter_containers()))
        fp, slot = next(container.items())
        container._slots[fp] = type(slot)(slot.offset, slot.size, b"\xff" * slot.size)
        with pytest.raises(RestoreError, match="integrity failure"):
            list(system.restore_chunks(1, restorer=VerifyingRestore()))

    def test_metadata_only_passthrough(self, small_workload):
        system = HiDeStore(container_size=64 * KiB)
        system.backup(small_workload.version(1))
        restorer = VerifyingRestore()
        out = list(system.restore_chunks(1, restorer=restorer))
        assert len(out) == 400
        assert restorer.chunks_unverifiable == 400

    def test_metadata_only_rejected_when_required(self, small_workload):
        system = HiDeStore(container_size=64 * KiB)
        system.backup(small_workload.version(1))
        with pytest.raises(RestoreError, match="no payload"):
            list(
                system.restore_chunks(
                    1, restorer=VerifyingRestore(require_payload=True)
                )
            )


class TestImportDelimited:
    def test_basic_two_versions(self, tmp_path):
        path = tmp_path / "dump.txt"
        path.write_text(
            "#version snap-a\n"
            "aabb 1000\n"
            "ccdd 2000\n"
            "#version snap-b\n"
            "aabb 1000\n"
            "eeff 3000\n"
        )
        streams = import_delimited(str(path))
        assert [s.tag for s in streams] == ["snap-a", "snap-b"]
        assert streams[0][0].size == 1000
        assert streams[0][0].fingerprint == bytes.fromhex("aabb").ljust(20, b"\x00")
        assert streams[0][0].fingerprint == streams[1][0].fingerprint

    def test_custom_columns_and_delimiter(self, tmp_path):
        path = tmp_path / "dump.csv"
        path.write_text("#version v1\n4096,cafe\n8192,beef\n")
        streams = import_delimited(
            str(path), fingerprint_field=1, size_field=0, delimiter=","
        )
        assert [c.size for c in streams[0]] == [4096, 8192]

    def test_no_size_column_uses_default(self, tmp_path):
        path = tmp_path / "dump.txt"
        path.write_text("#version v1\nabcd\n")
        streams = import_delimited(str(path), size_field=-1, default_size=4096)
        assert streams[0][0].size == 4096

    def test_implicit_first_version_and_comments(self, tmp_path):
        path = tmp_path / "dump.txt"
        path.write_text("# a comment\naabb 100\n")
        streams = import_delimited(str(path))
        assert len(streams) == 1
        assert streams[0].tag == "v1"

    def test_long_digests_truncated_to_sha1_width(self, tmp_path):
        path = tmp_path / "dump.txt"
        digest = "ab" * 32  # 64 hex chars = SHA-256 width
        path.write_text(f"#version v1\n{digest} 128\n")
        streams = import_delimited(str(path))
        assert len(streams[0][0].fingerprint) == 20

    def test_malformed_line_raises_with_location(self, tmp_path):
        path = tmp_path / "dump.txt"
        path.write_text("#version v1\nzzzz notanumber\n")
        with pytest.raises(WorkloadError, match="dump.txt:2"):
            import_delimited(str(path))

    def test_imported_trace_backs_up(self, tmp_path):
        path = tmp_path / "dump.txt"
        path.write_text(
            "#version v1\naa11 1000\nbb22 1000\n"
            "#version v2\naa11 1000\ncc33 1000\n"
        )
        system = HiDeStore(container_size=16 * KiB)
        for stream in import_delimited(str(path)):
            system.backup(stream)
        report = system.report
        assert report.versions == 2
        assert report.stored_bytes == 3000  # aa11 deduplicated


class TestRestoreEntryRange:
    def test_traditional_slice(self, small_workload):
        system = BackupSystem(ExactFullIndex(), container_size=64 * KiB)
        system.backup(small_workload.version(1))
        want = small_workload.version(1).fingerprints()[10:20]
        out = list(system.restore_entry_range(1, 10, 20))
        assert [c.fingerprint for c in out] == want

    def test_hidestore_slice_old_version(self, small_workload):
        system = HiDeStore(container_size=64 * KiB)
        for stream in small_workload.versions():
            system.backup(stream)
        want = small_workload.version(2).fingerprints()[50:75]
        out = list(system.restore_entry_range(2, 50, 75))
        assert [c.fingerprint for c in out] == want

    def test_slice_reads_fewer_containers_than_full(self, small_workload):
        system = HiDeStore(container_size=16 * KiB)
        for stream in small_workload.versions():
            system.backup(stream)
        before = system.io.snapshot()
        list(system.restore_entry_range(8, 0, 10))
        partial = system.io.delta(before).container_reads
        before = system.io.snapshot()
        list(system.restore_chunks(8))
        full = system.io.delta(before).container_reads
        assert partial < full

    def test_unknown_version_rejected(self):
        from repro.errors import VersionNotFoundError

        with pytest.raises(VersionNotFoundError):
            list(HiDeStore().restore_entry_range(1, 0, 5))

    def test_empty_slice(self, small_workload):
        system = HiDeStore(container_size=64 * KiB)
        system.backup(small_workload.version(1))
        assert list(system.restore_entry_range(1, 5, 5)) == []
