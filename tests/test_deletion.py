"""Tests for GC-free expired-version deletion (§4.5, §5.5)."""

import pytest

from repro.core.hidestore import HiDeStore
from repro.errors import DeletionError, VersionNotFoundError
from repro.units import KiB


def build(workload, **kwargs):
    system = HiDeStore(container_size=64 * KiB, **kwargs)
    for stream in workload.versions():
        system.backup(stream)
    return system


class TestDeleteOldest:
    def test_deletes_recipe_and_containers(self, small_workload):
        system = build(small_workload)
        tagged = system.deletion.containers_for(1)
        stats = system.delete_oldest()
        assert 1 not in system.recipes
        assert stats.versions_deleted == 1
        assert stats.containers_deleted == len(tagged)
        for cid in tagged:
            assert cid not in system.containers

    def test_reclaims_exclusive_bytes(self, small_workload):
        system = build(small_workload)
        before = system.stored_bytes()
        stats = system.delete_oldest()
        assert system.stored_bytes() == before - stats.bytes_reclaimed
        assert stats.bytes_reclaimed > 0

    def test_remaining_versions_restore_correctly(self, small_workload):
        system = build(small_workload)
        system.delete_oldest()
        system.delete_oldest()
        for version_id in system.version_ids():
            restored = list(system.restore_chunks(version_id))
            want = small_workload.version(version_id)
            assert [c.fingerprint for c in restored] == want.fingerprints()

    def test_sequential_deletion_down_to_horizon(self, small_workload):
        system = build(small_workload)
        horizon = system.demotion_horizon
        deletable = [v for v in system.version_ids() if v <= horizon]
        for _ in deletable:
            system.delete_oldest()
        assert system.version_ids()[0] > horizon

    def test_empty_system_raises(self):
        with pytest.raises(VersionNotFoundError):
            HiDeStore().delete_oldest()


class TestSafetyRails:
    def test_cannot_delete_beyond_demotion_horizon(self, small_workload):
        system = build(small_workload)
        # Versions 8 (newest) has not been demoted (depth 1 -> horizon 7).
        for _ in range(7):
            system.delete_oldest()
        with pytest.raises(DeletionError):
            system.delete_oldest()

    def test_cannot_delete_non_oldest(self, small_workload):
        system = build(small_workload)
        with pytest.raises(DeletionError):
            system.deletion.delete_version(3, system.demotion_horizon)

    def test_cannot_delete_unknown_version(self, small_workload):
        system = build(small_workload)
        with pytest.raises(DeletionError):
            system.deletion.delete_version(99, system.demotion_horizon)

    def test_retire_extends_horizon_to_newest(self, small_workload):
        system = build(small_workload)
        system.retire()
        assert system.demotion_horizon == 8
        for _ in range(8):
            system.delete_oldest()
        assert system.version_ids() == []


class TestNoGarbageCollection:
    def test_deletion_never_rewrites_containers(self, small_workload):
        """GC-free: deletion only removes containers, never copies chunks."""
        system = build(small_workload)
        writes_before = system.io.container_writes
        system.delete_oldest()
        assert system.io.container_writes == writes_before

    def test_deletion_is_fast(self, small_workload):
        system = build(small_workload)
        stats = system.delete_oldest()
        assert stats.delete_seconds < 0.1  # milliseconds, not seconds

    def test_deleted_containers_not_referenced_by_retained_recipes(self, small_workload):
        system = build(small_workload)
        tagged = set(system.deletion.containers_for(1))
        system.chain.flatten()
        system.delete_oldest()
        for version_id in system.version_ids():
            recipe = system.recipes.peek(version_id)
            referenced = {e.cid for e in recipe.entries if e.cid > 0}
            assert not (referenced & tagged)


class TestHistoryDepthInteraction:
    def test_depth_two_horizon_trails_by_two(self, skip_workload):
        system = build(skip_workload, history_depth=2)
        assert system.demotion_horizon == 8 - 2

    def test_depth_two_deletion_preserves_skipped_chunks(self, skip_workload):
        system = build(skip_workload, history_depth=2)
        system.delete_oldest()
        for version_id in system.version_ids():
            restored = list(system.restore_chunks(version_id))
            assert len(restored) == len(skip_workload.version(version_id))
