"""Chaos harness tests: determinism, fault delivery, invariant teeth.

The harness is only trustworthy if (a) a seed pins the entire schedule —
op order AND fault sites — so any red run replays exactly, (b) armed
faults actually fire against a live deployment without tripping the
invariants when recovery is enabled, and (c) the invariant checker is a
real oracle: injecting damage *without* recovery must turn the run red.
"""

import json
import os

import pytest

from repro.chaos import compile_schedule, run_scenario
from repro.chaos.scenario import validate_scenario
from repro.observability import MetricsRegistry


def small_scenario(**overrides):
    doc = {
        "name": "unit",
        "seed": 77,
        "clients": 2,
        "tenants": {"small": {"count": 3, "files": 2, "file_kb": 8, "churn": 0.5}},
        "phases": [
            {"name": "load", "ops_per_tenant": 2, "mix": {"backup": 1}},
            {"name": "seed-mirror", "ops_per_tenant": 1, "mix": {"replicate": 1}},
            {
                "name": "churn",
                "ops": 12,
                "mix": {"backup": 3, "restore": 2, "verify": 1, "delete": 1},
                "faults": [],
            },
        ],
    }
    doc.update(overrides)
    return validate_scenario(doc)


FAULTED = [
    {"kind": "enospc", "at_frac": 0.2, "op_kind": "backup"},
    {"kind": "bitflip", "at_frac": 0.5, "recover": True},
    {"kind": "latency", "at_frac": 0.8, "seconds": 0.005, "count": 4},
]


class TestScheduleDeterminism:
    def test_same_seed_same_digest_and_fault_sites(self):
        doc = small_scenario()
        doc["phases"][2]["faults"] = FAULTED
        first = compile_schedule(doc, seed=42)
        second = compile_schedule(doc, seed=42)
        assert first.digest() == second.digest()
        assert [(f.kind, f.op_index) for f in first.faults] == [
            (f.kind, f.op_index) for f in second.faults
        ]
        assert [(o.phase, o.tenant, o.kind) for o in first.ops] == [
            (o.phase, o.tenant, o.kind) for o in second.ops
        ]

    def test_different_seed_different_schedule(self):
        doc = small_scenario()
        assert compile_schedule(doc, seed=1).digest() != compile_schedule(
            doc, seed=2
        ).digest()

    def test_fault_site_honours_op_kind_pin(self):
        doc = small_scenario()
        doc["phases"][2]["faults"] = [
            {"kind": "enospc", "at_frac": 0.0, "op_kind": "backup"}
        ]
        schedule = compile_schedule(doc, seed=7)
        (fault,) = schedule.faults
        assert schedule.ops[fault.op_index].kind == "backup"


class TestChaosRuns:
    def test_faults_fire_without_violations(self, tmp_path):
        """Three distinct fault classes against a live engine: every one
        fires, every op failure is typed, every invariant holds."""
        doc = small_scenario()
        doc["phases"][2]["faults"] = FAULTED
        metrics = MetricsRegistry()
        report = run_scenario(
            doc,
            deploy="local",
            workdir=str(tmp_path / "run"),
            metrics=metrics,
        )
        assert report["ok"], json.dumps(report["invariants"], indent=2)
        assert report["faults_injected"] >= 3
        assert {f["kind"] for f in report["faults_fired"]} >= {
            "enospc", "bitflip", "latency"
        }
        assert report["invariant_failures"] == 0
        assert report["ops"]["by_status"].get("failed_untyped", 0) == 0

    def test_counters_surface_through_registry(self, tmp_path):
        doc = small_scenario()
        doc["phases"][2]["faults"] = FAULTED
        metrics = MetricsRegistry()
        report = run_scenario(
            doc, deploy="local", workdir=str(tmp_path / "run"), metrics=metrics
        )
        counters = metrics.snapshot()["counters"]
        assert counters.get("chaos.faults_injected", 0) >= 3
        assert counters.get("chaos.invariants_checked", 0) > 0
        assert counters.get("chaos.invariant_failures", 0) == 0
        assert report["metrics"].get("chaos.ops_total", 0) == (
            report["ops"]["attempted"]
        )
        # Latency quantiles ride along per op kind.
        assert "backup" in report["latency_seconds"]
        assert report["latency_seconds"]["backup"]["count"] > 0

    def test_report_written_to_disk(self, tmp_path):
        doc = small_scenario()
        path = str(tmp_path / "report.json")
        report = run_scenario(
            doc,
            deploy="local",
            workdir=str(tmp_path / "run"),
            metrics=MetricsRegistry(),
            report_path=path,
        )
        with open(path, encoding="utf-8") as handle:
            on_disk = json.load(handle)
        assert on_disk["schedule"]["digest"] == report["schedule"]["digest"]
        assert on_disk["ok"] is True


class TestNegativeControl:
    def test_unrecovered_bitflip_turns_the_run_red(self, tmp_path):
        """The acceptance oracle: damage injected WITHOUT recovery must be
        caught — a green invariant checker that cannot go red proves
        nothing."""
        doc = small_scenario()
        doc["phases"][2]["faults"] = [
            {"kind": "bitflip", "at_frac": 0.3, "recover": False}
        ]
        report = run_scenario(
            doc,
            deploy="local",
            workdir=str(tmp_path / "run"),
            metrics=MetricsRegistry(),
        )
        assert report["invariant_failures"] > 0
        assert report["ok"] is False
        broken = [
            inv for inv in report["invariants"]
            if not inv["ok"] and inv["name"] == "no_torn_versions"
        ]
        assert broken, "the bitflip must surface as a torn version"
