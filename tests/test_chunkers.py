"""Tests for all content-defined chunkers.

The invariants every chunker must satisfy:

1. **Lossless**: concatenating the chunks reproduces the input exactly.
2. **Size contract**: every chunk except the stream tail is within
   [min_size, max_size].
3. **Determinism**: the same bytes always split identically.
4. **Streaming equivalence**: splitting via arbitrary block boundaries
   equals splitting the whole buffer.
5. **Boundary-shift robustness** (CDC only): a one-byte prefix insertion
   re-chunks only a bounded prefix of the stream.
"""

import random

import pytest

from repro.chunking import (
    AEChunker,
    FastCDCChunker,
    FixedChunker,
    RabinChunker,
    TTTDChunker,
    make_chunker,
)
from repro.errors import ChunkingError

CDC_CHUNKERS = {
    "rabin": lambda: RabinChunker(min_size=256, avg_size=1024, max_size=4096),
    "tttd": lambda: TTTDChunker(min_size=512, avg_size=1024, max_size=4096),
    "fastcdc": lambda: FastCDCChunker(min_size=256, avg_size=1024, max_size=4096),
    "ae": lambda: AEChunker(avg_size=1024, max_size=4096),
}
ALL_CHUNKERS = dict(CDC_CHUNKERS, fixed=lambda: FixedChunker(1024))


def _data(seed: int, size: int) -> bytes:
    return random.Random(seed).getrandbits(8 * size).to_bytes(size, "big")


@pytest.mark.parametrize("name", sorted(ALL_CHUNKERS))
class TestUniversalInvariants:
    def test_lossless(self, name):
        chunker = ALL_CHUNKERS[name]()
        data = _data(1, 100_000)
        assert b"".join(chunker.split(data)) == data

    def test_size_contract(self, name):
        chunker = ALL_CHUNKERS[name]()
        data = _data(2, 80_000)
        pieces = chunker.split(data)
        for piece in pieces[:-1]:
            assert chunker.min_size <= len(piece) <= chunker.max_size
        assert 0 < len(pieces[-1]) <= chunker.max_size

    def test_deterministic(self, name):
        data = _data(3, 50_000)
        a = ALL_CHUNKERS[name]().split(data)
        b = ALL_CHUNKERS[name]().split(data)
        assert a == b

    def test_streaming_equals_whole_buffer(self, name):
        chunker = ALL_CHUNKERS[name]()
        data = _data(4, 60_000)
        whole = chunker.split(data)
        rng = random.Random(5)
        blocks = []
        pos = 0
        while pos < len(data):
            step = rng.randint(1, 7000)
            blocks.append(data[pos : pos + step])
            pos += step
        streamed = list(ALL_CHUNKERS[name]().split_stream(blocks))
        assert streamed == whole

    def test_empty_input(self, name):
        chunker = ALL_CHUNKERS[name]()
        assert chunker.split(b"") == []
        assert list(chunker.split_stream([])) == []

    def test_tiny_input_one_chunk(self, name):
        chunker = ALL_CHUNKERS[name]()
        data = b"xy"
        assert chunker.split(data) == [data]

    def test_chunk_bytes_fingerprints(self, name):
        chunker = ALL_CHUNKERS[name]()
        data = _data(6, 20_000)
        chunks = chunker.chunk_bytes(data)
        assert b"".join(c.data for c in chunks) == data
        assert all(len(c.fingerprint) == 20 for c in chunks)

    def test_chunk_stream_builds_backup_stream(self, name):
        chunker = ALL_CHUNKERS[name]()
        data = _data(7, 10_000)
        stream = chunker.chunk_stream([data], tag="t")
        assert stream.tag == "t"
        assert stream.logical_size == len(data)


@pytest.mark.parametrize("name", sorted(CDC_CHUNKERS))
class TestContentDefinedBehaviour:
    def test_average_size_in_ballpark(self, name):
        chunker = CDC_CHUNKERS[name]()
        data = _data(8, 400_000)
        pieces = chunker.split(data)
        average = len(data) / len(pieces)
        # Within a generous 3x band around the target average.
        assert chunker.avg_size / 3 <= average <= chunker.avg_size * 3

    def test_boundary_shift_robustness(self, name):
        """Inserting a prefix byte must not re-chunk the whole stream."""
        chunker = CDC_CHUNKERS[name]()
        data = _data(9, 200_000)
        original = set(chunker.split(data))
        shifted = set(chunker.split(b"!" + data))
        shared = len(original & shifted)
        # CDC re-synchronises: the vast majority of chunks survive the shift.
        assert shared >= len(original) * 0.5

    def test_local_edit_changes_few_chunks(self, name):
        chunker = CDC_CHUNKERS[name]()
        data = bytearray(_data(10, 200_000))
        original = chunker.split(bytes(data))
        data[100_000:100_010] = b"0123456789"
        edited = chunker.split(bytes(data))
        changed = len(set(edited) - set(original))
        assert changed <= 6  # an edit touches only the chunks around it


class TestFixedChunker:
    def test_everything_shifts_on_insert(self):
        """The boundary-shift problem fixed-size chunking suffers from."""
        chunker = FixedChunker(1024)
        data = _data(11, 50_000)
        original = set(chunker.split(data))
        shifted = set(chunker.split(b"!" + data))
        assert len(original & shifted) <= 2

    def test_exact_sizes(self):
        pieces = FixedChunker(100).split(b"a" * 250)
        assert [len(p) for p in pieces] == [100, 100, 50]

    def test_rejects_bad_size(self):
        with pytest.raises(ChunkingError):
            FixedChunker(0)


class TestConfigurationValidation:
    def test_ordering_enforced(self):
        with pytest.raises(ChunkingError):
            RabinChunker(min_size=4096, avg_size=1024, max_size=8192)

    def test_rabin_requires_power_of_two_average(self):
        with pytest.raises(ChunkingError):
            RabinChunker(min_size=256, avg_size=1000, max_size=4096)

    def test_fastcdc_requires_power_of_two_average(self):
        with pytest.raises(ChunkingError):
            FastCDCChunker(min_size=256, avg_size=1000, max_size=4096)

    def test_window_must_fit_min_size(self):
        with pytest.raises(ChunkingError):
            RabinChunker(min_size=16, avg_size=1024, max_size=4096, window=48)

    def test_tttd_divisors_positive(self):
        chunker = TTTDChunker(min_size=512, avg_size=1024, max_size=4096)
        assert chunker.main_divisor >= 2
        assert chunker.backup_divisor >= 2
        assert chunker.backup_divisor < chunker.main_divisor


class TestMakeChunker:
    @pytest.mark.parametrize("name", ["fixed", "rabin", "tttd", "fastcdc", "ae"])
    def test_factory_names(self, name):
        assert make_chunker(name) is not None

    def test_factory_is_case_insensitive(self):
        assert isinstance(make_chunker("FastCDC"), FastCDCChunker)

    def test_factory_rejects_unknown(self):
        with pytest.raises(ValueError):
            make_chunker("nope")

    def test_factory_forwards_kwargs(self):
        chunker = make_chunker("fixed", size=2048)
        assert chunker.size == 2048


class TestSeedIsolation:
    def test_different_seeds_cut_differently(self):
        data = _data(12, 100_000)
        a = FastCDCChunker(seed=1).split(data)
        b = FastCDCChunker(seed=2).split(data)
        assert a != b

    def test_same_seed_cuts_identically(self):
        data = _data(13, 100_000)
        assert TTTDChunker(seed=9).split(data) == TTTDChunker(seed=9).split(data)
