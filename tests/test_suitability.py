"""Tests for the workload-suitability tracer (§4's chunk-distribution trace)."""

from repro.analysis import trace_suitability
from repro.metrics import exact_dedup_ratio
from repro.workloads import SyntheticWorkload, WorkloadSpec, load_preset
from tests.conftest import make_stream


class TestGapAccounting:
    def test_adjacent_duplicates_have_gap_one(self):
        report = trace_suitability([make_stream([1, 2]), make_stream([1, 2])])
        assert report.reappear_bytes_by_gap == {1: 2048}
        assert report.adjacent_duplicate_bytes == 2048

    def test_skip_one_version_has_gap_two(self):
        report = trace_suitability(
            [make_stream([1]), make_stream([2]), make_stream([1])]
        )
        assert report.reappear_bytes_by_gap == {2: 1024}

    def test_intra_version_repeats_count_as_adjacent(self):
        report = trace_suitability([make_stream([1, 1, 1])])
        assert report.adjacent_duplicate_bytes == 2048
        assert report.unique_bytes == 1024

    def test_exact_ratio_matches_metric(self, small_workload):
        report = trace_suitability(small_workload.versions())
        assert abs(
            report.exact_dedup_ratio - exact_dedup_ratio(small_workload.versions())
        ) < 1e-12


class TestDepthEstimates:
    def test_depth_one_loses_gap_two_bytes(self):
        report = trace_suitability(
            [make_stream([1]), make_stream([2]), make_stream([1])]
        )
        assert report.missed_bytes_at_depth(1) == 1024
        assert report.missed_bytes_at_depth(2) == 0

    def test_estimates_bracket_measured_hidestore_ratio(self, skip_workload):
        """The tracer's depth estimate matches what HiDeStore measures."""
        from repro.core.hidestore import HiDeStore
        from repro.units import KiB

        report = trace_suitability(skip_workload.versions())
        for depth in (1, 2):
            system = HiDeStore(container_size=64 * KiB, history_depth=depth)
            for stream in skip_workload.versions():
                system.backup(stream)
            estimated = report.dedup_ratio_at_depth(depth)
            # The estimate is a lower bound (it counts every long-gap return).
            assert estimated <= system.dedup_ratio + 1e-9
            assert system.dedup_ratio - estimated < 0.02

    def test_recommended_depth_for_adjacent_workload_is_one(self, small_workload):
        report = trace_suitability(small_workload.versions())
        assert report.recommended_depth() == 1

    def test_recommended_depth_grows_for_skip_workloads(self, skip_workload):
        report = trace_suitability(skip_workload.versions())
        assert report.recommended_depth(tolerance=0.001) >= 2

    def test_macos_preset_wants_depth_two(self):
        report = trace_suitability(load_preset("macos", versions=10).versions())
        assert report.recommended_depth(tolerance=0.001) == 2


class TestSuitability:
    def test_versioned_workloads_are_suitable(self, small_workload):
        assert trace_suitability(small_workload.versions()).is_suitable()

    def test_long_cycle_workload_is_unsuitable(self):
        # Duplicates only return after a 4-version cycle: HiDeStore's
        # adjacent-version assumption does not hold.
        streams = [
            make_stream([1, 2]),
            make_stream([3, 4]),
            make_stream([5, 6]),
            make_stream([7, 8]),
            make_stream([1, 2]),
            make_stream([3, 4]),
        ]
        report = trace_suitability(streams)
        assert not report.is_suitable()
        assert report.recommended_depth(tolerance=0.001, max_depth=8) >= 4

    def test_no_redundancy_is_unsuitable(self):
        report = trace_suitability([make_stream([1]), make_stream([2])])
        assert not report.is_suitable()

    def test_summary_renders(self, small_workload):
        text = trace_suitability(small_workload.versions()).summary()
        assert "recommended depth" in text
        assert "suitable for HiDeStore" in text

    def test_empty_workload(self):
        report = trace_suitability([])
        assert report.versions == 0
        assert report.exact_dedup_ratio == 0.0
        assert not report.is_suitable()
