"""Tests for chunk/stream primitives (repro.chunking.stream)."""

import pytest

from repro.chunking.stream import (
    BackupStream,
    Chunk,
    concat_stream_bytes,
    synthetic_fingerprint,
)
from repro.errors import ChunkingError
from repro.units import FINGERPRINT_SIZE


class TestChunk:
    def test_basic_construction(self):
        chunk = Chunk(b"\x01" * 20, 4096)
        assert chunk.size == 4096
        assert not chunk.has_data
        assert chunk.data is None

    def test_with_payload(self):
        chunk = Chunk(b"\x02" * 20, 3, b"abc")
        assert chunk.has_data
        assert chunk.data == b"abc"

    def test_payload_length_must_match_size(self):
        with pytest.raises(ChunkingError):
            Chunk(b"\x02" * 20, 4, b"abc")

    def test_rejects_empty_fingerprint(self):
        with pytest.raises(ChunkingError):
            Chunk(b"", 10)

    def test_rejects_non_positive_size(self):
        with pytest.raises(ChunkingError):
            Chunk(b"\x01" * 20, 0)
        with pytest.raises(ChunkingError):
            Chunk(b"\x01" * 20, -5)

    def test_drop_data_strips_payload_only(self):
        chunk = Chunk(b"\x03" * 20, 2, b"hi")
        bare = chunk.drop_data()
        assert bare.data is None
        assert bare.fingerprint == chunk.fingerprint
        assert bare.size == chunk.size

    def test_drop_data_is_noop_without_payload(self):
        chunk = Chunk(b"\x03" * 20, 2)
        assert chunk.drop_data() is chunk

    def test_equality_ignores_payload(self):
        a = Chunk(b"\x04" * 20, 2, b"hi")
        b = Chunk(b"\x04" * 20, 2)
        assert a == b

    def test_short_fp(self):
        chunk = Chunk(b"\xab" * 20, 1)
        assert chunk.short_fp() == "abababab"


class TestSyntheticFingerprint:
    def test_width_matches_sha1(self):
        assert len(synthetic_fingerprint(0)) == FINGERPRINT_SIZE

    def test_distinct_tokens_never_collide(self):
        fps = {synthetic_fingerprint(t) for t in range(5000)}
        assert len(fps) == 5000

    def test_deterministic(self):
        assert synthetic_fingerprint(42) == synthetic_fingerprint(42)

    def test_rejects_negative(self):
        with pytest.raises(ChunkingError):
            synthetic_fingerprint(-1)

    def test_rejects_oversized_token(self):
        with pytest.raises(ChunkingError):
            synthetic_fingerprint(1 << 33)

    def test_leading_bytes_are_well_mixed(self):
        # Sequential tokens must not produce ordered fingerprints — SiLo's
        # min-hash similarity sampling depends on uniformity.
        fps = [synthetic_fingerprint(t) for t in range(1000)]
        assert fps != sorted(fps)
        # First-byte distribution should cover a large share of the space.
        assert len({fp[0] for fp in fps}) > 200


class TestBackupStream:
    def test_iterates_and_indexes(self):
        chunks = [Chunk(synthetic_fingerprint(t), 100) for t in range(5)]
        stream = BackupStream(chunks, tag="v1")
        assert len(stream) == 5
        assert stream[2].fingerprint == synthetic_fingerprint(2)
        assert [c.size for c in stream] == [100] * 5

    def test_logical_size(self):
        stream = BackupStream([Chunk(b"a" * 20, 10), Chunk(b"b" * 20, 30)])
        assert stream.logical_size == 40

    def test_unique_fingerprints_counts_distinct(self):
        fp = synthetic_fingerprint(1)
        stream = BackupStream([Chunk(fp, 1), Chunk(fp, 1), Chunk(b"x" * 20, 1)])
        assert stream.unique_fingerprints == 2

    def test_accepts_generators(self):
        stream = BackupStream(
            (Chunk(synthetic_fingerprint(t), 10) for t in range(3))
        )
        assert len(stream) == 3

    def test_fingerprints_list(self):
        stream = BackupStream([Chunk(synthetic_fingerprint(t), 1) for t in (3, 1)])
        assert stream.fingerprints() == [
            synthetic_fingerprint(3),
            synthetic_fingerprint(1),
        ]


class TestConcatStreamBytes:
    def test_concatenates_payloads_in_order(self):
        chunks = [Chunk(b"a" * 20, 2, b"he"), Chunk(b"b" * 20, 3, b"llo")]
        assert concat_stream_bytes(chunks) == b"hello"

    def test_raises_on_metadata_only_chunk(self):
        with pytest.raises(ChunkingError):
            concat_stream_bytes([Chunk(b"a" * 20, 2)])
