"""Tests for container stores (memory + file backends) and I/O billing."""

import os

import pytest

from repro.chunking.stream import Chunk, synthetic_fingerprint
from repro.errors import StorageError, UnknownContainerError
from repro.storage.container_store import FileContainerStore, MemoryContainerStore


def fill(container, tokens, size=100, with_data=False):
    for t in tokens:
        data = bytes([t % 256]) * size if with_data else None
        container.add(Chunk(synthetic_fingerprint(t), size, data))


@pytest.fixture(params=["memory", "file"])
def store(request, tmp_path):
    if request.param == "memory":
        return MemoryContainerStore(capacity=10_000)
    return FileContainerStore(str(tmp_path / "containers"), capacity=10_000)


class TestCommonBehaviour:
    def test_allocate_monotonic_ids_from_one(self, store):
        a = store.allocate()
        b = store.allocate()
        assert (a.container_id, b.container_id) == (1, 2)
        assert store.next_id == 3

    def test_write_read_round_trip(self, store):
        c = store.allocate()
        fill(c, range(5))
        store.write(c)
        loaded = store.read(c.container_id)
        assert loaded.chunk_count == 5
        assert synthetic_fingerprint(3) in loaded

    def test_write_seals(self, store):
        c = store.allocate()
        fill(c, [1])
        store.write(c)
        assert c.sealed

    def test_double_write_rejected(self, store):
        c = store.allocate()
        fill(c, [1])
        store.write(c)
        c2 = MemoryContainerStore(capacity=10_000).allocate()  # same id 1
        fill(c2, [2])
        with pytest.raises(StorageError):
            store.write(c2)

    def test_read_unknown_raises(self, store):
        with pytest.raises(UnknownContainerError):
            store.read(99)

    def test_delete(self, store):
        c = store.allocate()
        fill(c, [1])
        store.write(c)
        store.delete(c.container_id)
        assert c.container_id not in store
        with pytest.raises(UnknownContainerError):
            store.delete(c.container_id)

    def test_container_ids_sorted(self, store):
        for _ in range(3):
            c = store.allocate()
            fill(c, [c.container_id])
            store.write(c)
        assert store.container_ids() == [1, 2, 3]
        assert len(store) == 3

    def test_read_bills_io(self, store):
        c = store.allocate()
        fill(c, range(4), size=50)
        store.write(c)
        before = store.stats.snapshot()
        store.read(c.container_id)
        delta = store.stats.delta(before)
        assert delta.container_reads == 1
        assert delta.bytes_read == 200

    def test_write_bills_io(self, store):
        c = store.allocate()
        fill(c, range(4), size=50)
        before = store.stats.snapshot()
        store.write(c)
        delta = store.stats.delta(before)
        assert delta.container_writes == 1
        assert delta.bytes_written == 200

    def test_peek_does_not_bill(self, store):
        c = store.allocate()
        fill(c, [1])
        store.write(c)
        before = store.stats.snapshot()
        store.peek(c.container_id)
        assert store.stats.delta(before).container_reads == 0

    def test_stored_bytes(self, store):
        c = store.allocate()
        fill(c, range(3), size=100)
        store.write(c)
        assert store.stored_bytes() == 300


class TestFileStoreSpecifics:
    def test_payload_round_trip(self, tmp_path):
        store = FileContainerStore(str(tmp_path / "c"), capacity=10_000)
        c = store.allocate()
        fill(c, range(3), size=64, with_data=True)
        store.write(c)
        loaded = store.read(c.container_id)
        for t in range(3):
            assert loaded.get_chunk(synthetic_fingerprint(t)).data == bytes([t]) * 64

    def test_metadata_only_round_trip_keeps_none_payload(self, tmp_path):
        store = FileContainerStore(str(tmp_path / "c"), capacity=10_000)
        c = store.allocate()
        fill(c, range(3), with_data=False)
        store.write(c)
        loaded = store.read(c.container_id)
        assert loaded.get_chunk(synthetic_fingerprint(0)).data is None

    def test_reopen_resumes_id_allocation(self, tmp_path):
        root = str(tmp_path / "c")
        store = FileContainerStore(root, capacity=10_000)
        c = store.allocate()
        fill(c, [1])
        store.write(c)
        reopened = FileContainerStore(root, capacity=10_000)
        assert reopened.allocate().container_id == 2

    def test_corrupt_file_detected(self, tmp_path):
        root = str(tmp_path / "c")
        store = FileContainerStore(root, capacity=10_000)
        c = store.allocate()
        fill(c, [1])
        store.write(c)
        path = os.path.join(root, "container-00000001.hdsc")
        with open(path, "r+b") as handle:
            handle.write(b"XXXX")
        with pytest.raises(StorageError):
            store.read(1)

    def test_files_on_disk(self, tmp_path):
        root = str(tmp_path / "c")
        store = FileContainerStore(root, capacity=10_000)
        c = store.allocate()
        fill(c, [1])
        store.write(c)
        assert os.path.exists(os.path.join(root, "container-00000001.hdsc"))

    def test_foreign_files_do_not_break_store_open(self, tmp_path):
        """A stray non-numeric name ("container-backup.hdsc") must not
        crash container_ids / store open (regression: ValueError)."""
        root = str(tmp_path / "c")
        store = FileContainerStore(root, capacity=10_000)
        c = store.allocate()
        fill(c, [1])
        store.write(c)
        for name in ("container-backup.hdsc", "container-.hdsc", "README.txt"):
            with open(os.path.join(root, name), "wb") as handle:
                handle.write(b"not a container")
        reopened = FileContainerStore(root, capacity=10_000)
        assert reopened.container_ids() == [1]
        assert reopened.allocate().container_id == 2


class TestTmpHygiene:
    def test_open_sweeps_orphaned_tmp_files(self, tmp_path):
        root = str(tmp_path / "c")
        store = FileContainerStore(root, capacity=10_000)
        c = store.allocate()
        fill(c, [1])
        store.write(c)
        # A crashed writer leaves a half-written temp file behind.
        orphan = os.path.join(root, "container-00000002.hdsc.tmp")
        with open(orphan, "wb") as handle:
            handle.write(b"partial")
        reopened = FileContainerStore(root, capacity=10_000)
        assert not os.path.exists(orphan)
        assert reopened.container_ids() == [1]
        assert reopened.allocate().container_id == 2

    def test_failed_write_unlinks_tmp(self, tmp_path, monkeypatch):
        root = str(tmp_path / "c")
        store = FileContainerStore(root, capacity=10_000)
        c = store.allocate()
        fill(c, [1], with_data=True)

        def boom(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(os, "replace", boom)
        with pytest.raises(OSError):
            store.write(c)
        monkeypatch.undo()
        assert [n for n in os.listdir(root) if n.endswith(".tmp")] == []
        assert store.container_ids() == []
        # The failed write must not have billed I/O either.
        assert store.stats.container_writes == 0


class TestCompressedStore:
    def make(self, tmp_path, **kwargs):
        return FileContainerStore(str(tmp_path / "c"), capacity=10_000, **kwargs)

    def test_compressed_payload_round_trip(self, tmp_path):
        store = self.make(tmp_path, compress=True)
        c = store.allocate()
        fill(c, range(3), size=64, with_data=True)
        store.write(c)
        loaded = store.read(c.container_id)
        for t in range(3):
            assert loaded.get_chunk(synthetic_fingerprint(t)).data == bytes([t]) * 64
        # Repetitive payloads must actually shrink on disk.
        path = os.path.join(str(tmp_path / "c"), "container-00000001.hdsc")
        assert os.path.getsize(path) < 3 * 64

    def test_plain_store_reads_compressed_files(self, tmp_path):
        compressed = self.make(tmp_path, compress=True)
        c = compressed.allocate()
        fill(c, range(3), size=64, with_data=True)
        compressed.write(c)
        plain = self.make(tmp_path, compress=False)
        loaded = plain.read(1)
        assert loaded.get_chunk(synthetic_fingerprint(1)).data == bytes([1]) * 64

    def test_compressed_delete(self, tmp_path):
        store = self.make(tmp_path, compress=True)
        c = store.allocate()
        fill(c, [1], with_data=True)
        store.write(c)
        store.delete(1)
        assert 1 not in store
        with pytest.raises(UnknownContainerError):
            store.delete(1)

    def test_compressed_billing_uses_logical_bytes(self, tmp_path):
        store = self.make(tmp_path, compress=True)
        c = store.allocate()
        fill(c, range(4), size=50, with_data=True)
        before = store.stats.snapshot()
        store.write(c)
        delta = store.stats.delta(before)
        assert delta.container_writes == 1
        assert delta.bytes_written == 200  # logical, not compressed, bytes
        before = store.stats.snapshot()
        store.read(1)
        delta = store.stats.delta(before)
        assert delta.container_reads == 1
        assert delta.bytes_read == 200

    def test_compressed_peek_does_not_bill(self, tmp_path):
        store = self.make(tmp_path, compress=True)
        c = store.allocate()
        fill(c, [1], with_data=True)
        store.write(c)
        before = store.stats.snapshot()
        peeked = store.peek(1)
        assert peeked.get_chunk(synthetic_fingerprint(1)).data == bytes([1]) * 100
        delta = store.stats.delta(before)
        assert delta.container_reads == 0
        assert delta.bytes_read == 0
