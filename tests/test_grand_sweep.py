"""Grand sweep: every scheme × every preset at small scale.

The last line of defence: whatever combination a user picks, backup must
account sanely and restore must return the exact original stream.
"""

import pytest

from repro.metrics import exact_dedup_ratio
from repro.pipeline import SCHEMES, build_scheme
from repro.units import KiB
from repro.workloads import load_preset, preset_names

VERSIONS = 4
CHUNKS = 150


@pytest.mark.parametrize("preset", preset_names())
@pytest.mark.parametrize("scheme", sorted(SCHEMES))
def test_scheme_on_preset(scheme, preset):
    workload = load_preset(preset, versions=VERSIONS, chunks_per_version=CHUNKS)
    system = build_scheme(scheme, container_size=64 * KiB)
    reports = [system.backup(stream) for stream in workload.versions()]

    # Accounting sanity.
    for report in reports:
        assert report.total_chunks == report.unique_chunks + report.duplicate_chunks
        assert 0 <= report.stored_bytes <= report.logical_bytes
    exact = exact_dedup_ratio(workload.versions())
    assert system.dedup_ratio <= exact + 1e-9
    assert system.dedup_ratio >= 0.0

    # Every version restores byte-sequence-exactly.
    for version_id in system.version_ids():
        restored = list(system.restore_chunks(version_id))
        want = workload.version(version_id)
        assert [c.fingerprint for c in restored] == want.fingerprints()
        assert sum(c.size for c in restored) == want.logical_size
