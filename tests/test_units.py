"""Tests for repro.units: size formatting/parsing and constants."""

import pytest

from repro.units import (
    AVERAGE_CHUNK_SIZE,
    CONTAINER_SIZE,
    FINGERPRINT_SIZE,
    GiB,
    KiB,
    MiB,
    RECIPE_ENTRY_SIZE,
    format_bytes,
    parse_bytes,
)


class TestConstants:
    def test_paper_container_size_is_4mib(self):
        assert CONTAINER_SIZE == 4 * MiB

    def test_paper_fingerprint_is_sha1_width(self):
        assert FINGERPRINT_SIZE == 20

    def test_paper_recipe_entry_is_28_bytes(self):
        # 20-byte fingerprint + 4-byte CID + 4-byte size (paper §2.1).
        assert RECIPE_ENTRY_SIZE == 28

    def test_unit_ladder(self):
        assert KiB == 1024
        assert MiB == 1024 * KiB
        assert GiB == 1024 * MiB
        assert AVERAGE_CHUNK_SIZE == 8 * KiB


class TestFormatBytes:
    def test_bytes(self):
        assert format_bytes(0) == "0 B"
        assert format_bytes(512) == "512 B"

    def test_kib(self):
        assert format_bytes(2048) == "2.0 KiB"

    def test_mib(self):
        assert format_bytes(4 * MiB) == "4.0 MiB"

    def test_gib(self):
        assert format_bytes(3 * GiB) == "3.0 GiB"

    def test_huge_values_stay_tib(self):
        assert format_bytes(5000 * GiB).endswith("TiB")


class TestParseBytes:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("123", 123),
            ("4MiB", 4 * MiB),
            ("4MB", 4 * MiB),
            ("8 kb", 8 * KiB),
            ("1g", GiB),
            ("2.5 MiB", int(2.5 * MiB)),
            ("100b", 100),
        ],
    )
    def test_valid(self, text, expected):
        assert parse_bytes(text) == expected

    @pytest.mark.parametrize("text", ["", "abc", "MiB", "12q"])
    def test_invalid(self, text):
        with pytest.raises(ValueError):
            parse_bytes(text)

    def test_round_trip_with_format(self):
        for value in (1, 2048, 4 * MiB, 3 * GiB):
            assert parse_bytes(format_bytes(value)) == value
