"""Tests for HiDeStore's double-hash fingerprint cache (§4.1, Figure 5)."""

import pytest

from repro.chunking.stream import synthetic_fingerprint as fp
from repro.core.double_cache import DoubleHashCache
from repro.errors import IndexError_


class TestFigureFiveCases:
    def test_case_one_unique(self):
        cache = DoubleHashCache()
        assert cache.classify(fp(1)) is None

    def test_case_two_hit_previous_migrates(self):
        cache = DoubleHashCache()
        cache.insert(fp(1), 100, 5)
        cache.end_version()  # T2 -> T1
        entry = cache.classify(fp(1))
        assert entry is not None and entry.cid == 5
        # Migrated: a second end_version leaves no cold residue for it.
        cold = cache.end_version()
        assert fp(1) not in cold

    def test_case_three_hit_current_noop(self):
        cache = DoubleHashCache()
        cache.insert(fp(1), 100, 5)
        entry = cache.classify(fp(1))
        assert entry is not None and entry.cid == 5

    def test_unique_then_insert_becomes_current(self):
        cache = DoubleHashCache()
        assert cache.classify(fp(1)) is None
        cache.insert(fp(1), 100, 3)
        assert cache.classify(fp(1)).cid == 3


class TestVersionLifecycle:
    def test_cold_residue_is_unreferenced_chunks(self):
        cache = DoubleHashCache()
        for t in (1, 2, 3):
            cache.insert(fp(t), 100, 1)
        cache.end_version()
        # Version 2 references only chunk 2.
        assert cache.classify(fp(2)) is not None
        cold = cache.end_version()
        assert set(cold) == {fp(1), fp(3)}

    def test_first_end_version_has_no_cold(self):
        cache = DoubleHashCache()
        cache.insert(fp(1), 100, 1)
        assert cache.end_version() == {}

    def test_cold_entries_removed_from_cache(self):
        cache = DoubleHashCache()
        cache.insert(fp(1), 100, 1)
        cache.end_version()
        cache.end_version()  # fp(1) falls cold
        assert fp(1) not in cache
        assert cache.classify(fp(1)) is None


class TestHistoryDepth:
    def test_depth_two_keeps_skipped_chunks_hot(self):
        cache = DoubleHashCache(history_depth=2)
        cache.insert(fp(1), 100, 1)
        cache.end_version()  # after v1
        cold = cache.end_version()  # after v2 (fp1 absent)
        assert cold == {}  # not cold yet: depth 2
        assert cache.classify(fp(1)) is not None  # v3 finds it again

    def test_depth_one_evicts_skipped_chunks(self):
        cache = DoubleHashCache(history_depth=1)
        cache.insert(fp(1), 100, 1)
        cache.end_version()
        cold = cache.end_version()
        assert set(cold) == {fp(1)}

    def test_depth_two_evicts_after_two_absences(self):
        cache = DoubleHashCache(history_depth=2)
        cache.insert(fp(1), 100, 1)
        cache.end_version()
        cache.end_version()
        cold = cache.end_version()
        assert set(cold) == {fp(1)}

    def test_rejects_zero_depth(self):
        with pytest.raises(IndexError_):
            DoubleHashCache(history_depth=0)


class TestMaintenance:
    def test_apply_relocations_updates_cids(self):
        cache = DoubleHashCache()
        cache.insert(fp(1), 100, 1)
        cache.insert(fp(2), 100, 1)
        cache.end_version()
        cache.insert(fp(3), 100, 2)
        updated = cache.apply_relocations({fp(1): 9, fp(3): 9})
        assert updated == 2
        assert cache.location_of(fp(1)) == 9
        assert cache.location_of(fp(3)) == 9
        assert cache.location_of(fp(2)) == 1

    def test_location_of_prefers_current(self):
        cache = DoubleHashCache()
        cache.insert(fp(1), 100, 1)
        cache.end_version()
        cache.classify(fp(1))  # migrate to current
        cache.apply_relocations({fp(1): 7})
        assert cache.location_of(fp(1)) == 7

    def test_location_of_unknown_is_none(self):
        assert DoubleHashCache().location_of(fp(9)) is None

    def test_drain_returns_everything_and_empties(self):
        cache = DoubleHashCache(history_depth=2)
        cache.insert(fp(1), 100, 1)
        cache.end_version()
        cache.insert(fp(2), 100, 2)
        cache.end_version()
        drained = cache.drain()
        assert set(drained) == {fp(1), fp(2)}
        assert cache.previous_size == 0


class TestAccounting:
    def test_hit_ratio(self):
        cache = DoubleHashCache()
        cache.classify(fp(1))  # miss
        cache.insert(fp(1), 100, 1)
        cache.classify(fp(1))  # hit
        assert cache.hit_ratio == 0.5
        assert cache.lookups == 2
        assert cache.hits == 1

    def test_transient_bytes_is_28_per_entry(self):
        cache = DoubleHashCache()
        for t in range(10):
            cache.insert(fp(t), 100, 1)
        cache.end_version()
        for t in range(5, 15):
            cache.insert(fp(t), 100, 2)
        # 10 in T1 (5 not yet migrated... insert() bypasses classify, so 10+10)
        assert cache.transient_bytes == (cache.current_size + cache.previous_size) * 28

    def test_sizes(self):
        cache = DoubleHashCache()
        cache.insert(fp(1), 100, 1)
        assert cache.current_size == 1
        cache.end_version()
        assert cache.previous_size == 1
        assert cache.current_size == 0
