"""Tests for workload generation: synthetic model, presets, traces, file trees."""

import pytest

from repro.errors import WorkloadError
from repro.metrics import exact_dedup_ratio
from repro.workloads import (
    PRESETS,
    FileTreeGenerator,
    FileTreeSpec,
    SyntheticWorkload,
    WorkloadSpec,
    history_depth_for,
    iter_trace,
    load_preset,
    preset_names,
    rates_for_target_ratio,
    read_trace,
    token_size,
    write_trace,
)


class TestWorkloadSpec:
    def test_validation(self):
        with pytest.raises(WorkloadError):
            WorkloadSpec(versions=0)
        with pytest.raises(WorkloadError):
            WorkloadSpec(chunks_per_version=0)
        with pytest.raises(WorkloadError):
            WorkloadSpec(modify_rate=1.5)
        with pytest.raises(WorkloadError):
            WorkloadSpec(major_factor=0.5)

    def test_new_data_rate(self):
        spec = WorkloadSpec(modify_rate=0.03, insert_rate=0.02)
        assert abs(spec.new_data_rate - 0.05) < 1e-12


class TestSyntheticWorkload:
    def test_version_count_and_tags(self):
        workload = SyntheticWorkload(WorkloadSpec(name="w", versions=4, chunks_per_version=50))
        streams = workload.all_versions()
        assert len(streams) == 4
        assert [s.tag for s in streams] == [f"w-v{k}" for k in range(1, 5)]

    def test_deterministic_regeneration(self):
        spec = WorkloadSpec(versions=5, chunks_per_version=100, seed=3)
        a = SyntheticWorkload(spec).all_versions()
        b = SyntheticWorkload(spec).all_versions()
        for sa, sb in zip(a, b):
            assert sa.fingerprints() == sb.fingerprints()

    def test_different_seeds_differ(self):
        a = SyntheticWorkload(WorkloadSpec(versions=3, chunks_per_version=100, seed=1))
        b = SyntheticWorkload(WorkloadSpec(versions=3, chunks_per_version=100, seed=2))
        assert a.version(2).fingerprints() != b.version(2).fingerprints()

    def test_adjacent_versions_highly_similar(self):
        workload = SyntheticWorkload(
            WorkloadSpec(versions=3, chunks_per_version=500, modify_rate=0.02,
                         delete_rate=0.01, insert_rate=0.01)
        )
        v1 = set(workload.version(1).fingerprints())
        v2 = set(workload.version(2).fingerprints())
        assert len(v1 & v2) > 0.9 * len(v1)

    def test_modified_chunks_never_return(self):
        """The §3 observation, enforced by the generator (skip_rate=0)."""
        workload = SyntheticWorkload(
            WorkloadSpec(versions=6, chunks_per_version=300, modify_rate=0.1, seed=5)
        )
        streams = workload.all_versions()
        seen_sets = [set(s.fingerprints()) for s in streams]
        for k in range(1, len(seen_sets) - 1):
            gone = seen_sets[k - 1] - seen_sets[k]
            for later in seen_sets[k + 1 :]:
                assert not (gone & later)

    def test_skip_rate_brings_chunks_back_exactly_one_version_later(self):
        workload = SyntheticWorkload(
            WorkloadSpec(versions=6, chunks_per_version=300, modify_rate=0.0,
                         delete_rate=0.2, insert_rate=0.0, skip_rate=1.0, seed=9)
        )
        streams = workload.all_versions()
        sets = [set(s.fingerprints()) for s in streams]
        gone_v2 = sets[0] - sets[1]
        assert gone_v2  # something was removed
        assert gone_v2 <= sets[2]  # and all of it returned in v3

    def test_version_index_bounds(self):
        workload = SyntheticWorkload(WorkloadSpec(versions=2, chunks_per_version=10))
        with pytest.raises(WorkloadError):
            workload.version(0)
        with pytest.raises(WorkloadError):
            workload.version(3)

    def test_major_upgrade_amplifies_churn(self):
        quiet = SyntheticWorkload(
            WorkloadSpec(versions=3, chunks_per_version=400, modify_rate=0.05, seed=4)
        )
        noisy = SyntheticWorkload(
            WorkloadSpec(versions=3, chunks_per_version=400, modify_rate=0.05,
                         major_every=1, major_factor=5.0, seed=4)
        )
        assert exact_dedup_ratio(noisy.versions()) < exact_dedup_ratio(quiet.versions())

    def test_expected_dedup_ratio_matches_metric(self):
        workload = SyntheticWorkload(WorkloadSpec(versions=4, chunks_per_version=200))
        assert abs(
            workload.expected_dedup_ratio() - exact_dedup_ratio(workload.versions())
        ) < 1e-12

    def test_token_size_bounds(self):
        for token in range(100):
            size = token_size(token, 8192)
            assert 4096 <= size < 12288


class TestRatesForTargetRatio:
    def test_hits_target_ratio(self):
        rates = rates_for_target_ratio(0.90, versions=30)
        workload = SyntheticWorkload(
            WorkloadSpec(versions=30, chunks_per_version=2000, seed=8, **rates)
        )
        assert abs(exact_dedup_ratio(workload.versions()) - 0.90) < 0.03

    def test_unreachable_target_clamps_to_zero(self):
        rates = rates_for_target_ratio(0.95, versions=4)
        assert rates["modify_rate"] == 0.0

    def test_validation(self):
        with pytest.raises(WorkloadError):
            rates_for_target_ratio(1.5, versions=10)
        with pytest.raises(WorkloadError):
            rates_for_target_ratio(0.9, versions=1)


class TestPresets:
    def test_table1_names(self):
        assert preset_names() == ["kernel", "gcc", "fslhomes", "macos"]
        assert set(PRESETS) == set(preset_names())

    @pytest.mark.parametrize("name", ["kernel", "gcc", "fslhomes", "macos"])
    def test_default_run_reproduces_table1_ratio(self, name):
        workload = load_preset(name, chunks_per_version=1500)
        measured = exact_dedup_ratio(workload.versions())
        assert abs(measured - PRESETS[name].paper_dedup_ratio) < 0.04

    def test_macos_needs_history_depth_two(self):
        assert history_depth_for("macos") == 2
        assert history_depth_for("kernel") == 1

    def test_version_override_keeps_churn(self):
        short = load_preset("kernel", versions=6, chunks_per_version=500)
        streams = short.all_versions()
        assert len(streams) == 6
        # Churn is intrinsic: adjacent versions differ.
        assert set(streams[0].fingerprints()) != set(streams[1].fingerprints())

    def test_tune_to_versions(self):
        tuned = load_preset("gcc", versions=40, chunks_per_version=400, tune_to_versions=True)
        measured = exact_dedup_ratio(tuned.versions())
        assert abs(measured - PRESETS["gcc"].paper_dedup_ratio) < 0.05

    def test_unknown_preset_rejected(self):
        with pytest.raises(WorkloadError):
            load_preset("windows")
        with pytest.raises(WorkloadError):
            history_depth_for("windows")


class TestTraceFormat:
    def test_round_trip(self, tmp_path, small_workload):
        path = str(tmp_path / "w.trace")
        count = write_trace(path, small_workload.versions())
        assert count == 8
        loaded = read_trace(path)
        for original, restored in zip(small_workload.versions(), loaded):
            assert restored.tag == original.tag
            assert restored.fingerprints() == original.fingerprints()
            assert [c.size for c in restored] == [c.size for c in original]

    def test_iter_trace_streams_versions(self, tmp_path, small_workload):
        path = str(tmp_path / "w.trace")
        write_trace(path, small_workload.versions())
        tags = [s.tag for s in iter_trace(path)]
        assert len(tags) == 8

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("not a trace\n")
        with pytest.raises(WorkloadError):
            read_trace(str(path))

    def test_chunk_before_version_rejected(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("# hidestore-trace v1\naabb 100\n")
        with pytest.raises(WorkloadError):
            read_trace(str(path))

    def test_malformed_record_rejected(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("# hidestore-trace v1\nV v1\nzzzz\n")
        with pytest.raises(WorkloadError):
            read_trace(str(path))


class TestFileTreeGenerator:
    def test_deterministic(self):
        spec = FileTreeSpec(files=4, mean_file_size=2048, versions=3, seed=2)
        a = list(FileTreeGenerator(spec).versions())
        b = list(FileTreeGenerator(spec).versions())
        assert a == b

    def test_versions_evolve_but_share_content(self):
        spec = FileTreeSpec(files=4, mean_file_size=8192, versions=2, seed=3)
        v1, v2 = list(FileTreeGenerator(spec).versions())
        shared = set(v1) & set(v2)
        assert shared
        assert any(v1[name] != v2[name] for name in shared)

    def test_version_blobs_concatenate_sorted(self):
        spec = FileTreeSpec(files=3, mean_file_size=1024, versions=1, seed=4)
        generator = FileTreeGenerator(spec)
        tree = next(generator.versions())
        tag, blob = next(generator.version_blobs())
        assert blob == b"".join(tree[k] for k in sorted(tree))
        assert tag == "tree-v1"

    def test_write_version(self, tmp_path):
        spec = FileTreeSpec(files=3, mean_file_size=512, versions=1, seed=5)
        generator = FileTreeGenerator(spec)
        tree = next(generator.versions())
        written = generator.write_version(tree, str(tmp_path / "out"))
        assert len(written) == 3
        for path in written:
            assert (tmp_path / "out").exists()

    def test_validation(self):
        with pytest.raises(WorkloadError):
            FileTreeSpec(files=0)
