"""Tests for the fingerprint indexes (exact, DDFS, Sparse, SiLo)."""

import pytest

from repro.chunking.stream import Chunk, synthetic_fingerprint
from repro.errors import IndexError_
from repro.index import DDFSIndex, ExactFullIndex, SiLoIndex, SparseIndex, make_index
from repro.metrics import exact_dedup_ratio
from repro.pipeline.system import BackupSystem


def chunks(tokens, size=1000):
    return [Chunk(synthetic_fingerprint(t), size) for t in tokens]


def run_workload(index, workload):
    system = BackupSystem(index)
    for stream in workload.versions():
        system.backup(stream)
    return system


class TestExactFullIndex:
    def test_classifies_duplicates_exactly(self):
        index = ExactFullIndex()
        batch = chunks([1, 2, 3])
        assert index.lookup_batch(batch) == [None, None, None]
        for i, c in enumerate(batch):
            index.record(c, 10 + i)
        assert index.lookup_batch(chunks([2, 9])) == [11, None]

    def test_every_probe_bills_disk(self):
        index = ExactFullIndex()
        index.lookup_batch(chunks([1, 2, 3]))
        assert index.stats.disk_lookups == 3

    def test_memory_is_zero_table_grows(self):
        index = ExactFullIndex()
        for i, c in enumerate(chunks(range(10))):
            index.record(c, i)
        assert index.memory_bytes == 0
        assert index.table_bytes == 10 * 28
        assert len(index) == 10

    def test_record_updates_location(self):
        index = ExactFullIndex()
        c = chunks([1])[0]
        index.record(c, 5)
        index.record(c, 9)  # rewritten copy
        assert index.lookup_batch([c]) == [9]


class TestDDFSIndex:
    def test_exact_deduplication(self, small_workload):
        system = run_workload(DDFSIndex(expected_chunks=10_000), small_workload)
        assert abs(system.dedup_ratio - exact_dedup_ratio(small_workload.versions())) < 1e-9

    def test_bloom_suppresses_unique_lookups(self):
        index = DDFSIndex(expected_chunks=10_000)
        index.lookup_batch(chunks(range(1000)))
        # All chunks unique and unknown: essentially no disk probes (only
        # Bloom false positives would bill, and there are none yet).
        assert index.stats.disk_lookups <= 10

    def test_locality_prefetch_serves_followers_from_cache(self):
        index = DDFSIndex(expected_chunks=10_000, cache_containers=4)
        batch = chunks(range(100))
        index.lookup_batch(batch)
        for c in batch:
            index.record(c, 1)  # all in container 1
        # Evict container 1's metadata from the cache.
        for filler_cid in range(2, 10):
            index.record(chunks([1000 + filler_cid])[0], filler_cid)
        before = index.stats.disk_lookups
        results = index.lookup_batch(batch)
        assert all(r == 1 for r in results)
        # One disk probe prefetches the whole container's metadata; the
        # other 99 chunks hit the locality cache.
        assert index.stats.disk_lookups - before == 1

    def test_memory_accounts_bloom_and_cache(self):
        index = DDFSIndex(expected_chunks=1000, cache_containers=2)
        base = index.memory_bytes
        assert base >= index.bloom.size_bytes
        for i, c in enumerate(chunks(range(50))):
            index.record(c, 1 + (i % 2))
        assert index.memory_bytes > base

    def test_cache_capacity_enforced(self):
        index = DDFSIndex(expected_chunks=1000, cache_containers=2)
        for cid in range(1, 6):
            index.record(chunks([cid])[0], cid)
        assert len(index._cache) <= 2

    def test_rejects_bad_cache_size(self):
        with pytest.raises(IndexError_):
            DDFSIndex(cache_containers=0)


class TestSparseIndex:
    def test_near_exact_on_versioned_workload(self, small_workload):
        index = SparseIndex(segment_chunks=128, sample_rate=16, max_champions=4)
        system = run_workload(index, small_workload)
        exact = exact_dedup_ratio(small_workload.versions())
        assert system.dedup_ratio >= exact - 0.05
        assert system.dedup_ratio <= exact + 1e-9

    def test_lookups_bounded_by_champions(self, small_workload):
        index = SparseIndex(segment_chunks=128, sample_rate=16, max_champions=4)
        run_workload(index, small_workload)
        segments = sum(
            (len(s) + 127) // 128 for s in small_workload.versions()
        )
        assert index.stats.disk_lookups <= segments * 4

    def test_memory_is_hooks_only(self, small_workload):
        index = SparseIndex(segment_chunks=128, sample_rate=16)
        system = run_workload(index, small_workload)
        # Far smaller than one entry per unique chunk.
        unique_chunks = index.table_bytes // 28
        assert index.memory_bytes < unique_chunks * 28 / 4

    def test_hook_capacity_bounds_entries(self):
        index = SparseIndex(segment_chunks=4, sample_rate=1, hook_capacity=2)
        batch = chunks([1, 2, 3, 4])
        for _ in range(5):
            index.lookup_batch(batch)
            for c in batch:
                index.record(c, 1)
            index.end_batch()
        assert all(len(v) <= 2 for v in index._sparse.values())

    def test_rejects_bad_parameters(self):
        with pytest.raises(IndexError_):
            SparseIndex(segment_chunks=0)
        with pytest.raises(IndexError_):
            SparseIndex(sample_rate=0)


class TestSiLoIndex:
    def test_near_exact_on_versioned_workload(self, small_workload):
        index = SiLoIndex(segment_chunks=64, segments_per_block=4, cache_blocks=8)
        system = run_workload(index, small_workload)
        exact = exact_dedup_ratio(small_workload.versions())
        assert system.dedup_ratio >= exact - 0.05
        assert system.dedup_ratio <= exact + 1e-9

    def test_similarity_table_is_tiny(self, small_workload):
        index = SiLoIndex(segment_chunks=64, segments_per_block=4)
        run_workload(index, small_workload)
        # One 24-byte entry per segment, not per chunk.
        assert index.memory_bytes < index.table_bytes / 10

    def test_block_loads_bill_disk(self, small_workload):
        index = SiLoIndex(segment_chunks=64, segments_per_block=4, cache_blocks=2)
        run_workload(index, small_workload)
        assert index.stats.disk_lookups > 0

    def test_cache_capacity_enforced(self, small_workload):
        index = SiLoIndex(segment_chunks=64, segments_per_block=2, cache_blocks=3)
        run_workload(index, small_workload)
        assert len(index._cache) <= 3

    def test_rejects_bad_parameters(self):
        with pytest.raises(IndexError_):
            SiLoIndex(segment_chunks=0)


class TestMakeIndex:
    @pytest.mark.parametrize(
        "name,cls",
        [("exact", ExactFullIndex), ("ddfs", DDFSIndex), ("sparse", SparseIndex), ("silo", SiLoIndex)],
    )
    def test_factory(self, name, cls):
        assert isinstance(make_index(name), cls)

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_index("btree")
