"""Tests for recipes, entry CID semantics and recipe stores."""

import pytest

from repro.chunking.stream import synthetic_fingerprint
from repro.errors import RecipeError
from repro.storage.recipe import (
    ACTIVE_CID,
    FileRecipeStore,
    MemoryRecipeStore,
    Recipe,
    RecipeEntry,
    pack_recipe,
    unpack_recipe,
)
from repro.units import RECIPE_ENTRY_SIZE


def build_recipe(version=1, tag="v1", cids=(1, 0, -3)):
    recipe = Recipe(version, tag)
    for i, cid in enumerate(cids):
        recipe.append(synthetic_fingerprint(i), 100 + i, cid)
    return recipe


class TestRecipeEntry:
    def test_kind_predicates(self):
        assert RecipeEntry(b"a" * 20, 1, 5).is_archival
        assert RecipeEntry(b"a" * 20, 1, ACTIVE_CID).is_active
        assert RecipeEntry(b"a" * 20, 1, -4).is_chained

    def test_chained_version(self):
        assert RecipeEntry(b"a" * 20, 1, -4).chained_version == 4

    def test_chained_version_rejects_non_chain(self):
        with pytest.raises(RecipeError):
            RecipeEntry(b"a" * 20, 1, 3).chained_version


class TestRecipe:
    def test_version_must_be_positive(self):
        with pytest.raises(RecipeError):
            Recipe(0)

    def test_default_tag(self):
        assert Recipe(7).tag == "v7"

    def test_logical_size_and_byte_size(self):
        recipe = build_recipe()
        assert recipe.logical_size == 100 + 101 + 102
        assert recipe.byte_size == 3 * RECIPE_ENTRY_SIZE

    def test_referenced_containers_in_first_use_order(self):
        recipe = Recipe(1)
        for cid in (5, 3, 5, 0, -2, 3):
            recipe.append(synthetic_fingerprint(cid + 10), 1, cid)
        assert recipe.referenced_containers() == [5, 3]

    def test_len_and_iter(self):
        recipe = build_recipe()
        assert len(recipe) == 3
        assert [e.size for e in recipe] == [100, 101, 102]


class TestSerialisation:
    def test_round_trip(self):
        recipe = build_recipe(version=9, tag="snapshot-9", cids=(1, 0, -3, 42))
        loaded = unpack_recipe(pack_recipe(recipe))
        assert loaded.version_id == 9
        assert loaded.tag == "snapshot-9"
        assert [e.cid for e in loaded] == [1, 0, -3, 42]
        assert [e.size for e in loaded] == [100, 101, 102, 103]
        assert [e.fingerprint for e in loaded] == [
            synthetic_fingerprint(i) for i in range(4)
        ]

    def test_negative_cids_survive(self):
        recipe = build_recipe(cids=(-1, -100))
        loaded = unpack_recipe(pack_recipe(recipe))
        assert [e.cid for e in loaded] == [-1, -100]

    def test_corrupt_blob_raises(self):
        with pytest.raises(RecipeError):
            unpack_recipe(b"garbage")

    def test_bad_magic_raises(self):
        blob = bytearray(pack_recipe(build_recipe()))
        blob[:4] = b"ZZZZ"
        with pytest.raises(RecipeError):
            unpack_recipe(bytes(blob))


@pytest.fixture(params=["memory", "file"])
def store(request, tmp_path):
    if request.param == "memory":
        return MemoryRecipeStore()
    return FileRecipeStore(str(tmp_path / "recipes"))


class TestRecipeStores:
    def test_write_read_round_trip(self, store):
        store.write(build_recipe(version=2))
        loaded = store.read(2)
        assert loaded.version_id == 2
        assert len(loaded) == 3

    def test_overwrite_allowed(self, store):
        store.write(build_recipe(version=2, cids=(0,)))
        store.write(build_recipe(version=2, cids=(7,)))
        assert [e.cid for e in store.read(2)][0] == 7

    def test_read_unknown_raises(self, store):
        with pytest.raises(RecipeError):
            store.read(5)

    def test_delete(self, store):
        store.write(build_recipe(version=1))
        store.delete(1)
        assert 1 not in store
        with pytest.raises(RecipeError):
            store.delete(1)

    def test_version_ids_sorted_and_latest(self, store):
        for v in (3, 1, 2):
            store.write(build_recipe(version=v))
        assert store.version_ids() == [1, 2, 3]
        assert store.latest_version() == 3

    def test_latest_of_empty_is_none(self, store):
        assert store.latest_version() is None

    def test_total_bytes(self, store):
        store.write(build_recipe(version=1))
        store.write(build_recipe(version=2))
        assert store.total_bytes() == 2 * 3 * RECIPE_ENTRY_SIZE

    def test_read_bills_recipe_read(self, store):
        store.write(build_recipe(version=1))
        before = store.stats.snapshot()
        store.read(1)
        assert store.stats.delta(before).recipe_reads == 1

    def test_peek_does_not_bill(self, store):
        store.write(build_recipe(version=1))
        before = store.stats.snapshot()
        store.peek(1)
        assert store.stats.delta(before).recipe_reads == 0
