"""Tests for the Container data structure (4 MiB chunk unit, paper Fig. 6)."""

import pytest

from repro.chunking.stream import Chunk, synthetic_fingerprint
from repro.errors import ContainerFullError, StorageError, UnknownChunkError
from repro.storage.container import Container


def chunk(token: int, size: int = 100, data: bool = False) -> Chunk:
    payload = bytes(size) if data else None
    return Chunk(synthetic_fingerprint(token), size, payload)


class TestConstruction:
    def test_positive_id_required(self):
        with pytest.raises(StorageError):
            Container(0)
        with pytest.raises(StorageError):
            Container(-3)

    def test_positive_capacity_required(self):
        with pytest.raises(StorageError):
            Container(1, capacity=0)

    def test_default_capacity_is_paper_4mib(self):
        assert Container(1).capacity == 4 * 1024 * 1024


class TestAdd:
    def test_add_assigns_sequential_offsets(self):
        c = Container(1, capacity=1000)
        s1 = c.add(chunk(1, 100))
        s2 = c.add(chunk(2, 250))
        assert (s1.offset, s1.size) == (0, 100)
        assert (s2.offset, s2.size) == (100, 250)
        assert c.used == 350
        assert c.chunk_count == 2

    def test_duplicate_fingerprint_rejected(self):
        c = Container(1, capacity=1000)
        c.add(chunk(1))
        with pytest.raises(StorageError):
            c.add(chunk(1))

    def test_overflow_rejected(self):
        c = Container(1, capacity=150)
        c.add(chunk(1, 100))
        with pytest.raises(ContainerFullError):
            c.add(chunk(2, 100))

    def test_fits_reflects_cursor_not_used(self):
        c = Container(1, capacity=300)
        c.add(chunk(1, 200))
        c.remove(synthetic_fingerprint(1))
        # 200 B freed but not contiguous until compaction (paper Fig. 6).
        assert not c.fits(200)
        c.compact()
        assert c.fits(200)

    def test_sealed_container_rejects_add(self):
        c = Container(1, capacity=1000)
        c.seal()
        with pytest.raises(StorageError):
            c.add(chunk(1))


class TestRemoveAndCompact:
    def test_remove_returns_slot(self):
        c = Container(1, capacity=1000)
        c.add(chunk(1, 120))
        slot = c.remove(synthetic_fingerprint(1))
        assert slot.size == 120
        assert c.used == 0
        assert c.is_empty

    def test_remove_unknown_raises(self):
        c = Container(1, capacity=1000)
        with pytest.raises(UnknownChunkError):
            c.remove(synthetic_fingerprint(9))

    def test_compact_reclaims_holes(self):
        c = Container(1, capacity=1000)
        for t in range(5):
            c.add(chunk(t, 100))
        c.remove(synthetic_fingerprint(1))
        c.remove(synthetic_fingerprint(3))
        reclaimed = c.compact()
        assert reclaimed == 200
        assert c.written == 300
        assert c.used == 300
        # Remaining chunks still retrievable, offsets now contiguous.
        offsets = sorted(c.get(synthetic_fingerprint(t)).offset for t in (0, 2, 4))
        assert offsets == [0, 100, 200]

    def test_compact_preserves_payloads(self):
        c = Container(1, capacity=1000)
        c.add(Chunk(synthetic_fingerprint(1), 3, b"abc"))
        c.add(Chunk(synthetic_fingerprint(2), 3, b"def"))
        c.remove(synthetic_fingerprint(1))
        c.compact()
        assert c.get_chunk(synthetic_fingerprint(2)).data == b"def"

    def test_utilization(self):
        c = Container(1, capacity=1000)
        c.add(chunk(1, 250))
        assert c.utilization == 0.25
        c.remove(synthetic_fingerprint(1))
        assert c.utilization == 0.0


class TestReadPath:
    def test_contains_and_get(self):
        c = Container(1, capacity=1000)
        c.add(chunk(5, 64))
        assert synthetic_fingerprint(5) in c
        assert synthetic_fingerprint(6) not in c
        assert c.get(synthetic_fingerprint(5)).size == 64

    def test_get_unknown_raises(self):
        c = Container(1, capacity=1000)
        with pytest.raises(UnknownChunkError):
            c.get(synthetic_fingerprint(1))

    def test_get_chunk_materialises(self):
        c = Container(1, capacity=1000)
        c.add(Chunk(synthetic_fingerprint(7), 2, b"zz"))
        out = c.get_chunk(synthetic_fingerprint(7))
        assert out.data == b"zz"
        assert out.fingerprint == synthetic_fingerprint(7)

    def test_chunks_iterates_in_offset_order(self):
        c = Container(1, capacity=1000)
        for t in (3, 1, 2):
            c.add(chunk(t, 50))
        fps = [ch.fingerprint for ch in c.chunks()]
        assert fps == [synthetic_fingerprint(t) for t in (3, 1, 2)]

    def test_fingerprints_lists_live_chunks(self):
        c = Container(1, capacity=1000)
        c.add(chunk(1))
        c.add(chunk(2))
        c.remove(synthetic_fingerprint(1))
        assert c.fingerprints() == [synthetic_fingerprint(2)]
