"""Tests for the file-level archive layer (manifests + partial restore)."""

import pytest

from repro.archive import DirectoryArchive, FileEntry, Manifest
from repro.chunking import FastCDCChunker, FixedChunker
from repro.core import HiDeStore
from repro.errors import ReproError, VersionNotFoundError
from repro.index import ExactFullIndex
from repro.pipeline.system import BackupSystem
from repro.units import KiB
from repro.workloads import FileTreeGenerator, FileTreeSpec


def tiny_chunker():
    return FastCDCChunker(min_size=256, avg_size=1024, max_size=4096)


def sample_tree(seed=1, files=6, size=8 * KiB):
    gen = FileTreeGenerator(FileTreeSpec(files=files, mean_file_size=size, versions=1, seed=seed))
    return next(gen.versions())


class TestManifest:
    def test_build_layout(self):
        manifest = Manifest.build(
            1, "t", files=[("a", 100), ("b", 250), ("c", 0)], chunk_sizes=[150, 200]
        )
        a, b, c = manifest.entry("a"), manifest.entry("b"), manifest.entry("c")
        assert (a.offset, a.size, a.first_entry, a.last_entry, a.skip_bytes) == (0, 100, 0, 1, 0)
        assert (b.offset, b.first_entry, b.last_entry, b.skip_bytes) == (100, 0, 2, 100)
        assert c.size == 0
        assert manifest.total_bytes == 350

    def test_build_rejects_overrun(self):
        with pytest.raises(ReproError):
            Manifest.build(1, "t", files=[("a", 500)], chunk_sizes=[100])

    def test_build_rejects_underrun(self):
        with pytest.raises(ReproError):
            Manifest.build(1, "t", files=[("a", 50)], chunk_sizes=[100])

    def test_json_round_trip(self):
        manifest = Manifest.build(
            3, "snap", files=[("x/y.bin", 128), ("z.bin", 72)], chunk_sizes=[200]
        )
        loaded = Manifest.from_json(manifest.to_json())
        assert loaded.version_id == 3
        assert loaded.tag == "snap"
        assert loaded.paths() == ["x/y.bin", "z.bin"]
        assert loaded.entry("x/y.bin") == manifest.entry("x/y.bin")

    def test_corrupt_json_rejected(self):
        with pytest.raises(ReproError):
            Manifest.from_json('{"nope": 1}')

    def test_unknown_path_rejected(self):
        manifest = Manifest.build(1, "t", files=[("a", 10)], chunk_sizes=[10])
        with pytest.raises(ReproError):
            manifest.entry("b")


@pytest.mark.parametrize("backend", ["hidestore", "traditional"])
class TestArchiveRoundTrip:
    def make(self, backend):
        if backend == "hidestore":
            system = HiDeStore(container_size=64 * KiB)
        else:
            system = BackupSystem(ExactFullIndex(), container_size=64 * KiB)
        return DirectoryArchive(system, chunker=tiny_chunker())

    def test_full_tree_round_trip(self, backend):
        archive = self.make(backend)
        tree = sample_tree()
        archive.backup_tree(tree, tag="s1")
        assert archive.restore_tree(1) == tree

    def test_multi_version_round_trip(self, backend):
        archive = self.make(backend)
        gen = FileTreeGenerator(FileTreeSpec(files=5, mean_file_size=8 * KiB, versions=4, seed=9))
        trees = list(gen.versions())
        for tree in trees:
            archive.backup_tree(tree)
        for version_id, tree in enumerate(trees, start=1):
            assert archive.restore_tree(version_id) == tree

    def test_every_file_partially_restorable(self, backend):
        archive = self.make(backend)
        tree = sample_tree(seed=4)
        archive.backup_tree(tree)
        for path, data in tree.items():
            assert archive.restore_file(1, path) == data

    def test_partial_restore_of_old_version(self, backend):
        archive = self.make(backend)
        gen = FileTreeGenerator(FileTreeSpec(files=5, mean_file_size=8 * KiB, versions=3, seed=11))
        trees = list(gen.versions())
        for tree in trees:
            archive.backup_tree(tree)
        shared = sorted(set(trees[0]) & set(trees[1]))
        for path in shared[:3]:
            assert archive.restore_file(1, path) == trees[0][path]

    def test_empty_file_restores(self, backend):
        archive = self.make(backend)
        tree = dict(sample_tree(seed=5), **{"empty.bin": b""})
        archive.backup_tree(tree)
        assert archive.restore_file(1, "empty.bin") == b""
        assert archive.restore_tree(1)["empty.bin"] == b""

    def test_deduplication_across_snapshots(self, backend):
        archive = self.make(backend)
        tree = sample_tree(seed=6)
        archive.backup_tree(tree)
        report = archive.backup_tree(tree)
        assert report.duplicate_chunks == report.total_chunks

    def test_list_files_and_versions(self, backend):
        archive = self.make(backend)
        tree = sample_tree(seed=7)
        archive.backup_tree(tree)
        assert archive.versions() == [1]
        assert archive.list_files(1) == sorted(tree)


class TestPartialRestoreEfficiency:
    def test_single_file_reads_fewer_containers_than_full(self):
        archive = DirectoryArchive(
            HiDeStore(container_size=8 * KiB), chunker=tiny_chunker()
        )
        tree = sample_tree(seed=8, files=16, size=16 * KiB)
        archive.backup_tree(tree)
        path = sorted(tree)[0]
        before = archive.system.io.snapshot()
        archive.restore_file(1, path)
        partial = archive.system.io.delta(before).container_reads
        before = archive.system.io.snapshot()
        archive.restore_tree(1)
        full = archive.system.io.delta(before).container_reads
        assert partial < full


class TestArchiveErrors:
    def test_empty_tree_rejected(self):
        with pytest.raises(ReproError):
            DirectoryArchive(chunker=tiny_chunker()).backup_tree({})

    def test_unknown_version_rejected(self):
        archive = DirectoryArchive(chunker=tiny_chunker())
        with pytest.raises(VersionNotFoundError):
            archive.restore_tree(1)

    def test_metadata_only_system_rejected(self):
        from tests.conftest import make_stream

        archive = DirectoryArchive(HiDeStore(container_size=64 * KiB))
        archive.system.backup(make_stream([1, 2, 3], size=1024))
        archive.manifests[1] = Manifest.build(
            1, "t", files=[("a", 3 * 1024)], chunk_sizes=[1024] * 3
        )
        with pytest.raises(ReproError):
            archive.restore_tree(1)


class TestDiskDirectories:
    def test_backup_directory_and_write_tree(self, tmp_path):
        source = tmp_path / "src"
        source.mkdir()
        (source / "sub").mkdir()
        (source / "a.bin").write_bytes(b"alpha" * 1000)
        (source / "sub" / "b.bin").write_bytes(b"beta" * 2000)
        archive = DirectoryArchive(
            HiDeStore(container_size=64 * KiB), chunker=tiny_chunker()
        )
        archive.backup_directory(str(source), tag="disk")
        out = tmp_path / "out"
        written = archive.write_tree(1, str(out))
        assert len(written) == 2
        assert (out / "a.bin").read_bytes() == b"alpha" * 1000
        assert (out / "sub" / "b.bin").read_bytes() == b"beta" * 2000

    def test_empty_directory_rejected(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(ReproError):
            DirectoryArchive(chunker=tiny_chunker()).backup_directory(str(empty))
