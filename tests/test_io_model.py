"""Tests for IOStats accounting and the analytic disk model."""

from repro.storage.io_model import DiskModel, IOStats
from repro.units import MiB


class TestIOStats:
    def test_note_methods(self):
        stats = IOStats()
        stats.note_container_read(100)
        stats.note_container_write(200)
        stats.note_recipe_read(10)
        stats.note_recipe_write(20)
        stats.note_index_lookup(3)
        assert stats.container_reads == 1
        assert stats.container_writes == 1
        assert stats.bytes_read == 110
        assert stats.bytes_written == 220
        assert stats.recipe_reads == 1
        assert stats.recipe_writes == 1
        assert stats.index_lookups == 3

    def test_snapshot_is_independent_copy(self):
        stats = IOStats()
        stats.note_container_read(100)
        snap = stats.snapshot()
        stats.note_container_read(100)
        assert snap.container_reads == 1
        assert stats.container_reads == 2

    def test_delta(self):
        stats = IOStats()
        stats.note_container_read(50)
        before = stats.snapshot()
        stats.note_container_read(50)
        stats.note_index_lookup()
        delta = stats.delta(before)
        assert delta.container_reads == 1
        assert delta.bytes_read == 50
        assert delta.index_lookups == 1

    def test_reset(self):
        stats = IOStats()
        stats.note_container_read(50)
        stats.reset()
        assert stats.container_reads == 0
        assert stats.bytes_read == 0


class TestDiskModel:
    def test_restore_seconds_combines_seeks_and_transfer(self):
        model = DiskModel(seek_seconds=0.01, transfer_bytes_per_second=100 * MiB)
        stats = IOStats()
        stats.note_container_read(100 * MiB)
        # 1 seek (0.01 s) + 100 MiB at 100 MiB/s (1 s).
        assert abs(model.restore_seconds(stats) - 1.01) < 1e-9

    def test_index_seconds(self):
        model = DiskModel(index_lookup_seconds=0.008)
        stats = IOStats()
        stats.note_index_lookup(100)
        assert abs(model.dedup_index_seconds(stats) - 0.8) < 1e-9

    def test_throughput(self):
        model = DiskModel(seek_seconds=0.0, transfer_bytes_per_second=100 * MiB)
        stats = IOStats()
        stats.note_container_read(50 * MiB)
        # Restored 100 MiB logical from 50 MiB read in 0.5 s -> 200 MiB/s.
        assert abs(model.throughput_mb_per_second(100 * MiB, stats) - 200.0) < 1e-6

    def test_throughput_zero_without_traffic(self):
        assert DiskModel().throughput_mb_per_second(0, IOStats()) == 0.0
