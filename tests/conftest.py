"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random
from typing import List

import pytest

from repro.chunking.stream import BackupStream, Chunk, synthetic_fingerprint
from repro.units import KiB
from repro.workloads import SyntheticWorkload, WorkloadSpec


def make_stream(tokens: List[int], tag: str = "", size: int = 1024) -> BackupStream:
    """A stream of synthetic chunks with fixed size, named by token."""
    return BackupStream(
        [Chunk(synthetic_fingerprint(t), size) for t in tokens], tag=tag
    )


def make_sized_stream(pairs: List[tuple], tag: str = "") -> BackupStream:
    """A stream of synthetic chunks from (token, size) pairs."""
    return BackupStream(
        [Chunk(synthetic_fingerprint(t), s) for t, s in pairs], tag=tag
    )


def random_payload_stream(seed: int, chunks: int, mean: int = 2 * KiB) -> BackupStream:
    """A stream of payload-carrying chunks with random (seeded) contents."""
    from repro.chunking.fingerprint import Fingerprinter

    rng = random.Random(seed)
    fingerprinter = Fingerprinter()
    out = []
    for _ in range(chunks):
        size = rng.randint(mean // 2, mean * 3 // 2)
        data = rng.getrandbits(8 * size).to_bytes(size, "big")
        out.append(fingerprinter.chunk(data))
    return BackupStream(out)


@pytest.fixture
def small_workload() -> SyntheticWorkload:
    """A small deterministic evolving workload (8 versions, 400 chunks)."""
    return SyntheticWorkload(
        WorkloadSpec(
            name="test",
            versions=8,
            chunks_per_version=400,
            mean_chunk_size=4 * KiB,
            modify_rate=0.05,
            delete_rate=0.02,
            insert_rate=0.03,
            seed=7,
        )
    )


@pytest.fixture
def skip_workload() -> SyntheticWorkload:
    """A macos-like workload where some chunks skip exactly one version."""
    return SyntheticWorkload(
        WorkloadSpec(
            name="skiptest",
            versions=8,
            chunks_per_version=400,
            mean_chunk_size=4 * KiB,
            modify_rate=0.04,
            delete_rate=0.04,
            insert_rate=0.03,
            skip_rate=0.6,
            seed=11,
        )
    )
