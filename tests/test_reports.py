"""Tests for the report dataclasses and a trace-driven integration pass."""

from repro.reports import BackupReport, SystemReport
from repro.units import GiB, KiB, MiB


class TestBackupReport:
    def test_dedup_eliminated_bytes(self):
        report = BackupReport(1, "v1", logical_bytes=1000, stored_bytes=300)
        assert report.dedup_eliminated_bytes == 700

    def test_lookups_per_gb(self):
        report = BackupReport(1, "v1", logical_bytes=GiB, disk_index_lookups=500)
        assert report.lookups_per_gb == 500.0

    def test_lookups_per_gb_empty(self):
        assert BackupReport(1, "v1").lookups_per_gb == 0.0


class TestSystemReport:
    def test_dedup_ratio(self):
        report = SystemReport(logical_bytes=1000, stored_bytes=250)
        assert report.dedup_ratio == 0.75

    def test_dedup_ratio_empty(self):
        assert SystemReport().dedup_ratio == 0.0

    def test_index_bytes_per_mb(self):
        report = SystemReport(logical_bytes=2 * MiB, index_memory_bytes=56)
        assert report.index_bytes_per_mb == 28.0

    def test_lookups_per_gb(self):
        report = SystemReport(logical_bytes=2 * GiB, disk_index_lookups=100)
        assert report.lookups_per_gb == 50.0

    def test_per_version_accumulation(self):
        report = SystemReport()
        report.per_version.append(BackupReport(1, "a"))
        report.per_version.append(BackupReport(2, "b"))
        assert [r.version_id for r in report.per_version] == [1, 2]


class TestTraceDrivenIntegration:
    """Generate -> serialise -> replay -> backup -> restore, end to end."""

    def test_trace_file_drives_identical_results(self, tmp_path, small_workload):
        from repro.core import HiDeStore
        from repro.workloads import iter_trace, write_trace

        path = str(tmp_path / "w.trace")
        write_trace(path, small_workload.versions())

        direct = HiDeStore(container_size=64 * KiB)
        for stream in small_workload.versions():
            direct.backup(stream)

        replayed = HiDeStore(container_size=64 * KiB)
        for stream in iter_trace(path):
            replayed.backup(stream)

        assert replayed.dedup_ratio == direct.dedup_ratio
        for version in (1, 8):
            a = [c.fingerprint for c in direct.restore_chunks(version)]
            b = [c.fingerprint for c in replayed.restore_chunks(version)]
            assert a == b

    def test_real_bytes_to_trace_to_simulation(self, tmp_path):
        """Chunk real bytes, export the metadata trace, replay it."""
        from repro.chunking import FastCDCChunker
        from repro.core import HiDeStore
        from repro.workloads import FileTreeGenerator, FileTreeSpec, read_trace, write_trace

        generator = FileTreeGenerator(
            FileTreeSpec(files=4, mean_file_size=16 * KiB, versions=3, seed=12)
        )
        chunker = FastCDCChunker(min_size=512, avg_size=2048, max_size=8192)
        streams = [
            chunker.chunk_stream([blob], tag=tag)
            for tag, blob in generator.version_blobs()
        ]
        path = str(tmp_path / "real.trace")
        write_trace(path, streams)
        replayed = read_trace(path)

        system = HiDeStore(container_size=64 * KiB)
        for stream in replayed:
            system.backup(stream)
        assert system.report.versions == 3
        assert 0 < system.dedup_ratio < 1
        restored = list(system.restore_chunks(3))
        assert [c.fingerprint for c in restored] == streams[2].fingerprints()
