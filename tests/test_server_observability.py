"""End-to-end observability tests: trace correlation, STATS metrics, CLI.

A real daemon runs with a :class:`JsonEventLogger` and an isolated
:class:`MetricsRegistry`; the client logs to its own file.  The tests then
join the two logs on trace IDs — the property the whole layer exists for.
"""

import os

import pytest

from repro.client import RemoteRepository
from repro.observability import JsonEventLogger, MetricsRegistry, read_jsonl
from repro.repository import materialize, read_tree
from repro.server import DaemonThread


def make_tree(base, files):
    os.makedirs(base, exist_ok=True)
    for rel, payload in files.items():
        path = os.path.join(base, rel)
        os.makedirs(os.path.dirname(path) or base, exist_ok=True)
        with open(path, "wb") as handle:
            handle.write(payload)
    return read_tree(base)


def synthetic_files(seed, count=3, size=30_000):
    import random

    rng = random.Random(seed)
    return {f"f{i}.bin": rng.randbytes(size) for i in range(count)}


@pytest.fixture
def observed_daemon(tmp_path):
    """Daemon with JSON event log + private registry; client with its own log."""
    server_log_path = str(tmp_path / "server.jsonl")
    client_log_path = str(tmp_path / "client.jsonl")
    registry = MetricsRegistry()
    server_log = JsonEventLogger(server_log_path, source="daemon")
    client_log = JsonEventLogger(client_log_path, source="client")
    thread = DaemonThread(
        str(tmp_path / "served"), metrics=registry, event_log=server_log
    )
    address = thread.start()
    client_registry = MetricsRegistry()
    repo = RemoteRepository(
        address, "alpha", event_log=client_log, metrics=client_registry
    )
    yield repo, registry, client_registry, server_log_path, client_log_path
    repo.close()
    thread.stop(drain_timeout=5)
    server_log.close()
    client_log.close()


def events_by_name(records, name):
    return [r for r in records if r["event"] == name]


def read_jsonl_until(path, name, count=1, timeout=5.0):
    """Read the log, waiting for ``count`` events named ``name``.

    The daemon writes ``{kind}_end`` *after* sending the reply, so the
    client can observe the response a beat before the event hits disk.
    """
    import time

    deadline = time.monotonic() + timeout
    while True:
        records = read_jsonl(path)
        if len(events_by_name(records, name)) >= count:
            return records
        if time.monotonic() >= deadline:
            return records
        time.sleep(0.02)


class TestTraceCorrelation:
    def test_trace_ids_join_client_and_server_logs(self, observed_daemon, tmp_path):
        repo, _reg, _creg, server_log, client_log = observed_daemon
        entries = make_tree(str(tmp_path / "src"), synthetic_files(1))
        repo.backup_tree(entries, tag="v1")
        plan, data = repo.restore(1)
        materialize(plan, data, str(tmp_path / "out"))
        for _ in data:  # drain RESTORE_END so the client span closes
            pass
        repo.stats()

        server = read_jsonl_until(server_log, "stats_end")
        client = read_jsonl(client_log)

        # Every request kind logged begin+end on the server with one trace.
        for kind in ("backup", "restore", "stats"):
            begins = events_by_name(server, f"{kind}_begin")
            ends = events_by_name(server, f"{kind}_end")
            assert len(begins) == len(ends) >= 1
            assert [b["trace"] for b in begins] == [e["trace"] for e in ends]

        # The client logged the SAME trace IDs for its side of each span.
        server_backup = events_by_name(server, "backup_end")[0]["trace"]
        client_backup = events_by_name(client, "client_backup_end")[0]["trace"]
        assert server_backup == client_backup
        server_restore = events_by_name(server, "restore_end")[0]["trace"]
        client_restore = events_by_name(client, "client_restore_end")[0]["trace"]
        assert server_restore == client_restore

        # Request traces derive from the session trace ("<session>.<seq>").
        session = events_by_name(server, "session_open")[0]["trace"]
        assert server_backup.startswith(session + ".")

    def test_durations_logged_in_milliseconds(self, observed_daemon, tmp_path):
        repo, _reg, _creg, server_log, _client_log = observed_daemon
        entries = make_tree(str(tmp_path / "src"), synthetic_files(2))
        repo.backup_tree(entries)
        end = events_by_name(read_jsonl_until(server_log, "backup_end"), "backup_end")[0]
        assert end["duration_ms"] > 0
        assert end["repo"] == "alpha"

    def test_errors_logged_with_trace_and_class(self, observed_daemon, tmp_path):
        repo, _reg, _creg, server_log, client_log = observed_daemon
        entries = make_tree(str(tmp_path / "src"), synthetic_files(9))
        repo.backup_tree(entries)
        with pytest.raises(Exception):
            plan, data = repo.restore(999)  # no such version
            list(data)
        server_errors = events_by_name(
            read_jsonl_until(server_log, "restore_error"), "restore_error"
        )
        assert server_errors and server_errors[0]["error"] == "VersionNotFoundError"
        assert server_errors[0]["trace"]


class TestStatsMetrics:
    def test_stats_reply_carries_quantiles(self, observed_daemon, tmp_path):
        repo, _reg, _creg, _slog, _clog = observed_daemon
        entries = make_tree(str(tmp_path / "src"), synthetic_files(3))
        repo.backup_tree(entries, tag="v1")
        plan, data = repo.restore(1)
        for _ in data:
            pass
        stats = repo.stats()
        metrics = stats["metrics"]
        for name in ("server.backup_seconds", "server.restore_seconds"):
            snap = metrics["histograms"][name]
            assert snap["count"] >= 1
            assert snap["p50"] > 0
            assert snap["p50"] <= snap["p95"] <= snap["p99"]
        assert metrics["counters"]["server.requests_total"] >= 2
        # Engine/store stage timings land in the same (daemon) registry.
        assert metrics["histograms"]["repo.backup_seconds"]["count"] >= 1
        assert metrics["histograms"]["repo.chunking_seconds"]["count"] >= 1
        assert metrics["counters"]["server.ingest_bytes"] > 0

    def test_server_stats_and_single_repo_both_report_metrics(
        self, observed_daemon, tmp_path
    ):
        repo, _reg, _creg, _slog, _clog = observed_daemon
        entries = make_tree(str(tmp_path / "src"), synthetic_files(4))
        repo.backup_tree(entries)
        assert "metrics" in repo.stats()
        assert "metrics" in repo.server_stats()

    def test_client_side_metrics_recorded(self, observed_daemon, tmp_path):
        repo, _reg, client_registry, _slog, _clog = observed_daemon
        entries = make_tree(str(tmp_path / "src"), synthetic_files(5))
        repo.backup_tree(entries)
        repo.stats()
        snap = client_registry.snapshot()
        assert snap["histograms"]["client.backup_seconds"]["count"] == 1
        assert snap["histograms"]["client.stats_seconds"]["count"] == 1
        assert snap["histograms"]["client.connect_seconds"]["count"] >= 1


class TestMetricsReporter:
    def test_periodic_metrics_report_events(self, tmp_path):
        log_path = str(tmp_path / "server.jsonl")
        log = JsonEventLogger(log_path, source="daemon")
        thread = DaemonThread(
            str(tmp_path / "served"),
            metrics=MetricsRegistry(),
            event_log=log,
            metrics_interval=0.1,
        )
        address = thread.start()
        try:
            with RemoteRepository(address, "alpha") as repo:
                entries = make_tree(str(tmp_path / "src"), synthetic_files(6))
                repo.backup_tree(entries)
            read_jsonl_until(log_path, "metrics_report", count=2, timeout=10)
        finally:
            thread.stop(drain_timeout=5)
            log.close()
        reports = events_by_name(read_jsonl(log_path), "metrics_report")
        assert len(reports) >= 2
        assert "server.backup_seconds" in reports[-1]["metrics"]["histograms"]
        assert reports[-1]["server"]["requests"]["backup"] == 1


class TestCLI:
    def test_stats_metrics_flag_remote(self, tmp_path, capsys):
        from repro.cli import main

        thread = DaemonThread(str(tmp_path / "served"), metrics=MetricsRegistry())
        address = thread.start()
        try:
            src = str(tmp_path / "src")
            make_tree(src, synthetic_files(7))
            assert main(["backup", "t", src, "--remote", address]) == 0
            capsys.readouterr()
            assert main(["stats", "t", "--metrics", "--remote", address]) == 0
            out = capsys.readouterr().out
            assert "operation latency" in out
            assert "server.backup_seconds" in out
            assert "server.requests_total" in out
        finally:
            thread.stop(drain_timeout=5)

    def test_stats_metrics_flag_local(self, tmp_path, capsys):
        from repro.cli import main
        from repro.observability import get_registry

        src = str(tmp_path / "src")
        make_tree(src, synthetic_files(8))
        repo = str(tmp_path / "repo")
        assert main(["backup", repo, src]) == 0
        capsys.readouterr()
        assert main(["stats", repo, "--metrics"]) == 0
        out = capsys.readouterr().out
        # The local engine records into the process registry.
        assert "repo.backup_seconds" in out
        get_registry().reset()
