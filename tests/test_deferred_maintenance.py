"""Tests for deferred (pipelined/offline) filter maintenance (§5.4)."""

import pytest

from repro.core import HiDeStore, verify_system
from repro.units import KiB


def build(workload, **kwargs):
    system = HiDeStore(container_size=64 * KiB, **kwargs)
    for stream in workload.versions():
        system.backup(stream)
    return system


class TestDeferredQueue:
    def test_backups_queue_maintenance(self, small_workload):
        system = build(small_workload, deferred_maintenance=True)
        # 8 versions, depth 1: versions 2..8 each queued one unit of work.
        assert system.pending_maintenance == 7

    def test_run_maintenance_drains_queue(self, small_workload):
        system = build(small_workload, deferred_maintenance=True)
        assert system.run_maintenance() == 7
        assert system.pending_maintenance == 0
        assert system.run_maintenance() == 0  # idempotent

    def test_inline_mode_queues_nothing(self, small_workload):
        system = build(small_workload, deferred_maintenance=False)
        assert system.pending_maintenance == 0

    def test_no_archival_containers_until_maintenance(self, small_workload):
        system = build(small_workload, deferred_maintenance=True)
        assert len(system.containers) == 0
        system.run_maintenance()
        assert len(system.containers) > 0


class TestEquivalence:
    def test_dedup_ratio_identical(self, small_workload):
        deferred = build(small_workload, deferred_maintenance=True)
        inline = build(small_workload, deferred_maintenance=False)
        assert deferred.dedup_ratio == inline.dedup_ratio

    def test_restores_identical_after_maintenance(self, small_workload):
        deferred = build(small_workload, deferred_maintenance=True)
        inline = build(small_workload, deferred_maintenance=False)
        for version_id in (1, 4, 8):
            a = [c.fingerprint for c in deferred.restore_chunks(version_id)]
            b = [c.fingerprint for c in inline.restore_chunks(version_id)]
            assert a == b

    def test_verifies_after_drain(self, small_workload):
        system = build(small_workload, deferred_maintenance=True)
        system.run_maintenance()
        assert verify_system(system).ok


class TestAutomaticDraining:
    def test_restore_triggers_maintenance(self, small_workload):
        system = build(small_workload, deferred_maintenance=True)
        list(system.restore_chunks(1))
        assert system.pending_maintenance == 0

    def test_delete_triggers_maintenance(self, small_workload):
        system = build(small_workload, deferred_maintenance=True)
        stats = system.delete_oldest()
        assert system.pending_maintenance == 0
        assert stats.versions_deleted == 1

    def test_retire_triggers_maintenance(self, small_workload):
        system = build(small_workload, deferred_maintenance=True)
        system.retire()
        assert system.pending_maintenance == 0
        assert verify_system(system).ok

    def test_checkpoint_triggers_maintenance(self, small_workload, tmp_path):
        from repro.core import load_checkpoint, save_checkpoint

        system = build(small_workload, deferred_maintenance=True)
        path = str(tmp_path / "ckpt.json")
        save_checkpoint(system, path)
        assert system.pending_maintenance == 0
        # The flag itself survives the round trip.
        loaded = load_checkpoint(path)
        assert loaded.deferred_maintenance is True


class TestCriticalPathBenefit:
    def test_deferred_backups_skip_filter_work(self, small_workload):
        """The point of §5.4's pipelining: demotion leaves the backup path."""
        deferred = build(small_workload, deferred_maintenance=True)
        assert deferred.pool.stats.cold_chunks_moved == 0
        deferred.run_maintenance()
        inline = build(small_workload, deferred_maintenance=False)
        assert deferred.pool.stats.cold_chunks_moved == inline.pool.stats.cold_chunks_moved
