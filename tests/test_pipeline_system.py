"""Tests for the traditional BackupSystem pipeline and scheme factories."""

import pytest

from repro.chunking.stream import BackupStream, Chunk, synthetic_fingerprint as fp
from repro.errors import VersionNotFoundError
from repro.index import DDFSIndex, ExactFullIndex
from repro.metrics import exact_dedup_ratio
from repro.pipeline import SCHEMES, BackupSystem, build_scheme
from repro.restore import ContainerCacheRestore
from repro.rewriting import CappingRewriter
from repro.units import KiB
from tests.conftest import make_stream


def build(workload, index=None, **kwargs):
    system = BackupSystem(
        index if index is not None else ExactFullIndex(),
        container_size=kwargs.pop("container_size", 64 * KiB),
        **kwargs,
    )
    for stream in workload.versions():
        system.backup(stream)
    return system


class TestBackup:
    def test_exact_index_gives_exact_ratio(self, small_workload):
        system = build(small_workload)
        assert abs(system.dedup_ratio - exact_dedup_ratio(small_workload.versions())) < 1e-12

    def test_reports_accumulate(self, small_workload):
        system = build(small_workload)
        assert system.report.versions == 8
        assert len(system.report.per_version) == 8
        assert system.report.logical_bytes == sum(
            s.logical_size for s in small_workload.versions()
        )

    def test_per_version_report_fields(self, small_workload):
        system = BackupSystem(ExactFullIndex(), container_size=64 * KiB)
        report = system.backup(small_workload.version(1))
        assert report.version_id == 1
        assert report.total_chunks == 400
        assert report.unique_chunks + report.duplicate_chunks == 400
        assert report.stored_bytes <= report.logical_bytes
        assert report.containers_written > 0
        assert report.lookups_per_gb > 0

    def test_intra_version_duplicates_absorbed_by_write_buffer(self):
        system = BackupSystem(ExactFullIndex(), container_size=64 * KiB)
        report = system.backup(make_stream([1, 2, 1, 1, 3], size=1024))
        assert report.unique_chunks == 3
        assert report.duplicate_chunks == 2

    def test_rewriter_rewrites_count_in_report(self, small_workload):
        system = BackupSystem(
            ExactFullIndex(),
            CappingRewriter(cap=1, segment_bytes=16 * KiB),
            container_size=16 * KiB,
        )
        for stream in small_workload.versions():
            report = system.backup(stream)
        assert report.rewritten_chunks > 0
        assert system.rewriter.stats.rewritten_chunks > 0

    def test_containers_sealed_per_version(self, small_workload):
        system = BackupSystem(ExactFullIndex(), container_size=64 * KiB)
        system.backup(small_workload.version(1))
        assert all(c.sealed for c in system.containers.iter_containers())


class TestRestore:
    def test_round_trip_every_version(self, small_workload):
        system = build(small_workload)
        for version_id in system.version_ids():
            restored = list(system.restore_chunks(version_id))
            want = small_workload.version(version_id)
            assert [c.fingerprint for c in restored] == want.fingerprints()

    def test_restore_accounting(self, small_workload):
        system = build(small_workload)
        result = system.restore(4)
        assert result.chunks == len(small_workload.version(4))
        assert result.container_reads > 0
        assert result.speed_factor > 0

    def test_restore_with_alternate_algorithm(self, small_workload):
        system = build(small_workload)
        restored = list(
            system.restore_chunks(2, restorer=ContainerCacheRestore(cache_containers=4))
        )
        assert len(restored) == len(small_workload.version(2))

    def test_unknown_version_raises(self):
        system = BackupSystem(ExactFullIndex())
        with pytest.raises(VersionNotFoundError):
            system.restore(3)

    def test_payload_round_trip(self):
        system = BackupSystem(ExactFullIndex(), container_size=16 * KiB)
        stream = BackupStream([Chunk(fp(t), 4, bytes([t] * 4)) for t in range(8)])
        system.backup(stream)
        out = list(system.restore_chunks(1))
        assert [c.data for c in out] == [bytes([t] * 4) for t in range(8)]


class TestFragmentationGrowth:
    def test_new_versions_fragment_over_time(self, small_workload):
        """Figure 2: the traditional pipeline scatters NEW versions."""
        system = build(small_workload)
        first = system.restore(1)
        last = system.restore(8)
        assert last.speed_factor <= first.speed_factor


class TestSchemeFactories:
    @pytest.mark.parametrize("name", sorted(SCHEMES))
    def test_every_scheme_backs_up_and_restores(self, name, small_workload):
        system = build_scheme(name, container_size=64 * KiB)
        for stream in small_workload.versions():
            system.backup(stream)
        restored = list(system.restore_chunks(system.version_ids()[-1]))
        assert [c.fingerprint for c in restored] == small_workload.version(8).fingerprints()
        assert 0.0 < system.dedup_ratio < 1.0

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            build_scheme("zfs")

    def test_index_kwargs_forwarded(self):
        system = build_scheme("ddfs", index_kwargs=dict(cache_containers=7))
        assert isinstance(system.index, DDFSIndex)
        assert system.index.cache_containers == 7

    def test_rewriter_kwargs_forwarded(self):
        system = build_scheme("capping", rewriter_kwargs=dict(cap=3))
        assert system.rewriter.cap == 3

    def test_restorer_kwargs_forwarded(self):
        system = build_scheme("baseline", restorer_kwargs=dict(area_bytes=1024))
        assert system.restorer.area_bytes == 1024

    def test_shared_io_ledger(self, small_workload):
        system = build(small_workload)
        assert system.io.container_writes > 0
        assert system.containers.stats is system.io
        assert system.recipes.stats is system.io
