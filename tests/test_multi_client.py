"""Tests for the multi-client HiDeStore service."""

import pytest

from repro.core import MultiClientHiDeStore, verify_system
from repro.errors import ReproError, VersionNotFoundError
from repro.units import KiB
from repro.workloads import load_preset
from tests.conftest import make_stream


@pytest.fixture
def service():
    return MultiClientHiDeStore(container_size=64 * KiB)


def populate(service, client, preset="kernel", versions=5):
    for stream in load_preset(preset, versions=versions, chunks_per_version=300).versions():
        service.backup(client, stream)


class TestNamespaces:
    def test_clients_created_on_demand(self, service):
        service.backup("alice", make_stream([1, 2, 3], size=1024))
        assert "alice" in service
        assert service.clients() == ["alice"]

    def test_client_histories_are_independent(self, service):
        populate(service, "alice", "kernel")
        populate(service, "bob", "gcc")
        assert service.client("alice").version_ids() == [1, 2, 3, 4, 5]
        assert service.client("bob").version_ids() == [1, 2, 3, 4, 5]

    def test_per_client_history_depth(self, service):
        service.client("mac-user", history_depth=2)
        assert service.client("mac-user").history_depth == 2
        with pytest.raises(ReproError):
            service.client("mac-user", history_depth=3)

    def test_empty_name_rejected(self, service):
        with pytest.raises(ReproError):
            service.client("")


class TestSharedStore:
    def test_container_ids_globally_unique(self, service):
        populate(service, "alice")
        populate(service, "bob")
        alice_cids = set(service.client("alice").pool.container_ids())
        bob_cids = set(service.client("bob").pool.container_ids())
        assert not (alice_cids & bob_cids)

    def test_shared_io_ledger(self, service):
        populate(service, "alice")
        result = service.restore("alice", 5)
        assert result.container_reads > 0
        assert result.speed_factor > 0

    def test_no_cross_client_dedup_by_design(self, service):
        stream = make_stream(list(range(50)), size=1024)
        a = service.backup("alice", stream)
        b = service.backup("bob", make_stream(list(range(50)), size=1024))
        assert a.unique_chunks == 50
        assert b.unique_chunks == 50  # same data, separate namespace

    def test_within_client_dedup(self, service):
        stream_tokens = list(range(50))
        service.backup("alice", make_stream(stream_tokens, size=1024))
        report = service.backup("alice", make_stream(stream_tokens, size=1024))
        assert report.duplicate_chunks == 50


class TestRestoreAndDelete:
    def test_each_client_restores_correctly(self, service):
        workloads = {
            "alice": load_preset("kernel", versions=4, chunks_per_version=300),
            "bob": load_preset("gcc", versions=4, chunks_per_version=300),
        }
        for name, workload in workloads.items():
            for stream in workload.versions():
                service.backup(name, stream)
        for name, workload in workloads.items():
            for version in (1, 4):
                restored = list(service.restore_chunks(name, version))
                assert [c.fingerprint for c in restored] == workload.version(
                    version
                ).fingerprints()

    def test_deleting_one_client_leaves_others_intact(self, service):
        workloads = {
            "alice": load_preset("kernel", versions=5, chunks_per_version=300),
            "bob": load_preset("gcc", versions=5, chunks_per_version=300),
        }
        for name, workload in workloads.items():
            for stream in workload.versions():
                service.backup(name, stream)
        service.delete_oldest("alice")
        service.delete_oldest("alice")
        restored = list(service.restore_chunks("bob", 1))
        assert [c.fingerprint for c in restored] == workloads["bob"].version(1).fingerprints()
        assert verify_system(service.client("bob")).ok

    def test_unknown_client_rejected(self, service):
        with pytest.raises(VersionNotFoundError):
            service.restore("ghost", 1)
        with pytest.raises(VersionNotFoundError):
            service.delete_oldest("ghost")


class TestServiceAccounting:
    def test_aggregate_ratio_and_report(self, service):
        populate(service, "alice", "kernel")
        populate(service, "bob", "gcc")
        rows = service.per_client_report()
        assert [r[0] for r in rows] == ["alice", "bob"]
        assert all(r[1] == 5 for r in rows)
        assert 0 < service.dedup_ratio < 1
        assert service.stored_bytes() > 0
        assert service.logical_bytes() > service.stored_bytes()
