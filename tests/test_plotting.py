"""Tests for the SVG chart generator."""

import pytest

from repro.errors import ReproError
from repro.plotting import PALETTE, bar_chart, line_chart


class TestLineChart:
    def test_renders_valid_svg(self):
        svg = line_chart(
            {"a": [(1, 2.0), (2, 3.0), (3, 1.0)], "b": [(1, 0.5), (3, 4.0)]},
            "Title", "x", "y",
        )
        assert svg.startswith("<svg")
        assert svg.rstrip().endswith("</svg>")
        assert svg.count("<polyline") == 2
        assert "Title" in svg
        assert "a" in svg and "b" in svg

    def test_writes_to_file(self, tmp_path):
        path = str(tmp_path / "chart.svg")
        line_chart({"s": [(0, 0.0), (1, 1.0)]}, "t", "x", "y", path=path)
        with open(path) as handle:
            assert handle.read().startswith("<svg")

    def test_escapes_markup_in_labels(self):
        svg = line_chart({"<evil>": [(0, 1.0)]}, 'a "<b>&', "x", "y")
        assert "<evil>" not in svg
        assert "&lt;evil&gt;" in svg

    def test_single_point_series(self):
        svg = line_chart({"one": [(5, 7.0)]}, "t", "x", "y")
        assert "<circle" in svg

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            line_chart({}, "t", "x", "y")
        with pytest.raises(ReproError):
            line_chart({"a": []}, "t", "x", "y")

    def test_custom_colors(self):
        svg = line_chart({"a": [(0, 1.0), (1, 2.0)]}, "t", "x", "y",
                         colors=["#123456"])
        assert "#123456" in svg


class TestBarChart:
    def test_renders_grouped_bars(self):
        svg = bar_chart(
            ["kernel", "gcc"],
            {"ddfs": [0.9, 0.8], "hidestore": [0.91, 0.81]},
            "Figure 8", "ratio",
        )
        assert svg.count("<rect") >= 5  # background + 4 bars + legend swatches
        assert "kernel" in svg and "hidestore" in svg

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ReproError):
            bar_chart(["a", "b"], {"g": [1.0]}, "t", "y")

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            bar_chart([], {}, "t", "y")

    def test_zero_values_render(self):
        svg = bar_chart(["a"], {"g": [0.0]}, "t", "y")
        assert "<svg" in svg

    def test_writes_to_file(self, tmp_path):
        path = str(tmp_path / "bars.svg")
        bar_chart(["a"], {"g": [1.0]}, "t", "y", path=path)
        assert (tmp_path / "bars.svg").exists()


class TestPalette:
    def test_palette_is_hex_colors(self):
        assert all(c.startswith("#") and len(c) == 7 for c in PALETTE)
        assert len(set(PALETTE)) == len(PALETTE)
