"""Tests for the recipe chain and Algorithm 1 (§4.3, Figure 7)."""

import pytest

from repro.chunking.stream import synthetic_fingerprint as fp
from repro.core.recipe_chain import RecipeChain
from repro.errors import RecipeError
from repro.storage.recipe import ACTIVE_CID, MemoryRecipeStore, Recipe


def fresh_recipe(version, tokens):
    recipe = Recipe(version)
    for t in tokens:
        recipe.append(fp(t), 100, ACTIVE_CID)
    return recipe


@pytest.fixture
def chain():
    return RecipeChain(MemoryRecipeStore())


class TestWriteFresh:
    def test_accepts_all_active(self, chain):
        chain.write_fresh(fresh_recipe(1, [1, 2]))
        assert 1 in chain.recipes

    def test_accepts_archival_cids_for_reopened_systems(self, chain):
        recipe = Recipe(1)
        recipe.append(fp(1), 100, 7)
        chain.write_fresh(recipe)

    def test_rejects_chained_cids(self, chain):
        recipe = Recipe(1)
        recipe.append(fp(1), 100, -2)
        with pytest.raises(RecipeError):
            chain.write_fresh(recipe)


class TestUpdatePrevious:
    def test_figure_seven_semantics(self, chain):
        """After demoting V3's cold set, R_3 entries become archival or -4."""
        chain.write_fresh(fresh_recipe(3, [1, 2, 3]))
        chain.write_fresh(fresh_recipe(4, [2, 3, 4]))
        moved = {fp(1): 10}  # chunk 1 went to archival container 10
        rewritten = chain.update_previous(3, moved, next_version=4)
        assert rewritten == 3
        updated = chain.recipes.peek(3)
        cids = {e.fingerprint: e.cid for e in updated.entries}
        assert cids[fp(1)] == 10
        assert cids[fp(2)] == -4
        assert cids[fp(3)] == -4

    def test_positive_entries_untouched(self, chain):
        recipe = Recipe(2)
        recipe.append(fp(1), 100, 5)
        recipe.append(fp(2), 100, ACTIVE_CID)
        chain.recipes.write(recipe)
        chain.update_previous(2, {}, next_version=3)
        cids = [e.cid for e in chain.recipes.peek(2).entries]
        assert cids == [5, -3]

    def test_missing_recipe_raises(self, chain):
        with pytest.raises(RecipeError):
            chain.update_previous(9, {}, next_version=10)

    def test_stats(self, chain):
        chain.write_fresh(fresh_recipe(1, [1]))
        chain.update_previous(1, {fp(1): 3}, next_version=2)
        assert chain.stats.previous_updates == 1
        assert chain.stats.entries_rewritten == 1


def build_chained_history(chain):
    """Three versions with the canonical chain shape:

    v1 = {1, 2, 3}; v2 = {2, 3, 4}; v3 = {3, 4, 5}.
    Chunk 1 archived to container 11 after v2; chunk 2 to 12 after v3.
    Chunks 3, 4, 5 still hot (active).
    """
    chain.write_fresh(fresh_recipe(1, [1, 2, 3]))
    chain.write_fresh(fresh_recipe(2, [2, 3, 4]))
    chain.update_previous(1, {fp(1): 11}, next_version=2)
    chain.write_fresh(fresh_recipe(3, [3, 4, 5]))
    chain.update_previous(2, {fp(2): 12}, next_version=3)
    return chain


class TestFlatten:
    def test_resolves_whole_chain(self, chain):
        build_chained_history(chain)
        chain.flatten()
        r1 = {e.fingerprint: e.cid for e in chain.recipes.peek(1).entries}
        assert r1[fp(1)] == 11  # archived
        assert r1[fp(2)] == 12  # archived one hop later
        assert r1[fp(3)] == -3  # still hot -> points at the newest recipe
        r2 = {e.fingerprint: e.cid for e in chain.recipes.peek(2).entries}
        assert r2[fp(2)] == 12
        assert r2[fp(3)] == -3 and r2[fp(4)] == -3

    def test_newest_recipe_keeps_active_zeroes(self, chain):
        build_chained_history(chain)
        chain.flatten()
        assert all(e.cid == ACTIVE_CID for e in chain.recipes.peek(3).entries)

    def test_idempotent(self, chain):
        build_chained_history(chain)
        first = chain.flatten()
        second = chain.flatten()
        assert first > 0
        assert second == 0

    def test_empty_store_is_noop(self, chain):
        assert chain.flatten() == 0

    def test_multi_hop_gap_resolved(self, chain):
        """A stale -old pointer left by an earlier flatten still resolves."""
        chain.write_fresh(fresh_recipe(1, [1]))
        chain.write_fresh(fresh_recipe(2, [1]))
        chain.update_previous(1, {}, next_version=2)
        chain.flatten()  # R1: fp1 -> -2
        chain.write_fresh(fresh_recipe(3, [2]))
        chain.update_previous(2, {fp(1): 20}, next_version=3)
        chain.flatten()
        r1 = chain.recipes.peek(1).entries[0]
        assert r1.cid == 20


class TestResolveEntryLocation:
    def test_positive_passthrough(self, chain):
        assert chain.resolve_entry_location(fp(1), 5, newest=3) == 5

    def test_active_passthrough(self, chain):
        assert chain.resolve_entry_location(fp(1), ACTIVE_CID, newest=3) == ACTIVE_CID

    def test_follows_chain_to_archival(self, chain):
        build_chained_history(chain)
        # R_1's entry for chunk 2 chains to R_2, where it is archived in 12.
        assert chain.resolve_entry_location(fp(2), -2, newest=3) == 12

    def test_follows_chain_to_active(self, chain):
        build_chained_history(chain)
        assert chain.resolve_entry_location(fp(3), -2, newest=3) == ACTIVE_CID

    def test_pointer_past_newest_means_active(self, chain):
        assert chain.resolve_entry_location(fp(1), -9, newest=3) == ACTIVE_CID

    def test_broken_chain_raises(self, chain):
        chain.write_fresh(fresh_recipe(2, [7]))
        with pytest.raises(RecipeError):
            chain.resolve_entry_location(fp(1), -2, newest=3)
