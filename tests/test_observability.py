"""Unit tests for :mod:`repro.observability`: registry, events, traces.

The registry's thread-safety claims are exercised for real (concurrent
increments/observations from many threads must lose nothing), and the
histogram's bucket-edge and quantile behaviour is pinned down exactly —
these numbers end up in STATS replies and operator dashboards.
"""

import io
import json
import threading

import pytest

from repro.observability import (
    DEFAULT_LATENCY_BUCKETS,
    EventLogger,
    Histogram,
    JsonEventLogger,
    MetricsRegistry,
    get_registry,
    new_trace_id,
    open_event_log,
    read_jsonl,
)


class TestCountersAndGauges:
    def test_counter_counts_and_rejects_decrease(self):
        reg = MetricsRegistry()
        reg.inc("a.total")
        reg.inc("a.total", 41)
        assert reg.counter("a.total").value == 42
        with pytest.raises(ValueError):
            reg.counter("a.total").inc(-1)

    def test_gauge_set_inc_dec(self):
        reg = MetricsRegistry()
        reg.set_gauge("depth", 3)
        g = reg.gauge("depth")
        g.inc()
        g.dec(2)
        assert g.value == 2

    def test_concurrent_increments_lose_nothing(self):
        reg = MetricsRegistry()
        counter = reg.counter("hits")
        hist = reg.histogram("lat")
        per_thread, threads = 2_000, 8

        def worker():
            for _ in range(per_thread):
                counter.inc()
                hist.observe(0.01)

        pool = [threading.Thread(target=worker) for _ in range(threads)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        assert counter.value == per_thread * threads
        assert hist.count == per_thread * threads

    def test_name_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")
        with pytest.raises(ValueError):
            reg.histogram("x")

    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("c") is reg.counter("c")
        assert reg.histogram("h") is reg.histogram("h")


class TestHistogram:
    def test_bucket_edges_are_inclusive_upper_bounds(self):
        h = Histogram("t", bounds=(1.0, 2.0, 4.0))
        h.observe(1.0)   # exactly on an edge -> that bucket, not the next
        h.observe(2.0)
        h.observe(4.0)
        h.observe(5.0)   # overflow bucket
        assert h._counts == [1, 1, 1, 1]
        assert h.count == 4
        assert h.sum == 12.0

    def test_quantiles_interpolate_and_clamp_to_observed_range(self):
        h = Histogram("t", bounds=(0.1, 1.0))
        for _ in range(100):
            h.observe(0.05)
        # All samples in the first bucket: interpolation stays within it,
        # and the estimate never exceeds the observed max.
        assert 0.0 < h.quantile(0.5) <= 0.05
        assert h.quantile(0.99) <= 0.05

    def test_overflow_bucket_reports_observed_max(self):
        h = Histogram("t", bounds=(0.1,))
        h.observe(12.5)
        assert h.quantile(0.99) == 12.5
        snap = h.snapshot()
        assert snap["max"] == 12.5
        assert snap["p99"] == 12.5

    def test_empty_histogram_snapshot(self):
        snap = Histogram("t").snapshot()
        assert snap == {"count": 0, "sum": 0.0, "min": None, "max": None,
                        "p50": 0.0, "p95": 0.0, "p99": 0.0}

    def test_invalid_bounds_and_quantiles(self):
        with pytest.raises(ValueError):
            Histogram("t", bounds=())
        with pytest.raises(ValueError):
            Histogram("t", bounds=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("t").quantile(0.0)

    def test_default_buckets_strictly_increasing(self):
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(DEFAULT_LATENCY_BUCKETS)
        assert len(set(DEFAULT_LATENCY_BUCKETS)) == len(DEFAULT_LATENCY_BUCKETS)


class TestRegistrySnapshotAndDisable:
    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.inc("server.requests_total", 3)
        reg.set_gauge("pool.depth", 2)
        reg.observe("server.backup_seconds", 0.2)
        snap = reg.snapshot()
        assert snap["counters"] == {"server.requests_total": 3}
        assert snap["gauges"] == {"pool.depth": 2}
        hist = snap["histograms"]["server.backup_seconds"]
        assert hist["count"] == 1
        assert set(hist) >= {"p50", "p95", "p99", "count", "sum", "min", "max"}
        # Must be JSON-serialisable as-is (goes into STATS replies).
        json.dumps(snap)

    def test_disabled_registry_records_nothing(self):
        reg = MetricsRegistry(enabled=False)
        reg.inc("a")
        reg.observe("b", 1.0)
        reg.set_gauge("c", 1.0)
        with reg.timer("d"):
            pass
        assert reg.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}
        reg.enable()
        reg.inc("a")
        assert reg.snapshot()["counters"] == {"a": 1}

    def test_timer_records_on_error_too(self):
        reg = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with reg.timer("op"):
                raise RuntimeError("boom")
        assert reg.histogram("op").count == 1

    def test_reset_drops_instruments(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.reset()
        assert reg.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_default_registry_is_a_singleton(self):
        assert get_registry() is get_registry()


class TestEvents:
    def test_trace_ids_unique_and_printable(self):
        ids = {new_trace_id() for _ in range(100)}
        assert len(ids) == 100
        assert all(len(t) == 16 and t.isalnum() for t in ids)

    def test_json_event_logger_writes_valid_jsonl(self, tmp_path):
        path = str(tmp_path / "log" / "events.jsonl")
        with JsonEventLogger(path, source="test") as log:
            log.log("begin", trace="abc.1", repo="alpha", skipped=None)
            log.log("end", trace="abc.1", duration_ms=1.5)
        records = read_jsonl(path)
        assert [r["event"] for r in records] == ["begin", "end"]
        assert records[0]["source"] == "test"
        assert records[0]["trace"] == "abc.1"
        assert "skipped" not in records[0]  # None-valued fields dropped
        assert "ts" in records[0]

    def test_span_logs_begin_end_with_duration(self):
        stream = io.StringIO()
        log = JsonEventLogger(stream)
        with log.span("backup", trace="t.1", repo="alpha"):
            pass
        lines = [json.loads(line) for line in stream.getvalue().splitlines()]
        assert [r["event"] for r in lines] == ["backup_begin", "backup_end"]
        assert lines[1]["duration_ms"] >= 0

    def test_span_logs_error_and_reraises(self):
        stream = io.StringIO()
        log = JsonEventLogger(stream)
        with pytest.raises(ValueError):
            with log.span("restore", trace="t.2"):
                raise ValueError("missing version")
        lines = [json.loads(line) for line in stream.getvalue().splitlines()]
        assert [r["event"] for r in lines] == ["restore_begin", "restore_error"]
        assert lines[1]["error"] == "ValueError"
        assert "missing version" in lines[1]["message"]

    def test_noop_logger_and_open_event_log(self, tmp_path):
        assert not EventLogger().enabled
        EventLogger().log("anything", trace="x")  # must not raise
        assert isinstance(open_event_log(None), EventLogger)
        assert not open_event_log(None).enabled
        real = open_event_log(str(tmp_path / "e.jsonl"))
        assert real.enabled
        real.close()

    def test_concurrent_logging_never_interleaves_lines(self, tmp_path):
        path = str(tmp_path / "e.jsonl")
        log = JsonEventLogger(path)

        def worker(n):
            for i in range(200):
                log.log("tick", worker=n, i=i)

        pool = [threading.Thread(target=worker, args=(n,)) for n in range(6)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        log.close()
        records = read_jsonl(path)  # json.loads fails on any torn line
        assert len(records) == 6 * 200
