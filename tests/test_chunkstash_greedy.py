"""Tests for ChunkStash (flash index) and greedy (submodular) capping."""

import pytest

from repro.chunking.stream import Chunk, synthetic_fingerprint
from repro.errors import IndexError_, ReproError
from repro.index import ChunkStashIndex, make_index
from repro.metrics import exact_dedup_ratio
from repro.pipeline import build_scheme
from repro.pipeline.system import BackupSystem
from repro.rewriting import GreedyCappingRewriter, make_rewriter
from repro.units import KiB


def chunks(tokens, size=1000):
    return [Chunk(synthetic_fingerprint(t), size) for t in tokens]


class TestChunkStash:
    def test_exact_deduplication(self, small_workload):
        system = BackupSystem(ChunkStashIndex(), container_size=64 * KiB)
        for stream in small_workload.versions():
            system.backup(stream)
        assert abs(
            system.dedup_ratio - exact_dedup_ratio(small_workload.versions())
        ) < 1e-12

    def test_zero_disk_lookups(self, small_workload):
        index = ChunkStashIndex()
        system = BackupSystem(index, container_size=64 * KiB)
        for stream in small_workload.versions():
            system.backup(stream)
        assert index.stats.disk_lookups == 0
        assert index.flash_lookups > 0

    def test_unique_chunks_skip_flash_mostly(self):
        index = ChunkStashIndex(signature_bytes=4)
        index.lookup_batch(chunks(range(500)))
        # Empty table: no signatures exist, so no flash probes at all.
        assert index.flash_lookups == 0

    def test_signature_collisions_resolved_on_flash(self):
        index = ChunkStashIndex(signature_bytes=1)  # force collisions
        batch = chunks(range(1000))
        index.lookup_batch(batch)
        for i, c in enumerate(batch):
            index.record(c, i)
        results = index.lookup_batch(batch)
        assert results == list(range(1000))  # exact despite collisions
        assert index.flash_false_probes >= 0

    def test_compact_ram_footprint(self):
        index = ChunkStashIndex(signature_bytes=2)
        batch = chunks(range(1000))
        for i, c in enumerate(batch):
            index.record(c, i)
        # 6 bytes per key (2-byte signature + 4-byte pointer) vs 28 full.
        assert index.memory_bytes == 1000 * 6
        assert index.flash_bytes == 1000 * 28

    def test_rewritten_copy_updates_location(self):
        index = ChunkStashIndex()
        c = chunks([5])[0]
        index.record(c, 1)
        index.record(c, 9)
        assert index.lookup_batch([c]) == [9]

    def test_bad_signature_width_rejected(self):
        with pytest.raises(IndexError_):
            ChunkStashIndex(signature_bytes=0)
        with pytest.raises(IndexError_):
            ChunkStashIndex(signature_bytes=9)

    def test_factory(self):
        assert isinstance(make_index("chunkstash"), ChunkStashIndex)

    def test_scheme_round_trip(self, small_workload):
        system = build_scheme("chunkstash", container_size=64 * KiB)
        for stream in small_workload.versions():
            system.backup(stream)
        restored = list(system.restore_chunks(8))
        assert [c.fingerprint for c in restored] == small_workload.version(8).fingerprints()


class TestGreedyCapping:
    def test_cap_bounds_containers_per_segment(self):
        rewriter = GreedyCappingRewriter(cap=3, segment_bytes=64 * KiB, min_coverage_bytes=0)
        batch = chunks(range(64))
        lookups = [1 + (i % 10) for i in range(64)]
        decisions = rewriter.decide(batch, lookups)
        assert len({d for d in decisions if d is not None}) <= 3

    def test_selects_by_byte_coverage_not_count(self):
        # Container 7: two 10 KiB chunks; container 8: five 1 KiB chunks.
        batch = [
            Chunk(synthetic_fingerprint(1), 10 * 1024),
            Chunk(synthetic_fingerprint(2), 10 * 1024),
        ] + chunks(range(10, 15), size=1024)
        lookups = [7, 7, 8, 8, 8, 8, 8]
        rewriter = GreedyCappingRewriter(cap=1, segment_bytes=1024 * KiB, min_coverage_bytes=0)
        decisions = rewriter.decide(batch, lookups)
        assert decisions[:2] == [7, 7]  # byte-heavier container wins
        assert all(d is None for d in decisions[2:])

    def test_marginal_floor_stops_early(self):
        # Container 1 dominates; container 2 contributes one tiny chunk.
        batch = chunks(range(10), size=8 * 1024) + chunks([99], size=100)
        lookups = [1] * 10 + [2]
        rewriter = GreedyCappingRewriter(cap=5, segment_bytes=1024 * KiB, min_coverage_bytes=1024)
        decisions = rewriter.decide(batch, lookups)
        assert decisions[:10] == [1] * 10
        assert decisions[10] is None  # below the marginal-utility floor

    def test_repeated_fingerprints_counted_once(self):
        fp_chunk = Chunk(synthetic_fingerprint(1), 4 * 1024)
        batch = [fp_chunk] * 6 + chunks([50], size=5 * 1024)
        lookups = [3] * 6 + [4]
        rewriter = GreedyCappingRewriter(cap=1, segment_bytes=1024 * KiB, min_coverage_bytes=0)
        decisions = rewriter.decide(batch, lookups)
        # Container 4 covers 5 KiB of distinct bytes; container 3 only 4 KiB
        # (the repeated chunk counts once).
        assert decisions[6] == 4
        assert all(d is None for d in decisions[:6])

    def test_never_invents_duplicates(self):
        rewriter = GreedyCappingRewriter(cap=2, segment_bytes=16 * KiB)
        batch = chunks(range(20))
        lookups = [None if i % 2 else 1 for i in range(20)]
        decisions = rewriter.decide(batch, lookups)
        for looked, decided in zip(lookups, decisions):
            if looked is None:
                assert decided is None

    def test_validation(self):
        with pytest.raises(ReproError):
            GreedyCappingRewriter(cap=0)
        with pytest.raises(ReproError):
            GreedyCappingRewriter(min_coverage_bytes=-1)

    def test_factory(self):
        assert isinstance(make_rewriter("greedy-capping"), GreedyCappingRewriter)

    def test_end_to_end_scheme(self, small_workload):
        from repro.units import MiB

        system = build_scheme(
            "greedy-capping",
            container_size=16 * KiB,
            rewriter_kwargs=dict(cap=8, segment_bytes=1 * MiB, min_coverage_bytes=0),
        )
        for stream in small_workload.versions():
            system.backup(stream)
        restored = list(system.restore_chunks(8))
        assert [c.fingerprint for c in restored] == small_workload.version(8).fingerprints()
        assert system.dedup_ratio < exact_dedup_ratio(small_workload.versions()) + 1e-9
