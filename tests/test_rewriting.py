"""Tests for the rewriting schemes (none, capping, CBR, CFL, FBW)."""

import pytest

from repro.chunking.stream import Chunk, synthetic_fingerprint
from repro.errors import ReproError
from repro.rewriting import (
    CBRRewriter,
    CFLRewriter,
    CappingRewriter,
    FBWRewriter,
    NoRewriter,
    make_rewriter,
)

KB = 1024


def chunks(n, size=KB):
    return [Chunk(synthetic_fingerprint(t), size) for t in range(n)]


def scattered_lookups(n, containers):
    """Duplicates spread round-robin over many containers (max fragmentation)."""
    return [1 + (i % containers) for i in range(n)]


ALL = {
    "none": NoRewriter,
    "capping": CappingRewriter,
    "cbr": CBRRewriter,
    "cfl": CFLRewriter,
    "fbw": FBWRewriter,
}


@pytest.mark.parametrize("name", sorted(ALL))
class TestUniversalContract:
    def test_never_invents_duplicates(self, name):
        rewriter = ALL[name]()
        rewriter.begin_version(1)
        batch = chunks(200)
        lookups = [None if i % 3 else 1 for i in range(200)]
        decisions = rewriter.decide(batch, lookups)
        for looked, decided in zip(lookups, decisions):
            if looked is None:
                assert decided is None

    def test_decisions_subset_of_lookups(self, name):
        rewriter = ALL[name]()
        rewriter.begin_version(1)
        batch = chunks(100)
        lookups = scattered_lookups(100, 10)
        decisions = rewriter.decide(batch, lookups)
        for looked, decided in zip(lookups, decisions):
            assert decided is None or decided == looked

    def test_length_mismatch_rejected(self, name):
        rewriter = ALL[name]()
        rewriter.begin_version(1)
        with pytest.raises(ReproError):
            rewriter.decide(chunks(3), [None, None])

    def test_stats_track_duplicates(self, name):
        rewriter = ALL[name]()
        rewriter.begin_version(1)
        batch = chunks(50)
        lookups = [1] * 50
        rewriter.decide(batch, lookups)
        assert rewriter.stats.duplicate_chunks == 50
        assert 0.0 <= rewriter.stats.rewrite_fraction <= 1.0


class TestNoRewriter:
    def test_identity(self):
        rewriter = NoRewriter()
        lookups = [1, None, 2]
        assert rewriter.decide(chunks(3), lookups) == lookups
        assert rewriter.stats.rewritten_chunks == 0


class TestCapping:
    def test_cap_bounds_referenced_containers_per_segment(self):
        cap = 4
        rewriter = CappingRewriter(cap=cap, segment_bytes=64 * KB)
        batch = chunks(64)
        lookups = scattered_lookups(64, 16)
        decisions = rewriter.decide(batch, lookups)
        referenced = {d for d in decisions if d is not None}
        assert len(referenced) <= cap

    def test_keeps_most_referenced_containers(self):
        rewriter = CappingRewriter(cap=1, segment_bytes=64 * KB)
        batch = chunks(10)
        lookups = [7, 7, 7, 7, 7, 7, 8, 8, 9, 9]
        decisions = rewriter.decide(batch, lookups)
        assert decisions.count(7) == 6
        assert 8 not in decisions and 9 not in decisions

    def test_no_rewrites_when_under_cap(self):
        rewriter = CappingRewriter(cap=20, segment_bytes=64 * KB)
        batch = chunks(20)
        lookups = [1 + (i % 3) for i in range(20)]
        decisions = rewriter.decide(batch, lookups)
        assert decisions == lookups

    def test_segments_capped_independently(self):
        # Two segments, each referencing 3 distinct containers with cap 2.
        rewriter = CappingRewriter(cap=2, segment_bytes=5 * KB)
        batch = chunks(10)
        lookups = [1, 1, 2, 3, 3, 4, 4, 5, 6, 6]
        decisions = rewriter.decide(batch, lookups)
        first = {d for d in decisions[:5] if d is not None}
        second = {d for d in decisions[5:] if d is not None}
        assert len(first) <= 2 and len(second) <= 2

    def test_rejects_bad_config(self):
        with pytest.raises(ReproError):
            CappingRewriter(cap=0)
        with pytest.raises(ReproError):
            CappingRewriter(segment_bytes=0)


class TestCBR:
    def test_budget_limits_rewritten_bytes(self):
        rewriter = CBRRewriter(
            stream_context_bytes=8 * KB,
            minimal_utility=0.0,
            rewrite_budget=0.10,
            container_bytes=512 * KB,
        )
        rewriter.begin_version(1)
        batch = chunks(100)
        lookups = scattered_lookups(100, 50)
        decisions = rewriter.decide(batch, lookups)
        assert rewriter.stats.rewritten_bytes <= 0.10 * 100 * KB + KB

    def test_dense_containers_not_rewritten(self):
        # Every duplicate comes from container 1, which therefore supplies
        # the whole stream context: utility 0, nothing rewritten.
        rewriter = CBRRewriter(
            stream_context_bytes=64 * KB,
            minimal_utility=0.5,
            rewrite_budget=1.0,
            container_bytes=64 * KB,
        )
        batch = chunks(64)
        lookups = [1] * 64
        assert rewriter.decide(batch, lookups) == lookups

    def test_sparse_containers_rewritten(self):
        rewriter = CBRRewriter(
            stream_context_bytes=16 * KB,
            minimal_utility=0.7,
            rewrite_budget=1.0,
            container_bytes=1024 * KB,  # each container is barely used
        )
        batch = chunks(64)
        lookups = scattered_lookups(64, 32)
        decisions = rewriter.decide(batch, lookups)
        assert decisions.count(None) > 0

    def test_rejects_bad_config(self):
        with pytest.raises(ReproError):
            CBRRewriter(minimal_utility=1.5)
        with pytest.raises(ReproError):
            CBRRewriter(rewrite_budget=-0.1)


class TestCFL:
    def test_high_locality_stream_untouched(self):
        rewriter = CFLRewriter(threshold=0.6, container_bytes=4 * KB, warmup_containers=2)
        rewriter.begin_version(1)
        batch = chunks(64)
        # Sequential layout: 4 chunks per container, in order.
        lookups = [1 + i // 4 for i in range(64)]
        decisions = rewriter.decide(batch, lookups)
        assert decisions == lookups

    def test_fragmented_stream_triggers_selective_rewrite(self):
        rewriter = CFLRewriter(threshold=0.6, container_bytes=4 * KB, warmup_containers=2)
        rewriter.begin_version(1)
        batch = chunks(64)
        lookups = scattered_lookups(64, 40)  # 40 containers for 16 optimal
        decisions = rewriter.decide(batch, lookups)
        assert decisions.count(None) > 0

    def test_warmup_suppresses_early_noise(self):
        rewriter = CFLRewriter(threshold=0.99, container_bytes=4 * KB, warmup_containers=100)
        rewriter.begin_version(1)
        batch = chunks(16)
        lookups = scattered_lookups(16, 16)
        # Entirely inside warmup: nothing rewritten despite terrible CFL.
        assert rewriter.decide(batch, lookups) == lookups

    def test_state_resets_per_version(self):
        rewriter = CFLRewriter(threshold=0.6, container_bytes=4 * KB, warmup_containers=0)
        rewriter.begin_version(1)
        rewriter.decide(chunks(64), scattered_lookups(64, 40))
        rewriter.begin_version(2)
        lookups = [1 + i // 4 for i in range(64)]
        assert rewriter.decide(chunks(64), lookups) == lookups

    def test_rejects_bad_threshold(self):
        with pytest.raises(ReproError):
            CFLRewriter(threshold=0.0)


class TestFBW:
    def test_whole_container_groups_rewritten(self):
        rewriter = FBWRewriter(
            window_bytes=64 * KB,
            target_rewrite_ratio=1.0,
            density_threshold=0.5,
            container_bytes=64 * KB,
        )
        rewriter.begin_version(1)
        batch = chunks(64)
        lookups = scattered_lookups(64, 32)
        decisions = rewriter.decide(batch, lookups)
        # A container's references are either all kept or all rewritten.
        kept = {}
        for looked, decided in zip(lookups, decisions):
            kept.setdefault(looked, set()).add(decided is not None)
        assert all(len(v) == 1 for v in kept.values())

    def test_budget_respected(self):
        rewriter = FBWRewriter(
            window_bytes=64 * KB,
            target_rewrite_ratio=0.05,
            density_threshold=1.0,
            container_bytes=64 * KB,
        )
        rewriter.begin_version(1)
        batch = chunks(100)
        lookups = scattered_lookups(100, 100)
        rewriter.decide(batch, lookups)
        assert rewriter.stats.rewritten_bytes <= 0.05 * 100 * KB + KB

    def test_dense_containers_safe(self):
        rewriter = FBWRewriter(
            window_bytes=64 * KB,
            target_rewrite_ratio=1.0,
            density_threshold=0.25,
            container_bytes=64 * KB,
        )
        rewriter.begin_version(1)
        batch = chunks(64)
        lookups = [1] * 64  # container 1 supplies the whole window
        assert rewriter.decide(batch, lookups) == lookups

    def test_rejects_bad_config(self):
        with pytest.raises(ReproError):
            FBWRewriter(window_bytes=0)
        with pytest.raises(ReproError):
            FBWRewriter(density_threshold=0.0)


class TestMakeRewriter:
    @pytest.mark.parametrize("name", sorted(ALL))
    def test_factory(self, name):
        assert isinstance(make_rewriter(name), ALL[name])

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_rewriter("dedupv1")
