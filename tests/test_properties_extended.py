"""Extended property-based tests: archive, GC, checkpoint, pack round-trips."""

import random

from hypothesis import given, settings, strategies as st

from repro.chunking.stream import BackupStream, Chunk, synthetic_fingerprint as fp
from repro.core import HiDeStore, load_checkpoint, save_checkpoint, verify_system
from repro.index import ExactFullIndex
from repro.pipeline import GCDeletionManager
from repro.pipeline.system import BackupSystem
from repro.storage.container import Container
from repro.storage.container_store import pack_container, unpack_container
from repro.storage.recipe import Recipe, RecipeEntry, pack_recipe, unpack_recipe

KB = 1024


@st.composite
def trees(draw):
    """A random file tree: names -> bytes (possibly empty files)."""
    n_files = draw(st.integers(1, 8))
    rng = random.Random(draw(st.integers(0, 2**32 - 1)))
    tree = {}
    for i in range(n_files):
        size = draw(st.sampled_from([0, 1, 100, 1000, 5000]))
        tree[f"f{i:02d}.bin"] = bytes(rng.getrandbits(8) for _ in range(size))
    return tree


@st.composite
def histories(draw):
    """Short version histories of token lists (adjacent-derived)."""
    rng = random.Random(draw(st.integers(0, 2**32 - 1)))
    versions = draw(st.integers(2, 5))
    size = draw(st.integers(8, 40))
    next_token = size
    current = list(range(size))
    out = [list(current)]
    for _ in range(versions - 1):
        evolved = []
        for token in current:
            roll = rng.random()
            if roll < 0.12:
                evolved.append(next_token)
                next_token += 1
            elif roll < 0.2:
                continue
            else:
                evolved.append(token)
        if not evolved:
            evolved = [next_token]
            next_token += 1
        current = evolved
        out.append(list(current))
    return out


def to_streams(history):
    return [
        BackupStream([Chunk(fp(t), 256 + (t % 5) * 64) for t in tokens], tag=f"v{k}")
        for k, tokens in enumerate(history, start=1)
    ]


class TestArchiveProperties:
    @given(trees())
    @settings(max_examples=25, deadline=None)
    def test_any_tree_round_trips(self, tree):
        from repro.archive import DirectoryArchive
        from repro.chunking import FastCDCChunker

        archive = DirectoryArchive(
            HiDeStore(container_size=32 * KB),
            chunker=FastCDCChunker(min_size=64, avg_size=256, max_size=2048),
        )
        archive.backup_tree(tree)
        assert archive.restore_tree(1) == tree
        for path, data in tree.items():
            assert archive.restore_file(1, path) == data


class TestGCProperties:
    @given(histories(), st.sampled_from([0.0, 0.5, 1.0]))
    @settings(max_examples=25, deadline=None)
    def test_gc_deletion_never_breaks_survivors(self, history, threshold):
        streams = to_streams(history)
        system = BackupSystem(ExactFullIndex(), container_size=4 * KB)
        for stream in streams:
            system.backup(stream)
        gc = GCDeletionManager(system, utilization_threshold=threshold)
        while len(system.version_ids()) > 1:
            gc.delete_version(system.version_ids()[0])
            for version_id in system.version_ids():
                restored = list(system.restore_chunks(version_id))
                assert [c.fingerprint for c in restored] == streams[
                    version_id - 1
                ].fingerprints()
        assert verify_system(system).ok


class TestCheckpointProperties:
    @given(histories(), st.integers(1, 3))
    @settings(max_examples=20, deadline=None)
    def test_checkpoint_at_any_boundary_resumes_exactly(self, history, cut_at):
        import tempfile, os

        streams = to_streams(history)
        cut = min(cut_at, len(streams) - 1)
        with tempfile.TemporaryDirectory() as root:
            first = HiDeStore(container_size=4 * KB)
            for stream in streams[:cut]:
                first.backup(stream)
            path = os.path.join(root, "ckpt.json")
            save_checkpoint(first, path)
            resumed = load_checkpoint(path)
            # In-memory stores are not shared, so re-point the resumed
            # system at the original's stores (the documented contract).
            resumed.containers = first.containers
            resumed.containers.stats = resumed.io
            resumed.recipes = first.recipes
            resumed.recipes.stats = resumed.io
            resumed.pool.store = first.containers
            resumed.chain.recipes = first.recipes
            resumed.deletion.containers = first.containers
            resumed.deletion.recipes = first.recipes
            for stream in streams[cut:]:
                resumed.backup(stream)

            reference = HiDeStore(container_size=4 * KB)
            for stream in streams:
                reference.backup(stream)
            assert abs(resumed.dedup_ratio - reference.dedup_ratio) < 1e-12
            for version_id, stream in enumerate(streams, start=1):
                restored = list(resumed.restore_chunks(version_id))
                assert [c.fingerprint for c in restored] == stream.fingerprints()


class TestSerialisationProperties:
    @given(st.lists(st.tuples(st.integers(0, 10_000), st.integers(1, 400),
                              st.booleans()),
                    min_size=0, max_size=30, unique_by=lambda t: t[0]))
    @settings(max_examples=50, deadline=None)
    def test_container_pack_round_trip(self, specs):
        container = Container(1, capacity=30 * 400)
        for token, size, with_data in specs:
            data = bytes(size) if with_data else None
            container.add(Chunk(fp(token), size, data))
        loaded = unpack_container(pack_container(container))
        assert loaded.container_id == 1
        assert loaded.chunk_count == container.chunk_count
        assert loaded.used == container.used
        for token, size, with_data in specs:
            chunk = loaded.get_chunk(fp(token))
            assert chunk.size == size
            assert (chunk.data is not None) == with_data

    @given(st.lists(st.tuples(st.integers(0, 10_000), st.integers(1, 10_000),
                              st.integers(-1000, 1000)),
                    min_size=0, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_recipe_pack_round_trip(self, entries):
        recipe = Recipe(7, "prop")
        for token, size, cid in entries:
            recipe.append(fp(token), size, cid)
        loaded = unpack_recipe(pack_recipe(recipe))
        assert loaded.version_id == 7
        assert [(e.fingerprint, e.size, e.cid) for e in loaded] == [
            (fp(t), s, c) for t, s, c in entries
        ]
