"""Integration tests asserting the paper's evaluation claims (shapes).

Each test encodes one comparison the paper reports, at the repo's scaled
workload sizes.  Absolute values differ from the paper (simulated substrate,
scaled datasets); orderings and rough factors must hold.
"""

import pytest

from repro.core.hidestore import HiDeStore
from repro.metrics import exact_dedup_ratio
from repro.pipeline import build_scheme
from repro.units import KiB, MiB
from repro.workloads import load_preset

CONTAINER = 512 * KiB
VERSIONS = 16
CHUNKS = 2000


def run(name, preset="kernel", **kwargs):
    system = build_scheme(name, container_size=CONTAINER, **kwargs)
    for stream in load_preset(preset, versions=VERSIONS, chunks_per_version=CHUNKS).versions():
        system.backup(stream)
    return system


#: DDFS locality cache sized well below the dataset's container count, as at
#: paper scale (RAM caches a sliver of a multi-TB store).
DDFS_KW = dict(index_kwargs=dict(cache_containers=16))


@pytest.fixture(scope="module")
def systems():
    capping_kwargs = dict(rewriter_kwargs=dict(cap=16, segment_bytes=4 * MiB), **DDFS_KW)
    fbw_kwargs = dict(
        rewriter_kwargs=dict(
            container_bytes=CONTAINER,
            window_bytes=8 * MiB,
            target_rewrite_ratio=0.05,
            density_threshold=0.25,
        ),
        **DDFS_KW,
    )
    return {
        "ddfs": run("ddfs", **DDFS_KW),
        "sparse": run("sparse"),
        "silo": run("silo"),
        "capping": run("capping", **capping_kwargs),
        "alacc": run("alacc", **fbw_kwargs),
        "hidestore": run("hidestore"),
    }


@pytest.fixture(scope="module")
def workload_exact_ratio():
    return exact_dedup_ratio(
        load_preset("kernel", versions=VERSIONS, chunks_per_version=CHUNKS).versions()
    )


class TestFigure8DedupRatio:
    def test_hidestore_matches_exact_dedup(self, systems, workload_exact_ratio):
        assert abs(systems["hidestore"].dedup_ratio - workload_exact_ratio) < 1e-9
        assert abs(systems["hidestore"].dedup_ratio - systems["ddfs"].dedup_ratio) < 1e-9

    def test_near_exact_schemes_lose_a_little(self, systems):
        assert systems["sparse"].dedup_ratio <= systems["ddfs"].dedup_ratio
        assert systems["silo"].dedup_ratio <= systems["ddfs"].dedup_ratio
        # ... but stay within a few points.
        assert systems["sparse"].dedup_ratio > systems["ddfs"].dedup_ratio - 0.05
        assert systems["silo"].dedup_ratio > systems["ddfs"].dedup_ratio - 0.05

    def test_rewriting_schemes_lose_more(self, systems):
        assert systems["capping"].dedup_ratio < systems["hidestore"].dedup_ratio
        assert systems["alacc"].dedup_ratio < systems["hidestore"].dedup_ratio


class TestFigure9LookupOverhead:
    def test_hidestore_needs_far_fewer_lookups_than_ddfs(self, systems):
        """Paper: HiDeStore reduces lookups by up to 71% vs DDFS."""
        assert (
            systems["hidestore"].report.lookups_per_gb
            < 0.5 * systems["ddfs"].report.lookups_per_gb
        )

    def test_hidestore_lookups_bounded_per_version(self, systems):
        per_version = [r.disk_index_lookups for r in systems["hidestore"].report.per_version]
        # Bounded by one recipe's size: essentially flat after version 2.
        assert max(per_version[1:]) <= min(per_version[1:]) * 1.5

    def test_ddfs_lookups_grow_with_fragmentation(self, systems):
        per_version = [r.disk_index_lookups for r in systems["ddfs"].report.per_version]
        early = sum(per_version[1:4]) / 3
        late = sum(per_version[-3:]) / 3
        assert late > early


class TestFigure10IndexOverhead:
    def test_ordering_ddfs_highest_hidestore_zero(self, systems):
        assert systems["hidestore"].report.index_bytes_per_mb == 0.0
        assert (
            systems["ddfs"].report.index_bytes_per_mb
            > systems["sparse"].report.index_bytes_per_mb
            > systems["hidestore"].report.index_bytes_per_mb
        )

    def test_silo_smaller_than_sparse(self, systems):
        """SiLo samples one fp per segment vs sparse's 1-in-N chunks."""
        assert (
            systems["silo"].report.index_bytes_per_mb
            < systems["sparse"].report.index_bytes_per_mb
        )


class TestFigure11RestorePerformance:
    def test_hidestore_wins_on_newest_version(self, systems):
        newest = VERSIONS
        hds = systems["hidestore"].restore(newest).speed_factor
        base = systems["ddfs"].restore(newest).speed_factor
        capping = systems["capping"].restore(newest).speed_factor
        alacc = systems["alacc"].restore(newest).speed_factor
        assert hds > base
        assert hds > capping
        assert hds > alacc

    def test_hidestore_sacrifices_old_versions(self, systems):
        hds_old = systems["hidestore"].restore(1).speed_factor
        base_old = systems["ddfs"].restore(1).speed_factor
        assert hds_old < base_old

    def test_traditional_baseline_degrades_over_versions(self, systems):
        base = systems["ddfs"]
        assert base.restore(VERSIONS).speed_factor < base.restore(1).speed_factor

    def test_hidestore_improves_toward_newest(self, systems):
        hds = systems["hidestore"]
        assert hds.restore(VERSIONS).speed_factor > hds.restore(1).speed_factor


class TestMacosHistoryDepth:
    def test_depth_two_closes_the_gap(self):
        workload_args = dict(versions=10, chunks_per_version=1500)
        exact = exact_dedup_ratio(load_preset("macos", **workload_args).versions())
        shallow = HiDeStore(container_size=CONTAINER, history_depth=1)
        for stream in load_preset("macos", **workload_args).versions():
            shallow.backup(stream)
        deep = HiDeStore(container_size=CONTAINER, history_depth=2)
        for stream in load_preset("macos", **workload_args).versions():
            deep.backup(stream)
        assert deep.dedup_ratio > shallow.dedup_ratio
        assert abs(deep.dedup_ratio - exact) < 1e-9


class TestSection55Deletion:
    def test_deletion_cost_is_negligible(self):
        system = run("hidestore")
        stats = system.delete_oldest()
        assert stats.delete_seconds < 0.05
        assert stats.containers_deleted >= 0
        # No container was rewritten (no GC traffic).
        writes = system.io.container_writes
        system.delete_oldest()
        assert system.io.container_writes == writes
