"""Tests for the BLC index, hot-set restore and container compression."""

import os

import pytest

from repro.chunking.stream import Chunk, synthetic_fingerprint
from repro.errors import IndexError_
from repro.index import BLCIndex, make_index
from repro.metrics import exact_dedup_ratio
from repro.pipeline import build_scheme
from repro.pipeline.system import BackupSystem
from repro.restore import FAARestore, HotSetRestore, make_restorer
from repro.storage import FileContainerStore
from repro.units import KiB


def chunks(tokens, size=1000):
    return [Chunk(synthetic_fingerprint(t), size) for t in tokens]


class TestBLCIndex:
    def test_exact_deduplication(self, small_workload):
        system = BackupSystem(BLCIndex(expected_chunks=10_000), container_size=64 * KiB)
        for stream in small_workload.versions():
            system.backup(stream)
        assert abs(
            system.dedup_ratio - exact_dedup_ratio(small_workload.versions())
        ) < 1e-12

    def test_recipe_page_locality_amortises_lookups(self, small_workload):
        """One disk probe faults a whole previous-recipe page; the stream
        then hits the page cache — far fewer probes than one-per-duplicate."""
        index = BLCIndex(page_entries=64, cache_pages=32, expected_chunks=10_000)
        system = BackupSystem(index, container_size=64 * KiB)
        for stream in small_workload.versions():
            system.backup(stream)
        duplicates = index.stats.duplicates
        assert index.stats.disk_lookups < duplicates / 4

    def test_beats_ddfs_under_fragmentation(self):
        """BLC's recipe-order locality stays fresh; DDFS's container-order
        locality stales — the published result's direction."""
        from repro.index import DDFSIndex
        from repro.workloads import load_preset

        def run(index):
            system = BackupSystem(index, container_size=32 * KiB)
            for stream in load_preset(
                "kernel", versions=12, chunks_per_version=800
            ).versions():
                system.backup(stream)
            return index.stats.disk_lookups

        blc = run(BLCIndex(page_entries=128, cache_pages=8, expected_chunks=100_000))
        ddfs = run(DDFSIndex(expected_chunks=100_000, cache_containers=8))
        assert blc < ddfs

    def test_page_cache_capacity_enforced(self, small_workload):
        index = BLCIndex(page_entries=16, cache_pages=2, expected_chunks=10_000)
        system = BackupSystem(index, container_size=64 * KiB)
        for stream in small_workload.versions():
            system.backup(stream)
        assert len(index._cache) <= 2

    def test_memory_accounts_bloom_and_pages(self):
        index = BLCIndex(expected_chunks=1000)
        assert index.memory_bytes >= index.bloom.size_bytes

    def test_validation(self):
        with pytest.raises(IndexError_):
            BLCIndex(page_entries=0)
        with pytest.raises(IndexError_):
            BLCIndex(cache_pages=0)

    def test_factory_and_scheme(self, small_workload):
        assert isinstance(make_index("blc"), BLCIndex)
        system = build_scheme("blc", container_size=64 * KiB)
        for stream in small_workload.versions():
            system.backup(stream)
        restored = list(system.restore_chunks(8))
        assert [c.fingerprint for c in restored] == small_workload.version(8).fingerprints()


class TestHotSetRestore:
    def test_reads_each_container_exactly_once(self):
        from tests.test_restore_algorithms import Layout

        layout = Layout([(t, 1 + (t % 8)) for t in range(64)])
        HotSetRestore().run(layout.entries, layout.reader)
        assert layout.reads == 8

    def test_restores_exact_sequence(self):
        from tests.test_restore_algorithms import Layout

        layout = Layout([(t, 1 + (t * 7) % 5) for t in range(40)])
        out = HotSetRestore().run(layout.entries, layout.reader)
        assert [c.fingerprint for c in out] == [e.fingerprint for e in layout.entries]

    def test_never_more_reads_than_small_faa(self):
        from tests.test_restore_algorithms import Layout

        pattern = [(t, 1 + (t % 8)) for t in range(64)]
        faa_layout = Layout(pattern)
        FAARestore(area_bytes=8 * 1024).run(faa_layout.entries, faa_layout.reader)
        hot_layout = Layout(pattern)
        HotSetRestore().run(hot_layout.entries, hot_layout.reader)
        assert hot_layout.reads <= faa_layout.reads

    def test_hidestore_newest_version_with_hotset(self, small_workload):
        from repro.core import HiDeStore

        system = HiDeStore(container_size=64 * KiB)
        for stream in small_workload.versions():
            system.backup(stream)
        tiny_faa = system.restore(8, restorer=FAARestore(area_bytes=64 * KiB))
        hot = system.restore(8, restorer=HotSetRestore())
        assert hot.container_reads <= tiny_faa.container_reads
        assert hot.speed_factor >= tiny_faa.speed_factor

    def test_factory(self):
        assert isinstance(make_restorer("hotset"), HotSetRestore)


class TestContainerCompression:
    def _fill(self, store, payload):
        container = store.allocate()
        container.add(Chunk(synthetic_fingerprint(1), len(payload), payload))
        store.write(container)
        return container.container_id

    def test_round_trip(self, tmp_path):
        store = FileContainerStore(str(tmp_path / "c"), capacity=64 * KiB, compress=True)
        payload = b"compressible " * 1000
        cid = self._fill(store, payload)
        loaded = store.read(cid)
        assert loaded.get_chunk(synthetic_fingerprint(1)).data == payload

    def test_compressible_data_shrinks_on_disk(self, tmp_path):
        plain = FileContainerStore(str(tmp_path / "p"), capacity=64 * KiB)
        packed = FileContainerStore(str(tmp_path / "z"), capacity=64 * KiB, compress=True)
        payload = b"A" * 30_000
        self._fill(plain, payload)
        self._fill(packed, payload)
        plain_size = os.path.getsize(os.path.join(str(tmp_path / "p"), "container-00000001.hdsc"))
        packed_size = os.path.getsize(os.path.join(str(tmp_path / "z"), "container-00000001.hdsc"))
        assert packed_size < plain_size / 10

    def test_mixed_stores_read_both_formats(self, tmp_path):
        root = str(tmp_path / "c")
        plain = FileContainerStore(root, capacity=64 * KiB, compress=False)
        self._fill(plain, b"plain" * 100)
        packed = FileContainerStore(root, capacity=64 * KiB, compress=True)
        container = packed.allocate()
        container.add(Chunk(synthetic_fingerprint(2), 500, b"z" * 500))
        packed.write(container)
        reader = FileContainerStore(root, capacity=64 * KiB)
        assert reader.read(1).get_chunk(synthetic_fingerprint(1)).data == b"plain" * 100
        assert reader.read(2).get_chunk(synthetic_fingerprint(2)).data == b"z" * 500

    def test_corrupt_compressed_file_detected(self, tmp_path):
        from repro.errors import StorageError

        store = FileContainerStore(str(tmp_path / "c"), capacity=64 * KiB, compress=True)
        cid = self._fill(store, b"data" * 100)
        path = os.path.join(str(tmp_path / "c"), f"container-{cid:08d}.hdsc")
        with open(path, "r+b") as handle:
            handle.seek(10)
            handle.write(b"XXXX")
        with pytest.raises(StorageError):
            store.read(cid)
