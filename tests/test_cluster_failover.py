"""Automatic primary failover: probe, promote, fence, retry, resync.

The invariant every test here guards: a dead primary must not fail
writes until an operator shows up, AND no sequence of crashes, retries
and rejoins may ever fork a tenant's history.  The moving parts:

* daemons probe their ring predecessor and, after N consecutive misses,
  mint an epoch-bumped map marking the peer ``down`` (promotion);
* the promoted acting primary deep-verifies its replica before the write
  fence (:class:`~repro.errors.NotPrimaryError`) lets a mutation through;
* the router retries a failed write only on the *new* primary a newer
  map names — never the failed node, never a blind replica;
* a rejoining stale primary adopts the newer map from its own first
  probe, demotes, and pulls itself back in sync from the acting primary.
"""

import io
import os
import time

import pytest

from repro.client import RemoteRepository
from repro.cluster import (
    ClusterClient,
    ClusterHarness,
    ClusterMap,
    NodeSpec,
    node_order,
)
from repro.errors import ClusterError, NotPrimaryError, RemoteError
from repro.observability import MetricsRegistry
from repro.repository import read_tree

#: Aggressive probe settings so failover lands in test time, not ops time.
PROBE = dict(probe_interval=0.15, probe_failures=2, probe_timeout=1.0)


def make_tree(root: str, files: int = 2, size: int = 20_000, seed: int = 7):
    os.makedirs(root, exist_ok=True)
    for index in range(files):
        payload = bytes((seed + index + i) % 251 for i in range(size))
        with open(os.path.join(root, f"f{index}.bin"), "wb") as handle:
            handle.write(payload)
    return read_tree(root)


def tree_bytes(entries) -> bytes:
    parts = []
    for _rel, path in entries:
        with open(path, "rb") as handle:
            parts.append(handle.read())
    return b"".join(parts)


def restored_bytes(repo, version_id: int) -> bytes:
    _plan, stream = repo.restore(version_id)
    out = io.BytesIO()
    for block in stream:
        out.write(block)
    return out.getvalue()


def wait_until(predicate, timeout: float = 20.0, interval: float = 0.1):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        result = predicate()
        if result:
            return result
        time.sleep(interval)
    raise AssertionError("condition not met within timeout")


# ----------------------------------------------------------------------
# Map-level unit tests: promotion minting and probe topology
# ----------------------------------------------------------------------
def test_promote_mints_epoch_bumped_down_marked_map():
    cmap = ClusterMap(
        [NodeSpec(f"n{i}", f"h:{i}") for i in (1, 2, 3)], replicas=2
    )
    promoted = cmap.promote("n1", by="n2")
    assert promoted is not cmap  # never mutate in place: harness shares maps
    assert promoted.epoch == cmap.epoch + 1
    assert promoted.down_names() == ["n1"]
    assert promoted.promotions[-1] == {"epoch": 2, "down": "n1", "by": "n2"}
    # Round-trips through the wire document, including the markers.
    again = ClusterMap.from_doc(promoted.as_doc())
    assert again.as_doc() == promoted.as_doc()
    assert again.is_down("n1")
    # A down node is demoted to the back of every placement; every tenant
    # n1 owned gets a live acting primary, and n1 stays listed (so its
    # rejoin finds itself in the map and demotes).
    for tenant in (f"t{i}" for i in range(50)):
        placement = [n.name for n in promoted.placement(tenant)]
        assert placement[0] != "n1"
        natural = promoted.natural_primary(tenant).name
        if natural == "n1":
            assert promoted.primary(tenant).name != "n1"
    with pytest.raises(ClusterError):
        promoted.promote("n1", by="n3")  # already down


def test_probe_targets_form_a_live_predecessor_cycle():
    cmap = ClusterMap(
        [NodeSpec(f"n{i}", f"h:{i}") for i in (1, 2, 3)], replicas=2
    )
    targets = {n.name: cmap.probe_target(n.name).name for n in cmap.nodes}
    # Every node is probed by exactly one peer (a cycle, no gaps).
    assert sorted(targets.values()) == sorted(targets)
    assert all(targets[name] != name for name in targets)
    # Marking a node down re-routes its watcher to the next live
    # predecessor and nobody probes the corpse.
    promoted = cmap.promote("n2", by="n1")
    live_targets = {
        n.name: promoted.probe_target(n.name).name
        for n in promoted.live_nodes()
    }
    assert "n2" not in live_targets.values()
    order = node_order(["n1", "n2", "n3"])
    assert len(order) == 3
    # Single-node cluster: nothing to probe.
    solo = ClusterMap([NodeSpec("n1", "h:1")], replicas=1)
    assert solo.probe_target("n1") is None


# ----------------------------------------------------------------------
# The tentpole: kill the primary, the write still lands
# ----------------------------------------------------------------------
def test_write_failover_promotes_successor_without_forking(tmp_path):
    harness = ClusterHarness(str(tmp_path), nodes=3, replicas=2, **PROBE)
    cmap = harness.start()
    try:
        with ClusterClient(
            [n.address for n in cmap.nodes],
            write_retry_timeout=30.0,
            metrics=MetricsRegistry(),
        ) as client:
            tenant = "writer"
            v1 = make_tree(str(tmp_path / "v1"), seed=1)
            v2 = make_tree(str(tmp_path / "v2"), seed=2)
            repo = client.repo(tenant)
            repo.backup_tree(v1, tag="v1")
            old_primary = cmap.primary(tenant)
            # Replicate v1 to the successor, then kill the primary dead.
            client.remote(old_primary.address, tenant).cluster_sync(tenant)
            harness.kill_node(old_primary.name)

            # The headline: the very next backup succeeds with zero
            # operator action — detection, promotion, verify and the
            # client's map-refresh retry all happen inside this call.
            report = repo.backup_tree(v2, tag="v2")
            assert report["version_id"] == 2

            fresh = client.refresh()
            assert fresh.epoch > cmap.epoch
            assert old_primary.name in fresh.down_names()
            assert fresh.promotions, "promotion record missing from map"
            new_primary = fresh.primary(tenant)
            assert new_primary.name != old_primary.name

            # Zero torn/forked versions: the promoted primary holds both
            # versions and each restores byte-identical to its source.
            versions = client.remote(new_primary.address, tenant).versions()
            assert [v["version_id"] for v in versions] == [1, 2]
            assert restored_bytes(repo, 1) == tree_bytes(v1)
            assert restored_bytes(repo, 2) == tree_bytes(v2)

            counters = client.metrics.snapshot()["counters"]
            assert counters.get("cluster.write_retries", 0) >= 1
    finally:
        harness.stop()


def test_direct_write_to_non_primary_is_fenced(tmp_path):
    # The daemon-side half of fork prevention: a clustered daemon refuses
    # mutations for tenants it is not acting primary for, even from a
    # client that never consulted the map.
    with ClusterHarness(str(tmp_path), nodes=3, replicas=2) as cmap:
        tenant = "fenced"
        replica = cmap.successors(tenant)[0]
        wrong = RemoteRepository(replica.address, tenant)
        try:
            with pytest.raises(NotPrimaryError):
                wrong.backup_tree(make_tree(str(tmp_path / "src")))
        finally:
            wrong.close()
        # The fence refused before creating anything: no forked tenant
        # directory appears on the replica.
        assert not os.path.exists(os.path.join(replica.root, tenant))


def test_stale_epoch_rejoin_demotes_and_resyncs(tmp_path):
    from repro.server import DaemonThread

    harness = ClusterHarness(str(tmp_path), nodes=3, replicas=2, **PROBE)
    cmap = harness.start()
    rejoined = None
    try:
        with ClusterClient(
            [n.address for n in cmap.nodes], write_retry_timeout=30.0
        ) as client:
            tenant = "rejoin"
            v1 = make_tree(str(tmp_path / "v1"), seed=3)
            v2 = make_tree(str(tmp_path / "v2"), seed=4)
            repo = client.repo(tenant)
            repo.backup_tree(v1, tag="v1")
            old_primary = cmap.primary(tenant)
            client.remote(old_primary.address, tenant).cluster_sync(tenant)
            harness.kill_node(old_primary.name)
            repo.backup_tree(v2, tag="v2")  # failover write the node missed

            # Rejoin the dead node with its ORIGINAL (stale, epoch-1) map:
            # exactly what a crashed daemon restarting from its old spec
            # file does.  Its own first probe gossips the promoted map
            # back; it must adopt, demote, and pull v2 — never serve or
            # extend its forked-in-time epoch-1 view.
            host, _, port = old_primary.address.rpartition(":")
            rejoined = DaemonThread(
                old_primary.root,
                host=host,
                port=int(port),
                cluster_map=cmap,
                node_name=old_primary.name,
                metrics=MetricsRegistry(),
                **PROBE,
            )
            rejoined.start()

            def rejoined_caught_up():
                view = RemoteRepository(old_primary.address, tenant)
                try:
                    doc = view.cluster_map()
                    if (doc.get("map") or {}).get("epoch", 0) <= cmap.epoch:
                        return False  # still on the stale epoch
                    return len(view.versions()) == 2
                except (RemoteError, OSError):
                    return False
                finally:
                    view.close()

            wait_until(rejoined_caught_up, timeout=30.0)

            # Demoted: the rejoined node refuses writes for the tenant...
            direct = RemoteRepository(old_primary.address, tenant)
            try:
                with pytest.raises(NotPrimaryError):
                    direct.backup_tree(v1, tag="forker")
                # ...but its resynced replica is a faithful byte-level
                # mirror of the history it missed.
                versions = direct.versions()
                assert [v["version_id"] for v in versions] == [1, 2]
            finally:
                direct.close()
            assert restored_bytes(repo, 2) == tree_bytes(v2)
    finally:
        if rejoined is not None:
            rejoined.stop()
        harness.stop()


# ----------------------------------------------------------------------
# Router satellites: pool pruning, stale-map visibility, status detail
# ----------------------------------------------------------------------
def test_refresh_prunes_pools_for_departed_addresses(tmp_path):
    with ClusterHarness(str(tmp_path), nodes=3, replicas=2) as cmap:
        metrics = MetricsRegistry()
        with ClusterClient(
            [n.address for n in cmap.nodes], metrics=metrics
        ) as client:
            client.refresh()
            for node in cmap.nodes:
                client.pool_for(node.address)
            assert len(client._pools) == 3
            # A membership change ships a shrunken, epoch-bumped map; the
            # router adopts it (cache beats the daemons' older epoch) and
            # must drop the departed node's pool, not leak it forever.
            survivors = [n for n in cmap.nodes if n.name != "n3"]
            gone = cmap.node("n3").address
            client.seeds = [n.address for n in survivors]
            client.map = ClusterMap(
                survivors, epoch=cmap.epoch + 1, replicas=2, vnodes=cmap.vnodes
            )
            client.refresh()
            assert gone not in client._pools
            counters = metrics.snapshot()["counters"]
            assert counters.get("cluster.pools_pruned", 0) >= 1


def test_refresh_all_fail_reports_staleness(tmp_path):
    cmap = ClusterMap(
        [NodeSpec("n1", "127.0.0.1:1"), NodeSpec("n2", "127.0.0.1:2")],
        replicas=2,
    )
    metrics = MetricsRegistry()
    events = []

    class Capture:
        def log(self, event, **fields):
            events.append(event)

        def close(self):
            pass

    client = ClusterClient(
        [n.address for n in cmap.nodes],
        cluster_map=cmap,
        timeout=0.5,
        retries=1,
        backoff=0.0,
        event_log=Capture(),
        metrics=metrics,
    )
    try:
        # Nothing listens on those ports: every probe fails, the cached
        # map is returned, and the staleness is shouted, not swallowed.
        returned = client.refresh()
        assert returned is cmap
        assert client.map_stale is True
        assert "cluster_map_refresh_failed" in events
        counters = metrics.snapshot()["counters"]
        assert counters.get("cluster.map_refresh_errors", 0) == 1
        assert client.status()["stale"] is True
    finally:
        client.close()


def test_status_distinguishes_stats_failure_from_dead(tmp_path, monkeypatch):
    with ClusterHarness(str(tmp_path), nodes=2, replicas=2) as cmap:
        with ClusterClient([n.address for n in cmap.nodes]) as client:
            broken_port = int(cmap.nodes[0].address.rpartition(":")[2])

            original = RemoteRepository.server_stats

            def flaky_stats(self):
                if self.pool.address[1] == broken_port:
                    raise RemoteError("stats subsystem exploded")
                return original(self)

            monkeypatch.setattr(RemoteRepository, "server_stats", flaky_stats)
            doc = client.status()
            rows = {row["name"]: row for row in doc["nodes"]}
            degraded = rows[cmap.nodes[0].name]
            healthy = rows[cmap.nodes[1].name]
            # Map-reachable-but-stats-failed is alive + stats_error, a
            # different signal from DOWN.
            assert degraded["alive"] is True
            assert "stats subsystem exploded" in degraded["stats_error"]
            assert healthy["alive"] is True and "stats_error" not in healthy
            assert doc["stale"] is False


# ----------------------------------------------------------------------
# Automatic revive: a resynced rejoiner un-marks itself
# ----------------------------------------------------------------------
def test_resynced_rejoiner_revives_and_resumes_natural_primaryship(tmp_path):
    """The rejoin story must not end at 'demoted replica forever': once a
    rejoined node has pulled every hosted tenant back in sync AND
    deep-verified them, its own health loop mints an epoch-bumped map with
    the down marker cleared — so its natural primaryship resumes without
    an operator rebalance."""
    from repro.server import DaemonThread

    harness = ClusterHarness(str(tmp_path), nodes=3, replicas=2, **PROBE)
    cmap = harness.start()
    rejoined = None
    try:
        with ClusterClient(
            [n.address for n in cmap.nodes], write_retry_timeout=30.0
        ) as client:
            tenant = "reviver"
            v1 = make_tree(str(tmp_path / "v1"), seed=5)
            v2 = make_tree(str(tmp_path / "v2"), seed=6)
            v3 = make_tree(str(tmp_path / "v3"), seed=8)
            repo = client.repo(tenant)
            repo.backup_tree(v1, tag="v1")
            old_primary = cmap.primary(tenant)
            assert cmap.natural_primary(tenant).name == old_primary.name
            client.remote(old_primary.address, tenant).cluster_sync(tenant)
            harness.kill_node(old_primary.name)
            repo.backup_tree(v2, tag="v2")  # failover write the node missed
            promoted = client.refresh()
            assert old_primary.name in promoted.down_names()

            host, _, port = old_primary.address.rpartition(":")
            rejoined = DaemonThread(
                old_primary.root,
                host=host,
                port=int(port),
                cluster_map=cmap,  # the stale epoch-1 spec it crashed with
                node_name=old_primary.name,
                metrics=MetricsRegistry(),
                **PROBE,
            )
            rejoined.start()

            # No operator action from here on: demote -> resync ->
            # deep-verify -> self-revive, all inside the health loop.
            def revived():
                fresh = client.refresh()
                return (
                    fresh.epoch > promoted.epoch
                    and old_primary.name not in fresh.down_names()
                ) and fresh
            fresh = wait_until(revived, timeout=40.0)

            assert fresh.promotions[-1]["revived"] == old_primary.name
            assert fresh.promotions[-1]["by"] == old_primary.name
            # Natural primaryship is back: placement again leads with the
            # revived node, and a write through the router lands on it.
            assert fresh.primary(tenant).name == old_primary.name
            report = repo.backup_tree(v3, tag="v3")
            assert report["version_id"] == 3
            direct = RemoteRepository(old_primary.address, tenant)
            try:
                assert [v["version_id"] for v in direct.versions()] == [1, 2, 3]
            finally:
                direct.close()
            assert restored_bytes(repo, 2) == tree_bytes(v2)
            assert restored_bytes(repo, 3) == tree_bytes(v3)
            counters = rejoined.daemon.metrics.snapshot()["counters"]
            assert counters.get("cluster.revivals", 0) == 1
    finally:
        if rejoined is not None:
            rejoined.stop()
        harness.stop()
