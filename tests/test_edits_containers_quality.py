"""Tests for edit-script workloads, container analytics, docstring coverage."""

import inspect

import pytest

from repro.analysis import (
    active_population,
    archival_population,
    utilization_histogram,
)
from repro.core import HiDeStore
from repro.errors import WorkloadError
from repro.index import ExactFullIndex
from repro.metrics import exact_dedup_ratio
from repro.pipeline import GCDeletionManager
from repro.pipeline.system import BackupSystem
from repro.units import KiB
from repro.workloads import (
    EditScriptWorkload,
    delete,
    insert,
    modify,
    move,
    revive,
)


class TestEditOps:
    def test_modify_replaces_tokens(self):
        workload = EditScriptWorkload(initial_chunks=5)
        workload.add_version(modify(1, 2))
        v1, v2 = workload.token_versions()
        assert v1 == [0, 1, 2, 3, 4]
        assert v2[0] == 0 and v2[3:] == [3, 4]
        assert v2[1] >= 5 and v2[2] >= 5  # fresh tokens

    def test_insert_and_delete(self):
        workload = EditScriptWorkload(initial_chunks=4)
        workload.add_version(insert(2, 2))
        workload.add_version(delete(0, 3))
        v1, v2, v3 = workload.token_versions()
        assert len(v2) == 6
        assert v3 == v2[3:]

    def test_move_preserves_content(self):
        workload = EditScriptWorkload(initial_chunks=6)
        workload.add_version(move(0, 2, 4))
        v1, v2 = workload.token_versions()
        assert sorted(v1) == sorted(v2)
        assert v2 == [2, 3, 4, 5, 0, 1]

    def test_revive_brings_back_a_chunk(self):
        workload = EditScriptWorkload(initial_chunks=3)
        workload.add_version(delete(0, 1))  # token 0 disappears
        workload.add_version(revive(0, position=2))
        versions = workload.token_versions()
        assert 0 not in versions[1]
        assert 0 in versions[2]

    def test_out_of_range_operations_rejected(self):
        workload = EditScriptWorkload(initial_chunks=3)
        workload.add_version(modify(5, 1))
        with pytest.raises(WorkloadError):
            workload.token_versions()

    def test_emptying_a_version_rejected(self):
        workload = EditScriptWorkload(initial_chunks=2)
        workload.add_version(delete(0, 2))
        with pytest.raises(WorkloadError):
            workload.token_versions()

    def test_streams_and_tags(self):
        workload = EditScriptWorkload(initial_chunks=3)
        workload.add_version(modify(0), tag="patch-1")
        streams = workload.all_versions()
        assert streams[0].tag == "edit-v1"
        assert streams[1].tag == "patch-1"
        assert len(streams[1]) == 3


class TestEditScriptsDriveSystems:
    def test_precise_dedup_accounting(self):
        """3 modified + 2 inserted chunks -> exactly 5 unique in v2."""
        workload = EditScriptWorkload(initial_chunks=50, mean_chunk_size=2 * KiB)
        workload.add_version(modify(10, 3), insert(0, 2))
        system = HiDeStore(container_size=64 * KiB)
        reports = [system.backup(s) for s in workload.versions()]
        assert reports[1].unique_chunks == 5
        assert reports[1].duplicate_chunks == 50 - 3

    def test_history_depth_with_surgical_revive(self):
        """A chunk absent exactly one version needs depth 2 to deduplicate."""
        base = EditScriptWorkload(initial_chunks=30, mean_chunk_size=2 * KiB)
        base.add_version(delete(0, 1))
        base.add_version(revive(0))

        def run(depth):
            system = HiDeStore(container_size=64 * KiB, history_depth=depth)
            for stream in base.versions():
                system.backup(stream)
            return system

        shallow, deep = run(1), run(2)
        assert deep.dedup_ratio > shallow.dedup_ratio
        assert abs(deep.dedup_ratio - exact_dedup_ratio(base.versions())) < 1e-12


class TestContainerAnalytics:
    def _hidestore(self, small_workload):
        system = HiDeStore(container_size=64 * KiB)
        for stream in small_workload.versions():
            system.backup(stream)
        return system

    def test_active_pool_is_dense(self, small_workload):
        system = self._hidestore(small_workload)
        active = active_population(system)
        assert active.count == system.pool.container_count()
        assert active.mean_utilization > 0.6
        assert active.dead_bytes == 0  # every hot chunk is referenced

    def test_archival_population_fully_live_in_hidestore(self, small_workload):
        system = self._hidestore(small_workload)
        archival = archival_population(system)
        assert archival.count == len(system.containers)
        assert archival.dead_fraction == 0.0  # cold sets are per-version

    def test_traditional_accumulates_dead_space_after_deletions(self, small_workload):
        system = BackupSystem(ExactFullIndex(), container_size=64 * KiB)
        for stream in small_workload.versions():
            system.backup(stream)
        # Delete without copy GC: dead bytes stay behind.
        gc = GCDeletionManager(system, utilization_threshold=0.0)
        gc.delete_version(1)
        gc.delete_version(2)
        population = archival_population(system)
        assert population.dead_bytes > 0
        assert 0.0 < population.dead_fraction < 1.0

    def test_histogram_buckets(self, small_workload):
        system = self._hidestore(small_workload)
        histogram = utilization_histogram(archival_population(system), buckets=4)
        assert len(histogram) == 4
        assert sum(histogram.values()) == len(system.containers)

    def test_histogram_validation(self):
        from repro.analysis import ContainerPopulation

        with pytest.raises(ValueError):
            utilization_histogram(ContainerPopulation(), buckets=0)


class TestParallelMatrix:
    def test_jobs_parallel_equals_serial(self):
        from repro.experiments import run_matrix

        kwargs = dict(versions=4, chunks_per_version=150, container_size=64 * KiB)
        serial = run_matrix({"exact": {}}, ["kernel", "gcc"], **kwargs)
        parallel = run_matrix({"exact": {}}, ["kernel", "gcc"], jobs=2, **kwargs)
        key = lambda r: (r["scheme"], r["workload"])
        for a, b in zip(sorted(serial, key=key), sorted(parallel, key=key)):
            assert a["dedup_ratio"] == b["dedup_ratio"]
            assert a["speed_factor_last"] == b["speed_factor_last"]


class TestDocstringCoverage:
    """Every public module, class and function carries a docstring."""

    def _public_objects(self):
        import pkgutil

        import repro

        for module_info in pkgutil.walk_packages(repro.__path__, "repro."):
            module = __import__(module_info.name, fromlist=["_"])
            yield module_info.name, module
            for name, obj in vars(module).items():
                if name.startswith("_"):
                    continue
                if getattr(obj, "__module__", None) != module_info.name:
                    continue
                if inspect.isclass(obj) or inspect.isfunction(obj):
                    yield f"{module_info.name}.{name}", obj

    def test_all_public_objects_documented(self):
        undocumented = [
            name
            for name, obj in self._public_objects()
            if not (obj.__doc__ or "").strip()
        ]
        assert undocumented == []
