"""Integration tests for the backup daemon + remote client + CLI wiring.

Every test runs a real :class:`BackupDaemon` on a background event-loop
thread (port 0 → a free port), with real sockets and the real engine
underneath — these are the acceptance tests for the networked service:
byte-identical restores, local/remote equivalence, multi-tenant
concurrency, writer-lock serialisation and crash rollback.
"""

import os
import socket
import threading
import time

import pytest

from repro.client import ConnectionPool, RemoteRepository
from repro.client.protocol import FrameType, encode_json
from repro.client.remote import Connection, parse_address
from repro.errors import (
    ProtocolError,
    RemoteError,
    ReproError,
    ServerDrainingError,
    StorageError,
    TimeoutExceededError,
    VersionNotFoundError,
)
from repro.repository import LocalRepository, materialize, read_tree
from repro.server import DaemonThread


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------
@pytest.fixture
def daemon(tmp_path):
    thread = DaemonThread(str(tmp_path / "served"))
    address = thread.start()
    yield thread, address
    thread.stop(drain_timeout=5)


def make_tree(base, files):
    """Write {relative name: bytes} under ``base``; returns read_tree rows."""
    os.makedirs(base, exist_ok=True)
    for rel, payload in files.items():
        path = os.path.join(base, rel)
        os.makedirs(os.path.dirname(path) or base, exist_ok=True)
        with open(path, "wb") as handle:
            handle.write(payload)
    return read_tree(base)


def tree_bytes(base):
    return {rel: open(path, "rb").read() for rel, path in read_tree(base)}


def synthetic_files(seed, count=4, size=40_000):
    """Deterministic pseudo-random file contents (FastCDC needs entropy
    to place cut points; repetitive data degenerates to max-size chunks)."""
    import random

    rng = random.Random(seed)
    return {
        f"dir{i % 2}/file{i}.bin": rng.randbytes(size) for i in range(count)
    }


# ----------------------------------------------------------------------
# Round trips
# ----------------------------------------------------------------------
class TestRoundTrip:
    def test_backup_restore_byte_identical(self, daemon, tmp_path):
        _, address = daemon
        entries = make_tree(str(tmp_path / "src"), synthetic_files(1))
        with RemoteRepository(address, "alpha") as repo:
            report = repo.backup_tree(entries, tag="nightly")
            assert report["version_id"] == 1
            assert report["tag"] == "nightly"
            plan, data = repo.restore(1)
            restored = materialize(plan, data, str(tmp_path / "out"))
        assert restored == len(entries)
        assert tree_bytes(str(tmp_path / "out")) == tree_bytes(str(tmp_path / "src"))

    def test_incremental_versions_deduplicate(self, daemon, tmp_path):
        _, address = daemon
        files = synthetic_files(2)
        make_tree(str(tmp_path / "src"), files)
        with RemoteRepository(address, "alpha") as repo:
            repo.backup_tree(read_tree(str(tmp_path / "src")), tag="v1")
            files["dir0/file0.bin"] += b"fresh tail data" * 100
            entries = make_tree(str(tmp_path / "src"), files)
            report = repo.backup_tree(entries, tag="v2")
            assert report["duplicate_chunks"] > 0
            rows = repo.versions()
            assert [r["version_id"] for r in rows] == [1, 2]
            assert rows[1]["tag"] == "v2"
            plan, data = repo.restore(2)
            materialize(plan, data, str(tmp_path / "out"))
        assert tree_bytes(str(tmp_path / "out")) == files

    def test_remote_matches_local_engine(self, daemon, tmp_path):
        """The same stream through the wire and through the local engine
        must produce identical dedup decisions and restored bytes."""
        _, address = daemon
        trees = [synthetic_files(3), synthetic_files(3)]
        trees[1]["dir1/file3.bin"] += b"divergence" * 500
        local = LocalRepository(str(tmp_path / "local"))
        reports_local, reports_remote = [], []
        with RemoteRepository(address, "alpha") as repo:
            for i, files in enumerate(trees):
                entries = make_tree(str(tmp_path / f"src{i}"), files)
                reports_local.append(local.backup_tree(entries, tag=f"v{i}"))
                reports_remote.append(repo.backup_tree(entries, tag=f"v{i}"))
            assert reports_remote == reports_local
            plan, data = repo.restore(2)
            materialize(plan, data, str(tmp_path / "out_remote"))
        plan, data = local.restore(2)
        materialize(plan, data, str(tmp_path / "out_local"))
        assert tree_bytes(str(tmp_path / "out_remote")) == tree_bytes(
            str(tmp_path / "out_local")
        )

    def test_delete_oldest_and_stats(self, daemon, tmp_path):
        _, address = daemon
        files = synthetic_files(4)
        with RemoteRepository(address, "alpha") as repo:
            for i in range(2):
                files["dir0/file0.bin"] += bytes([i]) * 5000
                entries = make_tree(str(tmp_path / "src"), files)
                repo.backup_tree(entries, tag=f"v{i}")
            result = repo.delete_oldest()
            assert result["version_id"] == 1
            stats = repo.stats()
            assert stats["versions"] == 1
            assert stats["repo"] == "alpha"
            assert stats["counters"]["backups"] == 2
            assert stats["counters"]["deletes"] == 1
            doc = repo.server_stats()
            assert "alpha" in doc["repos"]
            assert doc["server"]["draining"] is False


# ----------------------------------------------------------------------
# Concurrency (the ISSUE acceptance scenario)
# ----------------------------------------------------------------------
class TestConcurrency:
    def test_four_tenants_concurrently(self, daemon, tmp_path):
        """4 clients backing up different repos concurrently, then restoring;
        every restore is byte-identical to a local-engine run of the same data."""
        _, address = daemon
        failures = []

        def client(idx):
            try:
                files = synthetic_files(idx + 10)
                entries = make_tree(str(tmp_path / f"src{idx}"), files)
                with RemoteRepository(address, f"tenant{idx}") as repo:
                    report = repo.backup_tree(entries, tag=f"t{idx}")
                    plan, data = repo.restore(report["version_id"])
                    materialize(plan, data, str(tmp_path / f"out{idx}"))
                local = LocalRepository(str(tmp_path / f"local{idx}"))
                local_report = local.backup_tree(entries, tag=f"t{idx}")
                assert report == local_report
                assert tree_bytes(str(tmp_path / f"out{idx}")) == files
            except BaseException as exc:  # noqa: BLE001 - collected for the assert
                failures.append((idx, exc))

        threads = [threading.Thread(target=client, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert failures == []

    def test_same_repo_writers_serialised(self, daemon, tmp_path):
        """2 clients racing the same repo: the writer lock serialises them —
        both succeed, versions 1 and 2 exist, each restore is intact."""
        _, address = daemon
        failures = []
        sources = {}
        for idx in range(2):
            files = synthetic_files(idx + 20)
            sources[idx] = (files, make_tree(str(tmp_path / f"src{idx}"), files))

        def client(idx):
            try:
                with RemoteRepository(address, "shared") as repo:
                    report = repo.backup_tree(sources[idx][1], tag=f"racer{idx}")
                    sources[idx] = (*sources[idx], report["version_id"])
            except BaseException as exc:  # noqa: BLE001
                failures.append((idx, exc))

        threads = [threading.Thread(target=client, args=(i,)) for i in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert failures == []
        with RemoteRepository(address, "shared") as repo:
            rows = repo.versions()
            assert [r["version_id"] for r in rows] == [1, 2]
            for idx in range(2):
                files, _entries, version = sources[idx]
                plan, data = repo.restore(version)
                out = str(tmp_path / f"rout{idx}")
                materialize(plan, data, out)
                assert tree_bytes(out) == files

    def test_concurrent_restores_same_repo(self, daemon, tmp_path):
        _, address = daemon
        files = synthetic_files(5)
        entries = make_tree(str(tmp_path / "src"), files)
        with RemoteRepository(address, "alpha") as repo:
            repo.backup_tree(entries, tag="v1")
        failures = []

        def reader(idx):
            try:
                with RemoteRepository(address, "alpha") as repo:
                    plan, data = repo.restore(1)
                    out = str(tmp_path / f"out{idx}")
                    materialize(plan, data, out)
                    assert tree_bytes(out) == files
            except BaseException as exc:  # noqa: BLE001
                failures.append((idx, exc))

        threads = [threading.Thread(target=reader, args=(i,)) for i in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert failures == []


# ----------------------------------------------------------------------
# Relative-name safety (path traversal + manifest corruption)
# ----------------------------------------------------------------------
class TestRelNameSafety:
    """Plans from the wire (or tampered manifests) must not escape the
    restore target or corrupt the tab-separated manifest encoding."""

    EVIL = [
        "../../escape.bin",
        "/etc/passwd",
        "a/../../b",
        "evil\nname",
        "tab\tname",
        "c\\..\\up",
        "",
    ]

    def test_materialize_rejects_traversal(self, tmp_path):
        target = str(tmp_path / "nest" / "out")
        for rel in self.EVIL:
            with pytest.raises(ReproError):
                materialize([(rel, 4)], iter([b"data"]), target)
        written = [
            os.path.join(root, name)
            for root, _dirs, names in os.walk(str(tmp_path))
            for name in names
        ]
        assert written == []  # nothing landed anywhere, in or out of target

    def test_local_backup_rejects_unsafe_plan(self, tmp_path):
        repo = LocalRepository(str(tmp_path / "repo"))
        for rel in self.EVIL:
            with pytest.raises(ReproError):
                repo.backup_blocks(iter([b"x" * 4]), [(rel, 4)])
        assert repo.versions() == []

    def test_daemon_rejects_unsafe_plan_at_ingest(self, daemon, tmp_path):
        _, address = daemon
        entries = make_tree(str(tmp_path / "src"), {"ok.bin": b"k" * 100})
        with RemoteRepository(address, "alpha") as repo:
            repo.backup_tree(entries, tag="good")
            for rel in self.EVIL:
                with pytest.raises(ReproError):
                    repo.backup_blocks(iter([b"payload"]), [(rel, 7)], tag="evil")
            # None of the rejected attempts became a version.
            assert [r["version_id"] for r in repo.versions()] == [1]


# ----------------------------------------------------------------------
# Failure semantics
# ----------------------------------------------------------------------
class TestFailureSemantics:
    def test_errors_cross_the_wire_typed(self, daemon, tmp_path):
        _, address = daemon
        entries = make_tree(str(tmp_path / "src"), synthetic_files(6))
        with RemoteRepository(address, "alpha") as repo:
            repo.backup_tree(entries, tag="v1")
            with pytest.raises(VersionNotFoundError):
                repo.restore(99)
        with RemoteRepository(address, "nonexistent") as repo:
            with pytest.raises(RemoteError):
                repo.versions()
        with RemoteRepository(address, "..") as repo:
            with pytest.raises(RemoteError):
                repo.backup_tree(entries)

    def test_client_abort_mid_backup_rolls_back(self, daemon, tmp_path):
        """A client that dies mid-stream leaves no version, no manifest, no
        tmp litter — and the repository still accepts the next backup."""
        thread, address = daemon
        files = synthetic_files(7, count=2, size=400_000)
        entries = make_tree(str(tmp_path / "src"), files)

        class Dies(Exception):
            pass

        def poisoned_blocks():
            yield open(entries[0][1], "rb").read(65536)
            raise Dies()

        plan = [(rel, os.path.getsize(path)) for rel, path in entries]
        with RemoteRepository(address, "alpha") as repo:
            with pytest.raises((Dies, ReproError, OSError)):
                repo.backup_blocks(poisoned_blocks(), plan, tag="doomed")
            # The server rolled back: no version is visible.
            assert repo.versions() == []
            report = repo.backup_tree(entries, tag="clean")
            assert report["version_id"] == 1
        repo_dir = os.path.join(thread.daemon.registry.root, "alpha")
        litter = [
            name
            for _root, _dirs, names in os.walk(repo_dir)
            for name in names
            if name.endswith(".tmp")
        ]
        assert litter == []

    def test_kill_mid_backup_leaves_no_partial_version(self, tmp_path):
        """Killing the server mid-backup (zero-drain shutdown) rolls the
        repository back; a fresh daemon over the same root sees no partial
        version, no tmp files, and serves new backups."""
        root = str(tmp_path / "served")
        files = synthetic_files(8, count=2, size=300_000)
        entries = make_tree(str(tmp_path / "src"), files)
        plan = [(rel, os.path.getsize(path)) for rel, path in entries]
        thread = DaemonThread(root)
        address = thread.start()
        started = threading.Event()

        def stalled_blocks():
            yield open(entries[0][1], "rb").read(65536)
            started.set()
            yield open(entries[0][1], "rb").read()
            threading.Event().wait(30)  # stall until the kill severs us

        outcome = {}

        def victim():
            try:
                with RemoteRepository(address, "alpha", timeout=40) as repo:
                    outcome["report"] = repo.backup_blocks(stalled_blocks(), plan, "doomed")
            except BaseException as exc:  # noqa: BLE001 - expected to die
                outcome["error"] = exc

        worker = threading.Thread(target=victim, daemon=True)
        worker.start()
        assert started.wait(timeout=30)
        thread.kill()  # SIGTERM with no drain patience
        worker.join(timeout=30)
        assert "report" not in outcome  # the backup must NOT have completed

        repo_dir = os.path.join(root, "alpha")
        litter = [
            name
            for _root, _dirs, names in os.walk(repo_dir)
            for name in names
            if name.endswith(".tmp")
        ]
        assert litter == []
        # Restart over the same root: the partial version is invisible and
        # the repository takes a clean backup as version 1.
        thread2 = DaemonThread(root)
        address2 = thread2.start()
        try:
            with RemoteRepository(address2, "alpha") as repo:
                assert repo.versions() == []
                report = repo.backup_tree(entries, tag="recovered")
                assert report["version_id"] == 1
                plan2, data = repo.restore(1)
                materialize(plan2, data, str(tmp_path / "out"))
            assert tree_bytes(str(tmp_path / "out")) == files
        finally:
            thread2.stop(drain_timeout=5)

    def test_engine_failure_reaches_stalled_client(self, daemon, tmp_path):
        """An engine failure must surface as a typed ERROR frame right away,
        even while the client is blocked waiting for credit — not swallowed
        until the client times out."""
        thread, address = daemon
        handle = thread.daemon.registry.get("alpha", create=True)

        def exploding(blocks, plan, tag=""):
            raise StorageError("simulated disk full")

        handle.repository.backup_blocks = exploding
        blocks = (b"x" * 4096 for _ in range(5000))
        plan = [("file.bin", 4096 * 5000)]
        start = time.monotonic()
        with RemoteRepository(address, "alpha", timeout=60) as repo:
            with pytest.raises(ReproError) as info:
                repo.backup_blocks(blocks, plan, tag="doomed")
        assert not isinstance(info.value, TimeoutExceededError)
        assert time.monotonic() - start < 20  # old behavior: full 60s stall

    def test_draining_server_refuses_new_backups(self, daemon, tmp_path):
        thread, address = daemon
        entries = make_tree(str(tmp_path / "src"), synthetic_files(9, count=1))
        thread.daemon.draining = True
        try:
            with RemoteRepository(address, "alpha") as repo:
                with pytest.raises(ServerDrainingError):
                    repo.backup_tree(entries, tag="late")
        finally:
            thread.daemon.draining = False


# ----------------------------------------------------------------------
# Transport details
# ----------------------------------------------------------------------
class TestTransport:
    def test_parse_address(self):
        assert parse_address("127.0.0.1:7777") == ("127.0.0.1", 7777)
        assert parse_address("[::1]:7777") == ("::1", 7777)
        assert parse_address(("host", 9)) == ("host", 9)
        assert parse_address(("host", "8080")) == ("host", 8080)
        with pytest.raises(ProtocolError):
            parse_address("no-port")
        with pytest.raises(ProtocolError):
            parse_address("host:abc")
        with pytest.raises(ProtocolError):
            parse_address(("host", "notaport"))
        with pytest.raises(ProtocolError):
            parse_address(("host", 70000))
        with pytest.raises(ProtocolError):
            parse_address(("", 80))

    def test_foreign_client_rejected(self, daemon):
        _, address = daemon
        with socket.create_connection(parse_address(address), timeout=5) as sock:
            sock.sendall(b"GET / HTTP/1.1\r\nHost: x\r\n\r\n")
            sock.settimeout(5)
            reply = sock.recv(65536)
        # Whatever bytes come back, they are not a HELLO_OK handshake.
        assert not reply or reply[4:5] != bytes([int(FrameType.HELLO_OK)])

    def test_unexpected_frame_between_requests(self, daemon):
        _, address = daemon
        conn = Connection(parse_address(address), timeout=5)
        try:
            conn.send(encode_json(FrameType.CREDIT, {"frames": 3}))
            with pytest.raises(ProtocolError):
                ftype, payload = conn.recv_frame()
                if ftype == FrameType.ERROR:
                    from repro.client.protocol import raise_remote_error

                    raise_remote_error(payload)
        finally:
            conn.close()

    def test_connection_pool_reuses_and_discards(self, daemon):
        _, address = daemon
        pool = ConnectionPool(parse_address(address), timeout=5, size=1)
        conn = pool.acquire()
        pool.release(conn)
        assert pool.acquire() is conn  # reused while healthy
        conn.broken = True
        pool.release(conn)
        conn2 = pool.acquire()
        assert conn2 is not conn  # broken connections never resurface
        conn2.close()
        pool.close()

    def test_retries_reach_a_late_server(self, tmp_path):
        """Idempotent requests retry with backoff until the daemon answers."""
        thread = DaemonThread(str(tmp_path / "served"))
        address = thread.start()
        host, port = parse_address(address)
        thread.stop(drain_timeout=0)  # daemon gone; port free again

        repo = RemoteRepository((host, port), "alpha", timeout=2, retries=4, backoff=0.3)
        late = {}

        def start_late():
            late["thread"] = DaemonThread(str(tmp_path / "served"), port=port)
            late["thread"].start()

        starter = threading.Timer(0.5, start_late)
        starter.start()
        try:
            doc = repo.server_stats()
            assert "repos" in doc
        finally:
            starter.join()
            repo.close()
            if "thread" in late:
                late["thread"].stop(drain_timeout=0)


# ----------------------------------------------------------------------
# The pooled-connection credit race (regression)
# ----------------------------------------------------------------------
class _StaleCreditServer:
    """A scripted protocol speaker that writes a CREDIT *after* BACKUP_DONE.

    Deterministically reproduces the race the real daemon used to have: a
    ``note_consumed`` callback landing after the completion frame.  The
    stale CREDIT arrives in the same TCP segment as BACKUP_DONE, so it is
    guaranteed to sit in the client connection's frame buffer when
    ``backup_blocks`` returns — exactly the state that used to poison the
    next pooled request.
    """

    def __init__(self):
        import socket as socket_mod

        self._listener = socket_mod.socket()
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(4)
        host, port = self._listener.getsockname()
        self.address = f"{host}:{port}"
        self._running = True
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def close(self):
        self._running = False
        self._listener.close()
        self._thread.join(timeout=5)

    def _serve(self):
        while self._running:
            try:
                sock, _peer = self._listener.accept()
            except OSError:
                return
            threading.Thread(
                target=self._handle, args=(sock,), daemon=True
            ).start()

    def _handle(self, sock):
        from repro.client.protocol import (
            MAGIC,
            PROTOCOL_VERSION,
            FrameDecoder,
            encode_json,
        )

        decoder = FrameDecoder()
        frames = []

        def next_frame():
            while not frames:
                data = sock.recv(65536)
                if not data:
                    raise ConnectionError("client hung up")
                frames.extend(decoder.feed(data))
            return frames.pop(0)

        try:
            ftype, _payload = next_frame()
            assert ftype == FrameType.HELLO
            sock.sendall(
                encode_json(
                    FrameType.HELLO_OK,
                    {"magic": MAGIC, "version": PROTOCOL_VERSION, "window": 64},
                )
            )
            while True:
                ftype, _payload = next_frame()
                if ftype == FrameType.BACKUP_BEGIN:
                    sock.sendall(encode_json(FrameType.CREDIT, {"frames": 64}))
                    chunks = 0
                    while True:
                        ftype, _payload = next_frame()
                        if ftype == FrameType.BACKUP_END:
                            break
                        assert ftype == FrameType.CHUNK_DATA
                        chunks += 1
                    report = {
                        "version_id": 1, "tag": "", "total_chunks": chunks,
                        "unique_chunks": chunks, "duplicate_chunks": 0,
                        "logical_bytes": 0, "stored_bytes": 0,
                    }
                    # The race, made deterministic: DONE then a stale CREDIT
                    # in one segment.
                    sock.sendall(
                        encode_json(FrameType.BACKUP_DONE, report)
                        + encode_json(FrameType.CREDIT, {"frames": 1})
                    )
                elif ftype == FrameType.STATS:
                    sock.sendall(
                        encode_json(FrameType.STATS_OK, {"versions": 1})
                    )
                else:
                    return
        except (ConnectionError, OSError, AssertionError):
            pass
        finally:
            sock.close()


class TestCreditRace:
    def test_stale_credit_does_not_poison_the_pool(self, tmp_path):
        """Regression: a CREDIT buffered behind BACKUP_DONE must not be
        replayed into the next pooled request (pre-fix this fails with
        ``ProtocolError: expected STATS_OK, got CREDIT``)."""
        server = _StaleCreditServer()
        try:
            # retries=1: a poisoned connection surfaces instead of being
            # papered over by the idempotent-retry machinery.
            with RemoteRepository(server.address, "alpha", retries=1) as repo:
                payload = os.urandom(50_000)
                report = repo.backup_blocks(
                    iter([payload]), [("f.bin", len(payload))]
                )
                assert report["version_id"] == 1
                stats = repo.stats()  # pre-fix: ProtocolError here
                assert stats["versions"] == 1
        finally:
            server.close()

    def test_backup_stats_backup_on_pooled_connection(self, tmp_path):
        """The ISSUE's failing sequence against the real daemon: one pooled
        RemoteRepository, small credit window, no retries to hide races."""
        thread = DaemonThread(str(tmp_path / "served"), window=2)
        address = thread.start()
        try:
            with RemoteRepository(address, "alpha", retries=1) as repo:
                for round_no in range(3):
                    files = synthetic_files(20 + round_no, count=2, size=120_000)
                    entries = make_tree(str(tmp_path / f"src{round_no}"), files)
                    report = repo.backup_tree(entries, tag=f"v{round_no}")
                    assert report["version_id"] == round_no + 1
                    assert repo.stats()["versions"] == round_no + 1
                    assert len(repo.versions()) == round_no + 1
        finally:
            thread.stop(drain_timeout=5)

    def test_daemon_sends_nothing_after_backup_done(self, tmp_path):
        """Server-side half of the fix: once BACKUP_END is received the
        daemon must stop granting credit, so nothing trails BACKUP_DONE."""
        from repro.client.protocol import decode_json, encode_data, encode_frame

        thread = DaemonThread(str(tmp_path / "served"), window=2)
        address = thread.start()
        conn = None
        try:
            conn = Connection(parse_address(address), timeout=5)
            payload = os.urandom(150_000)
            conn.send(
                encode_json(
                    FrameType.BACKUP_BEGIN,
                    {"repo": "t", "tag": "", "files": [["f.bin", len(payload)]]},
                )
            )
            credits = 0
            for start in range(0, len(payload), 8192):
                while credits <= 0:
                    ftype, p = conn.recv_frame()
                    assert ftype == FrameType.CREDIT
                    credits += decode_json(p)["frames"]
                conn.send(encode_data(payload[start : start + 8192]))
                credits -= 1
            conn.send(encode_frame(FrameType.BACKUP_END))
            while True:
                ftype, _p = conn.recv_frame()
                if ftype == FrameType.CREDIT:
                    continue
                assert ftype == FrameType.BACKUP_DONE
                break
            time.sleep(0.3)  # let any straggler loop callbacks run
            conn.sweep()
            assert not conn.has_buffered()
        finally:
            if conn is not None:
                conn.close()
            thread.stop(drain_timeout=5)


# ----------------------------------------------------------------------
# Daemon startup failures (regression)
# ----------------------------------------------------------------------
class TestDaemonStartup:
    def test_occupied_port_raises_promptly(self, tmp_path):
        """Pre-fix: the startup exception died on the daemon thread and
        callers hung for the full 10 s readiness timeout."""
        blocker = socket.socket()
        try:
            blocker.bind(("127.0.0.1", 0))
            blocker.listen(1)
            port = blocker.getsockname()[1]
            thread = DaemonThread(str(tmp_path / "served"), port=port)
            started = time.monotonic()
            with pytest.raises(OSError):
                thread.start()
            assert time.monotonic() - started < 5
            thread.stop()  # must be a safe no-op after a failed start
        finally:
            blocker.close()


# ----------------------------------------------------------------------
# CLI wiring (--remote)
# ----------------------------------------------------------------------
class TestRemoteCLI:
    def test_remote_flags_share_the_local_code_path(self, daemon, tmp_path, capsys):
        from repro.cli import main

        _, address = daemon
        files = synthetic_files(11)
        make_tree(str(tmp_path / "src"), files)
        src = str(tmp_path / "src")
        out = str(tmp_path / "out")

        assert main(["backup", "cli-tenant", src, "--tag", "nightly",
                     "--remote", address]) == 0
        assert "backed up version 1" in capsys.readouterr().out
        assert main(["versions", "cli-tenant", "--remote", address]) == 0
        assert "nightly" in capsys.readouterr().out
        assert main(["restore", "cli-tenant", "1", out, "--remote", address]) == 0
        assert "restored version 1" in capsys.readouterr().out
        assert tree_bytes(out) == files
        assert main(["stats", "cli-tenant", "--remote", address]) == 0
        captured = capsys.readouterr().out
        assert "dedup ratio" in captured
        assert "service counters" in captured
        # Unknown version + unknown tenant surface as CLI errors, not crashes.
        assert main(["restore", "cli-tenant", "9", out, "--remote", address]) == 1
        assert main(["versions", "ghost", "--remote", address]) == 1

    def test_local_only_flags_rejected_with_remote(self, daemon, tmp_path, capsys):
        """Engine knobs (--workers/--pipeline/--compress/--history-depth)
        error out with --remote instead of being silently ignored."""
        from repro.cli import main

        _, address = daemon
        make_tree(str(tmp_path / "src"), {"f.bin": b"x" * 10})
        src = str(tmp_path / "src")
        assert main(["backup", "t", src, "--workers", "4",
                     "--remote", address]) == 1
        assert "--workers" in capsys.readouterr().err
        assert main(["backup", "t", src, "--pipeline", "--compress",
                     "--remote", address]) == 1
        err = capsys.readouterr().err
        assert "--pipeline" in err and "--compress" in err
        assert main(["backup", "t", src, "--history-depth", "3",
                     "--remote", address]) == 1
        assert "--history-depth" in capsys.readouterr().err


# ----------------------------------------------------------------------
# The shared multiprocess ingest plane behind the daemon
# ----------------------------------------------------------------------
class TestIngestPlane:
    """Daemon-level acceptance for the shared chunking pool: any worker
    count (and executor kind) must be byte-identical to serial ingest,
    killed workers must respawn transparently, and a pool that exhausts
    its retry budget must roll the partial version back."""

    @pytest.mark.parametrize(
        "workers,executor", [(1, "process"), (4, "process"), (2, "thread")]
    )
    def test_pooled_daemon_matches_serial(self, workers, executor, tmp_path):
        trees = [synthetic_files(31, count=3, size=120_000)]
        trees.append(dict(trees[0], **synthetic_files(32, count=1, size=120_000)))

        def run(label, **daemon_kwargs):
            thread = DaemonThread(str(tmp_path / label), **daemon_kwargs)
            address = thread.start()
            try:
                reports, restored = [], []
                with RemoteRepository(address, "alpha") as repo:
                    for i, files in enumerate(trees):
                        entries = make_tree(str(tmp_path / f"src-{label}-{i}"), files)
                        reports.append(repo.backup_tree(entries, tag=f"v{i}"))
                        plan, data = repo.restore(i + 1)
                        out = str(tmp_path / f"out-{label}-{i}")
                        materialize(plan, data, out)
                        restored.append(tree_bytes(out))
                return reports, restored
            finally:
                thread.stop(drain_timeout=5)

        serial = run("serial")
        pooled = run(
            f"pool-{executor}{workers}",
            ingest_workers=workers,
            ingest_executor=executor,
        )
        assert pooled == serial
        assert serial[0][1]["duplicate_chunks"] > 0  # versions actually overlap

    def test_killed_workers_respawn_and_backup_succeeds(self, tmp_path):
        thread = DaemonThread(str(tmp_path / "served"), ingest_workers=2)
        address = thread.start()
        try:
            pids = thread.daemon.ingest_pool.worker_pids()
            assert pids  # start() warmed the pool
            for pid in pids:
                os.kill(pid, 9)
            entries = make_tree(str(tmp_path / "src"), synthetic_files(33))
            with RemoteRepository(address, "alpha") as repo:
                report = repo.backup_tree(entries, tag="survivor")
                assert report["version_id"] == 1
                plan, data = repo.restore(1)
                materialize(plan, data, str(tmp_path / "out"))
            assert tree_bytes(str(tmp_path / "out")) == tree_bytes(str(tmp_path / "src"))
            counters = thread.daemon.metrics.snapshot()["counters"]
            assert counters.get("ingest.worker_respawns", 0) >= 1
        finally:
            thread.stop(drain_timeout=5)

    def test_pool_exhaustion_rolls_back_partial_version(self, tmp_path):
        thread = DaemonThread(str(tmp_path / "served"), ingest_workers=2)
        address = thread.start()
        try:
            thread.daemon.ingest_pool.max_retries = 0
            for pid in thread.daemon.ingest_pool.worker_pids():
                os.kill(pid, 9)
            entries = make_tree(str(tmp_path / "src"), synthetic_files(34))
            with RemoteRepository(address, "alpha") as repo:
                with pytest.raises(ReproError, match="ingest|pool"):
                    repo.backup_tree(entries, tag="doomed")
                # Rollback guard: the partial version must not exist.
                assert repo.versions() == []
                # The pool rebuilt itself, so the next backup succeeds.
                report = repo.backup_tree(entries, tag="recovered")
                assert report["version_id"] == 1
                plan, data = repo.restore(1)
                materialize(plan, data, str(tmp_path / "out"))
            assert tree_bytes(str(tmp_path / "out")) == tree_bytes(str(tmp_path / "src"))
        finally:
            thread.stop(drain_timeout=5)


# ----------------------------------------------------------------------
# Request-level retry budgets
# ----------------------------------------------------------------------
class TestRetryBudget:
    def test_budget_exhaustion_raises_typed_error_and_counts(self):
        from repro.errors import RetryBudgetExceededError
        from repro.observability import MetricsRegistry

        with socket.socket() as probe:  # a port nobody is listening on
            probe.bind(("127.0.0.1", 0))
            host, port = probe.getsockname()

        metrics = MetricsRegistry()
        repo = RemoteRepository(
            (host, port), "alpha", timeout=1, retries=20, backoff=0.2,
            retry_budget_seconds=0.5, metrics=metrics,
        )
        started = time.monotonic()
        try:
            with pytest.raises(RetryBudgetExceededError) as info:
                repo.server_stats()
        finally:
            repo.close()
        # The budget, not the 20 attempts, ended the operation — quickly.
        assert time.monotonic() - started < 5
        assert isinstance(info.value, RemoteError)  # wire-taxonomy compatible
        counters = metrics.snapshot()["counters"]
        assert counters["client.retry_budget_exhausted"] == 1

    def test_attempts_still_bound_without_a_budget(self):
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            host, port = probe.getsockname()
        repo = RemoteRepository((host, port), "alpha", timeout=1, retries=2,
                                backoff=0.05)
        try:
            with pytest.raises(RemoteError):
                repo.server_stats()
        finally:
            repo.close()

    def test_budget_error_is_failover_worthy(self):
        from repro.cluster.client import failover_worthy
        from repro.errors import RetryBudgetExceededError

        assert failover_worthy(RetryBudgetExceededError("budget spent"))
