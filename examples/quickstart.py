#!/usr/bin/env python3
"""Quickstart: back up a versioned workload with HiDeStore and restore it.

Runs the scaled "kernel" workload (Table 1's first dataset) through
HiDeStore, prints per-version deduplication reports, then restores the
newest and the oldest version and compares their restore efficiency —
the paper's headline: new versions stay physically local.

Usage::

    python examples/quickstart.py
"""

from repro import HiDeStore, load_preset
from repro.units import format_bytes


def main() -> None:
    workload = load_preset("kernel", versions=12)
    system = HiDeStore()

    print("== backing up 12 versions of the kernel-like workload ==")
    for stream in workload.versions():
        report = system.backup(stream)
        print(
            f"  {report.tag:12s} chunks={report.total_chunks:5d} "
            f"unique={report.unique_chunks:5d} "
            f"stored={format_bytes(report.stored_bytes):>10s} "
            f"disk-index-lookups={report.disk_index_lookups}"
        )

    print(f"\ndeduplication ratio: {system.dedup_ratio:.2%}")
    print(f"physical bytes:      {format_bytes(system.stored_bytes())}")
    print(f"index table memory:  {system.report.index_memory_bytes} B (HiDeStore keeps none)")
    print(f"T1/T2 scratch:       {format_bytes(system.transient_cache_bytes)}")

    newest = system.version_ids()[-1]
    for version in (newest, 1):
        result = system.restore(version)
        print(
            f"\nrestore v{version}: {result.chunks} chunks, "
            f"{format_bytes(result.logical_bytes)} in {result.container_reads} "
            f"container reads -> speed factor {result.speed_factor:.2f} MB/read"
        )

    print(
        "\nThe newest version needs far fewer container reads per MB than an "
        "old one: HiDeStore moved every cold chunk out of the hot set, so "
        "new backups stay physically contiguous."
    )


if __name__ == "__main__":
    main()
