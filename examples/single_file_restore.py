#!/usr/bin/env python3
"""File-level snapshots and partial restore over HiDeStore.

Backs up several generations of a source tree through the
:class:`~repro.archive.DirectoryArchive` layer, then restores a single file
out of an old snapshot and compares the container reads against a full
restore — partial restores touch only the containers the file's chunks
live in.

Usage::

    python examples/single_file_restore.py
"""

from repro import DirectoryArchive, HiDeStore
from repro.chunking import FastCDCChunker
from repro.units import KiB, format_bytes
from repro.workloads import FileTreeGenerator, FileTreeSpec


def main() -> None:
    generator = FileTreeGenerator(
        FileTreeSpec(files=24, mean_file_size=32 * KiB, versions=5, seed=33)
    )
    archive = DirectoryArchive(
        HiDeStore(container_size=64 * KiB),
        chunker=FastCDCChunker(min_size=1024, avg_size=4096, max_size=16384),
    )

    print("== snapshotting 5 generations of a 24-file tree ==")
    trees = list(generator.versions())
    for k, tree in enumerate(trees, start=1):
        report = archive.backup_tree(tree, tag=f"gen-{k}")
        print(
            f"  gen-{k}: {len(tree)} files, "
            f"{format_bytes(report.logical_bytes):>10s} logical, "
            f"{format_bytes(report.stored_bytes):>10s} stored"
        )
    print(f"\ndedup ratio: {archive.system.dedup_ratio:.2%}")

    victim_version = 2
    victim_file = archive.list_files(victim_version)[5]
    print(f"\n== restoring only {victim_file!r} from snapshot {victim_version} ==")

    before = archive.system.io.snapshot()
    data = archive.restore_file(victim_version, victim_file)
    partial_reads = archive.system.io.delta(before).container_reads
    assert data == trees[victim_version - 1][victim_file]
    print(f"  partial restore: {format_bytes(len(data))} in {partial_reads} container reads")

    before = archive.system.io.snapshot()
    full = archive.restore_tree(victim_version)
    full_reads = archive.system.io.delta(before).container_reads
    assert full == trees[victim_version - 1]
    print(f"  full restore:    {format_bytes(sum(map(len, full.values())))} "
          f"in {full_reads} container reads")

    print(
        f"\nThe single-file restore touched {partial_reads}/{full_reads} of the "
        "containers — the manifest maps the file onto its recipe-entry span, "
        "so only those containers are read."
    )


if __name__ == "__main__":
    main()
