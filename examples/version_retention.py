#!/usr/bin/env python3
"""Retention-window operation: GC-free expiry of old backups (paper §4.5/§5.5).

Simulates a backup service keeping a sliding window of the last N versions:
every new backup beyond the window expires the oldest version.  Because
HiDeStore already segregated each version's exclusive chunks into their own
archival containers, expiry is container deletion — no reference counting,
no chunk detection, no garbage collection — and every retained version still
restores correctly afterwards.

Usage::

    python examples/version_retention.py
"""

from repro import HiDeStore, load_preset
from repro.units import format_bytes

WINDOW = 6  # retain this many versions


def main() -> None:
    workload = load_preset("gcc", versions=16)
    system = HiDeStore()

    print(f"== sliding retention window of {WINDOW} versions over 16 backups ==\n")
    for stream in workload.versions():
        report = system.backup(stream)
        line = f"backup {report.tag:10s} stored={format_bytes(report.stored_bytes):>10s}"
        retained = system.version_ids()
        # Expire beyond the window — but only versions whose cold chunks have
        # been demoted (the demotion horizon trails by history_depth).
        while len(retained) > WINDOW and retained[0] <= system.demotion_horizon:
            stats = system.delete_oldest()
            line += (
                f" | expired v{retained[0]}: {stats.containers_deleted} containers, "
                f"{format_bytes(stats.bytes_reclaimed)} back in "
                f"{stats.delete_seconds * 1000:.2f} ms"
            )
            retained = system.version_ids()
        print(line)

    print(f"\nretained versions: {system.version_ids()}")
    print(f"physical bytes:    {format_bytes(system.stored_bytes())}")
    print(f"deletion total:    {system.deletion.stats.containers_deleted} containers, "
          f"{format_bytes(system.deletion.stats.bytes_reclaimed)}, "
          f"{system.deletion.stats.delete_seconds * 1000:.2f} ms cumulative")

    print("\n== verifying every retained version still restores ==")
    for version_id in system.version_ids():
        result = system.restore(version_id)
        print(
            f"  v{version_id}: {result.chunks} chunks, "
            f"{format_bytes(result.logical_bytes)}, "
            f"speed factor {result.speed_factor:.2f}"
        )
    print("\nAll retained versions intact — deletion needed no GC pass at all.")


if __name__ == "__main__":
    main()
