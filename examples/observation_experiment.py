#!/usr/bin/env python3
"""The paper's §3 observation experiment (Figure 3), plus Figure 2's effect.

Part 1 replays each dataset through an infinite metadata buffer, tagging
every chunk with the most recent version containing it, and prints the
per-tag counts after each version — the data behind Figure 3.  Watch for:

* kernel/gcc/fslhomes: a tag's count drops once (the next version) and
  then stays flat — chunks missing from the current version never return;
* macos: the count drops over *two* versions (temporary absences), which is
  why HiDeStore runs that workload with ``history_depth=2``.

Part 2 quantifies Figure 2's fragmentation: under a traditional pipeline,
the number of containers a version's chunks scatter over grows with its
distance from the first backup, while HiDeStore keeps the newest version
dense.

Usage::

    python examples/observation_experiment.py
"""

from repro import HiDeStore, load_preset
from repro.analysis import format_observation_table, fragmentation_growth, run_observation
from repro.pipeline import build_scheme
from repro.units import KiB


def part1_observation() -> None:
    print("=" * 70)
    print("Part 1 — Figure 3: version-tag chunk counts")
    print("=" * 70)
    for name in ("kernel", "gcc", "fslhomes", "macos"):
        workload = load_preset(name, versions=8, chunks_per_version=2000)
        result = run_observation(workload.versions())
        print(f"\n--- {name} ---")
        print(format_observation_table(result, max_tags=6))
        print(f"V1 decays for {result.decay_step(1)} version(s) then plateaus")


def part2_fragmentation() -> None:
    print()
    print("=" * 70)
    print("Part 2 — Figure 2: fragmentation growth (containers per version)")
    print("=" * 70)
    workload_args = dict(versions=16, chunks_per_version=3000)
    container = 512 * KiB

    trad = build_scheme("baseline", container_size=container)
    for stream in load_preset("kernel", **workload_args).versions():
        trad.backup(stream)
    hds = build_scheme("hidestore", container_size=container)
    for stream in load_preset("kernel", **workload_args).versions():
        hds.backup(stream)

    print(f"\n{'version':>8s} {'traditional':>14s} {'hidestore':>12s}   (containers referenced)")
    trad_frag = {f.version_id: f for f in fragmentation_growth(trad)}
    hds_frag = {f.version_id: f for f in fragmentation_growth(hds)}
    for version in sorted(trad_frag):
        print(
            f"{version:>8d} {trad_frag[version].containers_referenced:>14d} "
            f"{hds_frag[version].containers_referenced:>12d}"
        )
    print(
        "\nTraditional dedup scatters each NEW version over ever more "
        "containers; HiDeStore inverts the effect — the newest version is "
        "densest and old versions absorb the fragmentation."
    )


if __name__ == "__main__":
    part1_observation()
    part2_fragmentation()
