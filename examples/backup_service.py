#!/usr/bin/env python3
"""A multi-client backup service: one shared store, per-user HiDeStore.

Models the paper's motivating deployment — an archival service keeping
"all versions of the software and the system snapshots for users". Three
clients with different workload shapes (one macos-like needing
``history_depth=2``) back up into one shared container store; each client's
versions restore independently, each client's retention window expires
GC-free without touching the others.

Usage::

    python examples/backup_service.py
"""

from repro.core import MultiClientHiDeStore
from repro.units import KiB, format_bytes
from repro.workloads import history_depth_for, load_preset

CLIENTS = {
    "build-server": "kernel",
    "ci-runner": "gcc",
    "mac-laptop": "macos",
}


def main() -> None:
    service = MultiClientHiDeStore(container_size=256 * KiB)

    print("== 3 clients, 8 backup generations each, one shared store ==")
    for client, preset in CLIENTS.items():
        service.client(client, history_depth=history_depth_for(preset))
        for stream in load_preset(preset, versions=8, chunks_per_version=1500).versions():
            service.backup(client, stream)

    print(f"\n{'client':<14s} {'versions':>8s} {'dedup':>8s} {'sf(newest)':>11s}")
    for client, versions, ratio in service.per_client_report():
        newest = service.client(client).version_ids()[-1]
        sf = service.restore(client, newest).speed_factor
        print(f"{client:<14s} {versions:>8d} {ratio:>7.2%} {sf:>11.3f}")

    print(f"\nservice-wide: {format_bytes(service.logical_bytes())} logical -> "
          f"{format_bytes(service.stored_bytes())} physical "
          f"({service.dedup_ratio:.2%} dedup)")

    print("\n== expiring build-server's two oldest generations (GC-free) ==")
    for _ in range(2):
        stats = service.delete_oldest("build-server")
        print(f"  expired: {stats.containers_deleted} containers, "
              f"{format_bytes(stats.bytes_reclaimed)} reclaimed in "
              f"{stats.delete_seconds * 1000:.2f} ms")

    print("\n== all other clients unaffected ==")
    for client in ("ci-runner", "mac-laptop"):
        result = service.restore(client, 1)
        print(f"  {client}: v1 restores, {result.chunks} chunks, "
              f"{format_bytes(result.logical_bytes)}")


if __name__ == "__main__":
    main()
