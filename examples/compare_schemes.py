#!/usr/bin/env python3
"""Head-to-head scheme comparison on one workload (a compact §5 in a script).

Backs up the scaled kernel workload under every scheme in the paper's
comparison set and prints the four evaluation axes side by side:
deduplication ratio (Fig. 8), lookup requests per GB (Fig. 9), resident
index bytes per MB (Fig. 10) and the restore speed factor of the newest /
middle / oldest version (Fig. 11).

Usage::

    python examples/compare_schemes.py [preset]
"""

import sys

from repro import load_preset
from repro.pipeline import build_scheme
from repro.units import KiB, MiB

CONTAINER = 512 * KiB  # scaled with the ~32 MB versions (paper: 4 MiB at ~0.4-48 GB)
AREA = 32 * MiB

CONFIGS = {
    "ddfs": {},
    "sparse": {},
    "silo": {},
    "capping": dict(rewriter_kwargs=dict(cap=16, segment_bytes=4 * MiB)),
    "alacc": dict(
        rewriter_kwargs=dict(
            container_bytes=CONTAINER,
            window_bytes=8 * MiB,
            target_rewrite_ratio=0.05,
            density_threshold=0.25,
        ),
        restorer_kwargs=dict(
            total_bytes=AREA,
            lookahead_bytes=16 * MiB,
            min_faa_bytes=4 * MiB,
            step_bytes=2 * MiB,
        ),
    ),
    "hidestore": {},
}


def main() -> None:
    preset = sys.argv[1] if len(sys.argv) > 1 else "kernel"
    print(f"workload: {preset} (scaled) — all schemes, same container size\n")
    header = (
        f"{'scheme':<10s} {'dedup':>7s} {'lkp/GB':>8s} {'idx B/MB':>9s} "
        f"{'sf(new)':>8s} {'sf(mid)':>8s} {'sf(old)':>8s}"
    )
    print(header)
    print("-" * len(header))
    for name, kwargs in CONFIGS.items():
        system = build_scheme(name, container_size=CONTAINER, **kwargs)
        for stream in load_preset(preset).versions():
            system.backup(stream)
        versions = system.version_ids()
        sf = {
            label: system.restore(v).speed_factor
            for label, v in (("new", versions[-1]), ("mid", versions[len(versions) // 2]), ("old", versions[0]))
        }
        print(
            f"{name:<10s} {system.dedup_ratio:>6.2%} "
            f"{system.report.lookups_per_gb:>8.0f} "
            f"{system.report.index_bytes_per_mb:>9.1f} "
            f"{sf['new']:>8.3f} {sf['mid']:>8.3f} {sf['old']:>8.3f}"
        )
    print(
        "\nExpected shape (paper §5): HiDeStore matches exact dedup (DDFS) "
        "on ratio, needs the least lookup traffic and no index memory, and "
        "wins restore speed on the NEW version while sacrificing old ones."
    )


if __name__ == "__main__":
    main()
