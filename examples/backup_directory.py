#!/usr/bin/env python3
"""Byte-level end-to-end backup: real chunking, real payloads, verified restore.

Generates an evolving file tree (the paper's software-release scenario:
each version edits, appends to, adds and removes files), backs up every
version through FastCDC chunking + HiDeStore, then restores each version and
verifies the reassembled bytes equal the original tree byte-for-byte.

Usage::

    python examples/backup_directory.py
"""

import hashlib

from repro import HiDeStore
from repro.chunking import FastCDCChunker, concat_stream_bytes
from repro.units import KiB, format_bytes
from repro.workloads import FileTreeGenerator, FileTreeSpec


def main() -> None:
    spec = FileTreeSpec(files=12, mean_file_size=48 * KiB, versions=6, seed=20)
    generator = FileTreeGenerator(spec)
    chunker = FastCDCChunker(min_size=1024, avg_size=4096, max_size=16384)
    system = HiDeStore(container_size=256 * KiB)

    originals = {}
    print("== backing up 6 versions of an evolving file tree ==")
    for tag, blob in generator.version_blobs():
        originals[tag] = hashlib.sha256(blob).hexdigest()
        stream = chunker.chunk_stream([blob], tag=tag)
        report = system.backup(stream)
        print(
            f"  {tag:9s} {format_bytes(report.logical_bytes):>10s} logical, "
            f"{format_bytes(report.stored_bytes):>10s} stored, "
            f"{report.duplicate_chunks}/{report.total_chunks} duplicates"
        )

    print(f"\ndedup ratio: {system.dedup_ratio:.2%}")

    print("\n== verifying every version restores byte-identically ==")
    for version_id in system.version_ids():
        recipe = system.recipes.peek(version_id)
        blob = concat_stream_bytes(system.restore_chunks(version_id))
        digest = hashlib.sha256(blob).hexdigest()
        ok = digest == originals[recipe.tag]
        print(f"  v{version_id} ({recipe.tag}): {'OK' if ok else 'CORRUPT'}")
        if not ok:
            raise SystemExit(1)

    print("\nAll versions verified — dedup and restore are lossless.")


if __name__ == "__main__":
    main()
