#!/usr/bin/env python3
"""Regenerate the paper's figures as SVG images under ``figures/``.

Runs the same experiments as the benchmark suite (at a slightly smaller
scale so the script finishes in under a minute) and renders:

* fig3_<dataset>.svg — version-tag chunk counts (the §3 observation);
* fig8_dedup_ratio.svg — deduplication ratios per scheme and dataset;
* fig9_<dataset>.svg — cumulative lookup requests per GB over versions;
* fig10_index_overhead.svg — resident index bytes per MB;
* fig11_<dataset>.svg — restore speed factor per version and scheme.

Usage::

    python examples/make_figures.py [output-dir]
"""

import os
import sys

from repro import load_preset
from repro.analysis import run_observation
from repro.pipeline import build_scheme
from repro.plotting import bar_chart, line_chart
from repro.units import KiB, MiB

CONTAINER = 512 * KiB
VERSIONS = 16
CHUNKS = 1500
DATASETS = ["kernel", "gcc", "fslhomes", "macos"]

SCHEME_KWARGS = {
    "ddfs": dict(index_kwargs=dict(cache_containers=16)),
    "sparse": {},
    "silo": {},
    "capping": dict(
        rewriter_kwargs=dict(cap=16, segment_bytes=4 * MiB),
        index_kwargs=dict(cache_containers=16),
    ),
    "alacc": dict(
        rewriter_kwargs=dict(
            container_bytes=CONTAINER, window_bytes=8 * MiB,
            target_rewrite_ratio=0.05, density_threshold=0.25,
        ),
        index_kwargs=dict(cache_containers=16),
    ),
    "hidestore": {},
}


def run_all(datasets):
    systems = {}
    for dataset in datasets:
        versions = VERSIONS if dataset != "macos" else 12
        for scheme, kwargs in SCHEME_KWARGS.items():
            system = build_scheme(scheme, container_size=CONTAINER, **kwargs)
            for stream in load_preset(dataset, versions=versions,
                                      chunks_per_version=CHUNKS).versions():
                system.backup(stream)
            systems[(dataset, scheme)] = system
        print(f"  backed up {dataset} under {len(SCHEME_KWARGS)} schemes")
    return systems


def fig3(out):
    for dataset in DATASETS:
        workload = load_preset(dataset, versions=8, chunks_per_version=1500)
        result = run_observation(workload.versions())
        series = {
            f"V{tag}": [(k, result.counts[k - 1].get(tag, 0))
                        for k in range(1, result.versions + 1)]
            for tag in range(1, 5)
        }
        path = os.path.join(out, f"fig3_{dataset}.svg")
        line_chart(series, f"Figure 3 — {dataset}: chunks per version tag",
                   "after version", "chunks", path)
        print(f"  wrote {path}")


def fig8(out, systems):
    groups = {
        scheme: [systems[(d, scheme)].dedup_ratio for d in DATASETS]
        for scheme in SCHEME_KWARGS
    }
    path = os.path.join(out, "fig8_dedup_ratio.svg")
    bar_chart(DATASETS, groups, "Figure 8 — deduplication ratio",
              "dedup ratio", path)
    print(f"  wrote {path}")


def fig9(out, systems):
    for dataset in ("kernel", "gcc"):
        series = {}
        for scheme in ("ddfs", "sparse", "silo", "hidestore"):
            reports = systems[(dataset, scheme)].report.per_version
            points = []
            for upto in range(2, len(reports) + 1):
                lookups = sum(r.disk_index_lookups for r in reports[:upto])
                logical = sum(r.logical_bytes for r in reports[:upto])
                points.append((upto, lookups / (logical / 2**30)))
            series[scheme] = points
        path = os.path.join(out, f"fig9_{dataset}.svg")
        line_chart(series, f"Figure 9 — lookup overhead ({dataset})",
                   "versions stored", "lookup requests per GB", path)
        print(f"  wrote {path}")


def fig10(out, systems):
    schemes = ["ddfs", "sparse", "silo", "hidestore"]
    groups = {
        scheme: [systems[(d, scheme)].report.index_bytes_per_mb for d in DATASETS]
        for scheme in schemes
    }
    path = os.path.join(out, "fig10_index_overhead.svg")
    bar_chart(DATASETS, groups, "Figure 10 — index table overhead",
              "resident index bytes per MB", path)
    print(f"  wrote {path}")


def fig11(out, systems):
    for dataset in DATASETS:
        series = {}
        for scheme in ("ddfs", "capping", "alacc", "hidestore"):
            system = systems[(dataset, scheme)]
            versions = system.version_ids()
            sample = versions[:: max(1, len(versions) // 8)]
            if versions[-1] not in sample:
                sample.append(versions[-1])
            series[scheme if scheme != "ddfs" else "baseline"] = [
                (v, system.restore(v).speed_factor) for v in sample
            ]
        path = os.path.join(out, f"fig11_{dataset}.svg")
        line_chart(series, f"Figure 11 — restore speed factor ({dataset})",
                   "version", "speed factor (MB/container read)", path)
        print(f"  wrote {path}")


def main() -> None:
    out = sys.argv[1] if len(sys.argv) > 1 else "figures"
    os.makedirs(out, exist_ok=True)
    print("== running experiments ==")
    systems = run_all(DATASETS)
    print("== rendering figures ==")
    fig3(out)
    fig8(out, systems)
    fig9(out, systems)
    fig10(out, systems)
    fig11(out, systems)
    print(f"\nAll figures written under {out}/ — open them in a browser.")


if __name__ == "__main__":
    main()
