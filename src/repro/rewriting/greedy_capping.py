"""Submodular (greedy max-coverage) capping — the paper's reference [34].

Classic capping ranks old containers by *chunk count* and keeps the top-T.
The submodular variant treats container selection as a budgeted maximum
coverage problem over *bytes*: greedily keep the container covering the most
not-yet-covered duplicate bytes of the segment, stopping when either the cap
is reached or the best remaining container's marginal coverage falls below a
threshold (no point "spending" a cap slot — i.e. a future container read —
on a container that contributes almost nothing).  Duplicates from unselected
containers are rewritten.

Byte coverage and the early stop make the variant adaptive: segments with a
few dominant containers use fewer cap slots; heavily fragmented ones spend
the full cap where it pays.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

from ..chunking.stream import Chunk
from ..errors import ReproError
from ..units import MiB
from .base import Rewriter


class GreedyCappingRewriter(Rewriter):
    """Budgeted greedy max-coverage container selection per segment.

    Args:
        cap: maximum containers a segment may reference.
        segment_bytes: segment size over which the cap applies.
        min_coverage_bytes: stop selecting once the best remaining
            container covers less than this many new bytes (the marginal
            utility floor; 0 reproduces plain byte-weighted capping).
            Defaults to one average chunk — referencing a container that
            saves less than a chunk's worth of rewriting is break-even at
            best.
    """

    def __init__(
        self,
        cap: int = 20,
        segment_bytes: int = 20 * MiB,
        min_coverage_bytes: int = 8 * 1024,
    ) -> None:
        super().__init__()
        if cap <= 0 or segment_bytes <= 0:
            raise ReproError("cap and segment_bytes must be positive")
        if min_coverage_bytes < 0:
            raise ReproError("min_coverage_bytes must be >= 0")
        self.cap = cap
        self.segment_bytes = segment_bytes
        self.min_coverage_bytes = min_coverage_bytes

    def decide(
        self, chunks: Sequence[Chunk], lookups: Sequence[Optional[int]]
    ) -> List[Optional[int]]:
        self._validate(chunks, lookups)
        decisions: List[Optional[int]] = [None] * len(chunks)
        start = 0
        consumed = 0
        for i, chunk in enumerate(chunks):
            consumed += chunk.size
            if consumed >= self.segment_bytes or i == len(chunks) - 1:
                self._decide_segment(chunks, lookups, decisions, start, i + 1)
                start = i + 1
                consumed = 0
        return decisions

    def _decide_segment(
        self,
        chunks: Sequence[Chunk],
        lookups: Sequence[Optional[int]],
        decisions: List[Optional[int]],
        lo: int,
        hi: int,
    ) -> None:
        # Coverage sets: container -> {positions}, weighted by chunk bytes.
        positions: Dict[int, List[int]] = {}
        for i in range(lo, hi):
            cid = lookups[i]
            if cid is not None:
                positions.setdefault(cid, []).append(i)

        # Deduplicated byte weight per position (a fingerprint repeated in
        # the segment only needs its container once).
        covered: Set[bytes] = set()
        weight: Dict[int, int] = {}
        for i in range(lo, hi):
            fp = chunks[i].fingerprint
            if lookups[i] is not None and fp not in covered:
                covered.add(fp)
                weight[i] = chunks[i].size
            else:
                weight[i] = 0

        # Greedy max coverage under the cap with a marginal-utility floor.
        remaining = dict(positions)
        selected: Set[int] = set()
        satisfied: Set[bytes] = set()
        while remaining and len(selected) < self.cap:
            best_cid = None
            best_gain = -1
            for cid, slots in remaining.items():
                gain = sum(
                    weight[i]
                    for i in slots
                    if chunks[i].fingerprint not in satisfied
                )
                if gain > best_gain:
                    best_gain = gain
                    best_cid = cid
            if best_cid is None or best_gain < self.min_coverage_bytes:
                break
            selected.add(best_cid)
            for i in remaining.pop(best_cid):
                satisfied.add(chunks[i].fingerprint)

        for i in range(lo, hi):
            cid = lookups[i]
            decisions[i] = cid if (cid is not None and cid in selected) else None
            self._note(chunks[i], cid, decisions[i])
