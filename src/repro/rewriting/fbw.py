"""FBW — look-back-window assisted rewriting with a dynamic cap (Cao et al.).

The paper's reference [8] (Cao, Wen & Du, FAST'19) improves on fixed capping
in two ways, both reproduced here:

1. **Look-back window**: rewrite decisions consider how much of each old
   container is actually useful within a sliding window of the stream
   (a container whose chunks are spread thinly through the window is a
   fragmentation source; a densely used one is worth referencing).
2. **Dynamic cap**: instead of a fixed top-``cap`` rule, the per-segment cap
   adapts so that the fraction of rewritten bytes tracks a target budget —
   workloads with little fragmentation rewrite almost nothing, heavily
   fragmented ones spend the full budget where it matters.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..chunking.stream import Chunk
from ..errors import ReproError
from ..units import CONTAINER_SIZE, MiB
from .base import Rewriter


class FBWRewriter(Rewriter):
    """Sliding look-back window rewriting with an adaptive cap.

    Args:
        window_bytes: look-back window size (16 MB default).
        target_rewrite_ratio: budget — desired rewritten-bytes / duplicate-bytes
            (2% default).
        density_threshold: containers supplying at least this fraction of a
            container's worth of bytes inside the window are always safe.
        container_bytes: container capacity.
    """

    def __init__(
        self,
        window_bytes: int = 16 * MiB,
        target_rewrite_ratio: float = 0.02,
        density_threshold: float = 0.1,
        container_bytes: int = CONTAINER_SIZE,
    ) -> None:
        super().__init__()
        if window_bytes <= 0 or container_bytes <= 0:
            raise ReproError("window and container sizes must be positive")
        if not (0.0 <= target_rewrite_ratio <= 1.0):
            raise ReproError("target_rewrite_ratio must be in [0, 1]")
        if not (0.0 < density_threshold <= 1.0):
            raise ReproError("density_threshold must be in (0, 1]")
        self.window_bytes = window_bytes
        self.target_rewrite_ratio = target_rewrite_ratio
        self.density_threshold = density_threshold
        self.container_bytes = container_bytes

    def begin_version(self, version_id: int, tag: str = "") -> None:
        self._duplicate_bytes_seen = 0
        self._rewritten_bytes_version = 0

    def decide(
        self, chunks: Sequence[Chunk], lookups: Sequence[Optional[int]]
    ) -> List[Optional[int]]:
        self._validate(chunks, lookups)
        n = len(chunks)
        decisions: List[Optional[int]] = list(lookups)

        # Pass 1: per-window container densities.  We window over the stream
        # with two pointers; density[cid] = bytes of cid-chunks in the window.
        density: Dict[int, int] = {}
        window_start = 0
        window_bytes = 0
        densities_at: List[float] = [0.0] * n

        for i in range(n):
            cid = lookups[i]
            size = chunks[i].size
            if cid is not None:
                density[cid] = density.get(cid, 0) + size
            window_bytes += size
            while window_bytes > self.window_bytes and window_start < i:
                s_cid = lookups[window_start]
                s_size = chunks[window_start].size
                if s_cid is not None:
                    density[s_cid] -= s_size
                    if density[s_cid] <= 0:
                        del density[s_cid]
                window_bytes -= s_size
                window_start += 1
            if cid is not None:
                densities_at[i] = density.get(cid, 0) / self.container_bytes

        # Pass 2: adaptive, container-granular rewriting.  A container read
        # is only saved when *every* reference to it is rewritten, so whole
        # reference groups are rewritten together, sparsest container first,
        # until the version's budget is exhausted.  A container is a rewrite
        # candidate only if its peak in-window density stayed below the
        # threshold (dense containers are worth referencing).
        duplicate_positions = [i for i in range(n) if lookups[i] is not None]
        dup_bytes = sum(chunks[i].size for i in duplicate_positions)
        self._duplicate_bytes_seen += dup_bytes
        budget = int(
            self.target_rewrite_ratio * self._duplicate_bytes_seen
        ) - self._rewritten_bytes_version

        groups: Dict[int, List[int]] = {}
        peak_density: Dict[int, float] = {}
        for i in duplicate_positions:
            cid = lookups[i]
            groups.setdefault(cid, []).append(i)
            peak = peak_density.get(cid, 0.0)
            if densities_at[i] > peak:
                peak_density[cid] = densities_at[i]
            else:
                peak_density.setdefault(cid, densities_at[i])

        sparse_first = sorted(
            (cid for cid in groups if peak_density[cid] < self.density_threshold),
            key=lambda c: peak_density[c],
        )
        for cid in sparse_first:
            group_bytes = sum(chunks[i].size for i in groups[cid])
            if group_bytes > budget:
                continue  # partial rewrites save nothing; skip the group
            for i in groups[cid]:
                decisions[i] = None
            budget -= group_bytes
            self._rewritten_bytes_version += group_bytes

        for i in range(n):
            self._note(chunks[i], lookups[i], decisions[i])
        return decisions
