"""Rewriting schemes: the paper's locality-vs-ratio baselines.

These are the schemes HiDeStore is compared against in Figures 8 and 11:
they *do* improve restore locality, but only by re-storing duplicate chunks,
which is exactly the deduplication-ratio loss HiDeStore avoids.
"""

from .base import Rewriter, RewriteStats
from .capping import CappingRewriter
from .cbr import CBRRewriter
from .cfl import CFLRewriter
from .fbw import FBWRewriter
from .greedy_capping import GreedyCappingRewriter
from .none import NoRewriter

__all__ = [
    "CBRRewriter",
    "CFLRewriter",
    "CappingRewriter",
    "FBWRewriter",
    "GreedyCappingRewriter",
    "NoRewriter",
    "RewriteStats",
    "Rewriter",
    "make_rewriter",
]

_REWRITERS = {
    "none": NoRewriter,
    "capping": CappingRewriter,
    "cbr": CBRRewriter,
    "cfl": CFLRewriter,
    "fbw": FBWRewriter,
    "greedy-capping": GreedyCappingRewriter,
}


def make_rewriter(name: str, **kwargs) -> Rewriter:
    """Construct a rewriter by name (``none``/``capping``/``cbr``/``cfl``/``fbw``)."""
    try:
        cls = _REWRITERS[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown rewriter {name!r}; choose from {sorted(_REWRITERS)}"
        ) from None
    return cls(**kwargs)
