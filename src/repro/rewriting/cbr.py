"""CBR — Context-Based Rewriting (Kaczmarczyk et al., SYSTOR'12).

For each duplicate chunk, CBR compares the chunk's *stream context* (the
bytes that follow it in the backup stream) with its *disk context* (the
container that holds it).  If the container contributes little to the
stream context — i.e. reading it during restore would mostly fetch useless
bytes — the chunk is a good rewrite candidate.  Rewrites are limited to a
small budget (5% of duplicate bytes in the original paper) so the
deduplication-ratio loss stays bounded.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..chunking.stream import Chunk
from ..errors import ReproError
from ..units import CONTAINER_SIZE, MiB
from .base import Rewriter


class CBRRewriter(Rewriter):
    """Context-based rewriting with a rewrite budget.

    Args:
        stream_context_bytes: look-forward window defining the stream context
            (5 MB in the original paper).
        minimal_utility: rewrite a duplicate only if its container's *rewrite
            utility* — the fraction of the container useless to the stream
            context — is at least this value (0.7 default).
        rewrite_budget: maximum fraction of duplicate bytes that may be
            rewritten per version (0.05 default).
        container_bytes: container capacity used for utility computation.
    """

    def __init__(
        self,
        stream_context_bytes: int = 5 * MiB,
        minimal_utility: float = 0.7,
        rewrite_budget: float = 0.05,
        container_bytes: int = CONTAINER_SIZE,
    ) -> None:
        super().__init__()
        if stream_context_bytes <= 0 or container_bytes <= 0:
            raise ReproError("context and container sizes must be positive")
        if not (0.0 <= minimal_utility <= 1.0):
            raise ReproError("minimal_utility must be within [0, 1]")
        if not (0.0 <= rewrite_budget <= 1.0):
            raise ReproError("rewrite_budget must be within [0, 1]")
        self.stream_context_bytes = stream_context_bytes
        self.minimal_utility = minimal_utility
        self.rewrite_budget = rewrite_budget
        self.container_bytes = container_bytes

    def decide(
        self, chunks: Sequence[Chunk], lookups: Sequence[Optional[int]]
    ) -> List[Optional[int]]:
        self._validate(chunks, lookups)
        n = len(chunks)
        decisions: List[Optional[int]] = list(lookups)

        duplicate_bytes = sum(c.size for c, cid in zip(chunks, lookups) if cid is not None)
        budget_bytes = int(duplicate_bytes * self.rewrite_budget)
        spent = 0

        # Sliding stream context: bytes each container contributes within the
        # look-forward window starting at every duplicate chunk.  We advance a
        # two-pointer window; container_bytes_in_window tracks contributions.
        contribution: Dict[int, int] = {}
        window_end = 0
        window_bytes = 0

        for i in range(n):
            # Grow the window to cover stream_context_bytes ahead of chunk i.
            while window_end < n and window_bytes < self.stream_context_bytes:
                cid = lookups[window_end]
                size = chunks[window_end].size
                if cid is not None:
                    contribution[cid] = contribution.get(cid, 0) + size
                window_bytes += size
                window_end += 1

            cid = lookups[i]
            if cid is not None:
                useful = contribution.get(cid, 0)
                # Normalise by the context actually available: near the end
                # of the stream the look-forward window shrinks, and a
                # container that fills the whole remaining context is not a
                # fragmentation source.
                denominator = min(self.container_bytes, max(1, window_bytes))
                utility = 1.0 - min(1.0, useful / denominator)
                if utility >= self.minimal_utility and spent + chunks[i].size <= budget_bytes:
                    decisions[i] = None
                    spent += chunks[i].size
            self._note(chunks[i], cid, decisions[i])

            # Slide the window start past chunk i.
            size = chunks[i].size
            if cid is not None:
                contribution[cid] = contribution.get(cid, 0) - size
                if contribution[cid] <= 0:
                    del contribution[cid]
            window_bytes -= size
        return decisions
