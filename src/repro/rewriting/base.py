"""Rewriting interface: trading deduplication ratio for physical locality.

A rewriter inspects a whole version's chunks *after* index classification
and may flip any duplicate ("reference container X") into a rewrite ("store
a fresh copy"), clustering the version's data into fewer, newer containers.
Every flip stores a duplicate byte — the deduplication-ratio loss Figure 8
charges these schemes with.

Contract: :meth:`decide` receives the chunk list and the index's lookup
results (``cid`` or ``None``) and returns a same-length list where each
element is either the (possibly kept) ``cid`` or ``None`` meaning "write".
A rewriter may never invent a duplicate (``None`` in, ``None`` out).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..chunking.stream import Chunk
from ..errors import ReproError


@dataclass
class RewriteStats:
    """Aggregate rewrite accounting across all versions."""

    duplicate_chunks: int = 0  # duplicates seen
    rewritten_chunks: int = 0  # duplicates flipped to writes
    rewritten_bytes: int = 0

    @property
    def rewrite_fraction(self) -> float:
        """Share of duplicate chunks that were rewritten."""
        if self.duplicate_chunks == 0:
            return 0.0
        return self.rewritten_chunks / self.duplicate_chunks


class Rewriter(ABC):
    """Base class for rewrite policies."""

    def __init__(self) -> None:
        self.stats = RewriteStats()

    def begin_version(self, version_id: int, tag: str = "") -> None:
        """Hook before a version's decisions. Optional."""

    @abstractmethod
    def decide(
        self, chunks: Sequence[Chunk], lookups: Sequence[Optional[int]]
    ) -> List[Optional[int]]:
        """Return final placement decisions (see module docstring)."""

    def end_version(self) -> None:
        """Hook after a version's decisions. Optional."""

    # ------------------------------------------------------------------
    def _validate(self, chunks: Sequence[Chunk], lookups: Sequence[Optional[int]]) -> None:
        if len(chunks) != len(lookups):
            raise ReproError(
                f"{type(self).__name__}: {len(chunks)} chunks but {len(lookups)} lookups"
            )

    def _note(self, chunk: Chunk, looked_up: Optional[int], decided: Optional[int]) -> None:
        """Book-keeping helper: call once per chunk with in/out decisions."""
        if looked_up is None:
            return
        self.stats.duplicate_chunks += 1
        if decided is None:
            self.stats.rewritten_chunks += 1
            self.stats.rewritten_bytes += chunk.size
