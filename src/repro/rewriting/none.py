"""The no-rewrite baseline: every duplicate stays where it is.

This is the paper's "scheme that doesn't rewrite chunks" baseline in
Figure 11 — maximum deduplication ratio, worst fragmentation growth.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..chunking.stream import Chunk
from .base import Rewriter


class NoRewriter(Rewriter):
    """Identity policy: pass the index's decisions through untouched."""

    def decide(
        self, chunks: Sequence[Chunk], lookups: Sequence[Optional[int]]
    ) -> List[Optional[int]]:
        self._validate(chunks, lookups)
        for chunk, cid in zip(chunks, lookups):
            self._note(chunk, cid, cid)
        return list(lookups)
