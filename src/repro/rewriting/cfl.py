"""CFL-based selective rewriting (Nam et al., "Chunk Fragmentation Level").

CFL quantifies fragmentation of the stream processed so far as

    CFL = optimal container count / actual container count,

where *optimal* is what a perfectly sequential layout would need
(``ceil(stream bytes / container size)``) and *actual* counts the distinct
containers the stream references (old containers touched by duplicates plus
the new containers written).  Whenever the running CFL sinks below a
threshold, the scheme enters *selective deduplication*: incoming duplicates
are written again instead of referenced, until CFL recovers.  Restore reads
are thus kept bounded, at a duplicate-storage cost proportional to how long
the system stays below the threshold.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set

from ..chunking.stream import Chunk
from ..errors import ReproError
from ..units import CONTAINER_SIZE
from .base import Rewriter


class CFLRewriter(Rewriter):
    """Selective rewriting driven by the running chunk-fragmentation level.

    Args:
        threshold: CFL value below which duplicates are rewritten (the
            original paper recommends ~0.6).
        container_bytes: container capacity for the optimal-count estimate.
        warmup_containers: CFL is not evaluated until the stream has covered
            this many containers' worth of data — early in a version the
            integer container counts are so coarse that one boundary straddle
            would trip the threshold and start a rewrite spiral.
    """

    def __init__(
        self,
        threshold: float = 0.6,
        container_bytes: int = CONTAINER_SIZE,
        warmup_containers: int = 8,
    ) -> None:
        super().__init__()
        if not (0.0 < threshold <= 1.0):
            raise ReproError("CFL threshold must be in (0, 1]")
        if warmup_containers < 0:
            raise ReproError("warmup_containers must be >= 0")
        self.threshold = threshold
        self.container_bytes = container_bytes
        self.warmup_containers = warmup_containers

    def begin_version(self, version_id: int, tag: str = "") -> None:
        # CFL is evaluated per backup stream: restart the running state.
        self._stream_bytes = 0
        self._new_bytes = 0
        self._referenced: Set[int] = set()

    def _current_cfl(self) -> float:
        if self._stream_bytes < self.warmup_containers * self.container_bytes:
            return 1.0
        optimal = max(1, -(-self._stream_bytes // self.container_bytes))  # ceil
        new_containers = max(0, -(-self._new_bytes // self.container_bytes))
        actual = len(self._referenced) + new_containers
        if actual == 0:
            return 1.0
        return min(1.0, optimal / actual)

    def decide(
        self, chunks: Sequence[Chunk], lookups: Sequence[Optional[int]]
    ) -> List[Optional[int]]:
        self._validate(chunks, lookups)
        decisions: List[Optional[int]] = []
        for chunk, cid in zip(chunks, lookups):
            decision: Optional[int]
            if cid is None:
                decision = None
                self._new_bytes += chunk.size
            elif self._current_cfl() < self.threshold:
                decision = None  # selective rewrite: re-store the duplicate
                self._new_bytes += chunk.size
            else:
                decision = cid
                self._referenced.add(cid)
            self._stream_bytes += chunk.size
            self._note(chunk, cid, decision)
            decisions.append(decision)
        return decisions
