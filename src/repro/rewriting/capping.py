"""Capping (Lillibridge, Eshghi & Bhagwat, FAST'13).

The stream is processed in fixed-size segments (20 MB in the paper).  Within
a segment, the old containers referenced by duplicates are ranked by how many
of the segment's chunks they supply; only the top ``cap`` containers may be
referenced.  Duplicates pointing at any container below the cap are rewritten.
This bounds the number of container reads a restore of this segment can ever
need to ``cap + (new containers written)``, at the cost of re-storing the
chunks of the evicted containers.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..chunking.stream import Chunk
from ..errors import ReproError
from ..units import MiB
from .base import Rewriter


class CappingRewriter(Rewriter):
    """Classic fixed-cap segment rewriting.

    Args:
        cap: maximum number of old containers a segment may reference.
        segment_bytes: segment size over which the cap applies (20 MB default,
            as in the original paper).
    """

    def __init__(self, cap: int = 20, segment_bytes: int = 20 * MiB) -> None:
        super().__init__()
        if cap <= 0:
            raise ReproError("capping level must be positive")
        if segment_bytes <= 0:
            raise ReproError("segment_bytes must be positive")
        self.cap = cap
        self.segment_bytes = segment_bytes

    def decide(
        self, chunks: Sequence[Chunk], lookups: Sequence[Optional[int]]
    ) -> List[Optional[int]]:
        self._validate(chunks, lookups)
        decisions: List[Optional[int]] = [None] * len(chunks)
        start = 0
        consumed = 0
        for i, chunk in enumerate(chunks):
            consumed += chunk.size
            if consumed >= self.segment_bytes or i == len(chunks) - 1:
                self._decide_segment(chunks, lookups, decisions, start, i + 1)
                start = i + 1
                consumed = 0
        return decisions

    def _decide_segment(
        self,
        chunks: Sequence[Chunk],
        lookups: Sequence[Optional[int]],
        decisions: List[Optional[int]],
        lo: int,
        hi: int,
    ) -> None:
        # Rank referenced old containers by the number of chunks they supply.
        votes: Dict[int, int] = {}
        for i in range(lo, hi):
            cid = lookups[i]
            if cid is not None:
                votes[cid] = votes.get(cid, 0) + 1
        ranked = sorted(votes.items(), key=lambda kv: (-kv[1], kv[0]))
        allowed = {cid for cid, _ in ranked[: self.cap]}
        for i in range(lo, hi):
            cid = lookups[i]
            if cid is not None and cid in allowed:
                decisions[i] = cid
            else:
                decisions[i] = None
            self._note(chunks[i], cid, decisions[i])
