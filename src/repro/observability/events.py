"""Structured JSON event logging + trace-ID generation.

One event per line, one JSON object per event — the format every log
aggregator ingests directly and ``jq`` slices interactively::

    {"ts": 1754300000.123, "event": "backup_begin", "trace": "3f2a….1", "repo": "alpha"}
    {"ts": 1754300001.456, "event": "backup_end",   "trace": "3f2a….1", "repo": "alpha",
     "duration_ms": 1333.1}

Correlation model: the daemon mints one trace ID per client session and
hands it to the client in ``HELLO_OK``; both sides then derive
``<session>.<seq>`` request IDs independently (the client embeds its copy
in every request payload, and the server prefers the payload's ID when
present).  Grep one trace ID across the daemon log and a client log and
the full request timeline falls out.
"""

from __future__ import annotations

import io
import json
import os
import sys
import threading
import time
import uuid
from contextlib import contextmanager
from typing import IO, Iterator, Optional, Union


def new_trace_id() -> str:
    """A fresh 16-hex-char correlation ID (random, collision-negligible)."""
    return uuid.uuid4().hex[:16]


class EventLogger:
    """The no-op event sink: every recording site costs one method call.

    Also the interface contract — :class:`JsonEventLogger` overrides
    :meth:`log`; :meth:`span` is implemented once, on top of ``log``.
    """

    enabled = False

    def log(self, event: str, **fields) -> None:  # noqa: ARG002 - interface
        """Record one event (ignored by the no-op base)."""

    @contextmanager
    def span(self, name: str, trace: Optional[str] = None, **fields) -> Iterator[None]:
        """Log ``<name>_begin`` / ``<name>_end`` (or ``_error``) around a block."""
        if not self.enabled:
            yield
            return
        self.log(f"{name}_begin", trace=trace, **fields)
        started = time.perf_counter()
        try:
            yield
        except BaseException as exc:
            self.log(
                f"{name}_error",
                trace=trace,
                duration_ms=round((time.perf_counter() - started) * 1000, 3),
                error=type(exc).__name__,
                message=str(exc),
                **fields,
            )
            raise
        self.log(
            f"{name}_end",
            trace=trace,
            duration_ms=round((time.perf_counter() - started) * 1000, 3),
            **fields,
        )

    def close(self) -> None:
        """Release the sink (no-op here)."""


class JsonEventLogger(EventLogger):
    """Append structured events as JSON lines to a file, stream or stdout.

    Args:
        target: a path, ``"-"`` for stdout, or an open text stream.
        source: optional tag stamped on every record (``"daemon"``,
            ``"client"``) so merged logs stay attributable.

    Thread-safe: one lock serialises line writes, each line is flushed
    whole, so concurrent sessions never interleave partial records.
    """

    enabled = True

    def __init__(self, target: Union[str, IO[str]], source: str = "") -> None:
        self.source = source
        self._lock = threading.Lock()
        self._owns_stream = False
        if isinstance(target, str):
            if target == "-":
                self._stream: IO[str] = sys.stdout
            else:
                directory = os.path.dirname(os.path.abspath(target))
                os.makedirs(directory, exist_ok=True)
                self._stream = open(target, "a", encoding="utf-8", buffering=1)
                self._owns_stream = True
        else:
            self._stream = target

    def log(self, event: str, **fields) -> None:
        record = {"ts": round(time.time(), 6), "event": event}
        if self.source:
            record["source"] = self.source
        for key, value in fields.items():
            if value is not None:
                record[key] = value
        line = json.dumps(record, separators=(",", ":"), default=str)
        with self._lock:
            stream = self._stream
            if stream is None:
                return
            try:
                stream.write(line + "\n")
                stream.flush()
            except ValueError:  # pragma: no cover - stream closed underneath us
                pass

    def close(self) -> None:
        with self._lock:
            stream, self._stream = self._stream, None
        if stream is not None and self._owns_stream:
            try:
                stream.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass

    def __enter__(self) -> "JsonEventLogger":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def open_event_log(spec: Optional[str], source: str = "") -> EventLogger:
    """``None`` → no-op logger; ``"-"`` → stdout; anything else → file path."""
    if not spec:
        return EventLogger()
    return JsonEventLogger(spec, source=source)


def read_jsonl(path: str) -> list:
    """Parse a JSON-lines file back into a list of dicts (tests, tooling)."""
    records = []
    with io.open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records
