"""A dependency-free, thread-safe metrics registry.

Three instrument kinds, all keyed by dotted names (``server.backup_seconds``,
``store.container_read_bytes``):

* :class:`Counter` — monotonically increasing integer/float totals;
* :class:`Gauge` — a point-in-time value (queue depth, active sessions);
* :class:`Histogram` — fixed-bucket latency distribution with
  interpolated quantiles (the Prometheus estimation scheme: find the
  bucket the rank falls into, interpolate linearly inside it).

Fixed buckets keep ``observe`` O(log buckets) with bounded memory, which
is what lets the hot ingest path record per-stage timings without a
measurable throughput cost.  Every instrument takes its own lock, so
concurrent worker threads never contend on a registry-wide lock for
updates — the registry lock only guards instrument creation and snapshots.
"""

from __future__ import annotations

import threading
import time
from bisect import bisect_left
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

#: Default histogram bounds (seconds): spans sub-millisecond container
#: reads up to minute-long full-repository backups.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
    0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

#: The quantiles every histogram snapshot reports.
SNAPSHOT_QUANTILES: Tuple[Tuple[str, float], ...] = (
    ("p50", 0.50), ("p95", 0.95), ("p99", 0.99),
)


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (got {amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """A point-in-time value (settable, incrementable, decrementable)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Fixed-bucket distribution with interpolated quantile estimates.

    ``bounds`` are inclusive upper bucket edges; one implicit overflow
    bucket catches everything above the last bound.  Quantiles inside a
    bucket interpolate linearly between its edges; the overflow bucket
    reports the maximum observed value (exact, since we track it).
    """

    __slots__ = ("name", "bounds", "_counts", "_count", "_sum", "_min", "_max", "_lock")

    def __init__(self, name: str, bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS) -> None:
        clean = tuple(float(b) for b in bounds)
        if not clean or any(b <= a for a, b in zip(clean, clean[1:])):
            raise ValueError(f"histogram {name} bounds must be strictly increasing: {bounds}")
        self.name = name
        self.bounds = clean
        self._counts = [0] * (len(clean) + 1)  # +1: the overflow bucket
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        index = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (``0 < q <= 1``) from the buckets."""
        if not 0.0 < q <= 1.0:
            raise ValueError(f"quantile must be in (0, 1], got {q}")
        with self._lock:
            return self._quantile_locked(q)

    def _quantile_locked(self, q: float) -> float:
        if self._count == 0:
            return 0.0
        rank = q * self._count
        cumulative = 0
        for index, bucket_count in enumerate(self._counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= rank:
                if index >= len(self.bounds):
                    return self._max if self._max is not None else self.bounds[-1]
                lower = self.bounds[index - 1] if index else 0.0
                upper = self.bounds[index]
                within = (rank - cumulative) / bucket_count
                estimate = lower + (upper - lower) * within
                # Never report outside the observed range.
                if self._max is not None:
                    estimate = min(estimate, self._max)
                if self._min is not None:
                    estimate = max(estimate, self._min)
                return estimate
            cumulative += bucket_count
        return self._max if self._max is not None else 0.0  # pragma: no cover

    def snapshot(self) -> Dict:
        with self._lock:
            doc: Dict = {
                "count": self._count,
                "sum": round(self._sum, 6),
                "min": round(self._min, 6) if self._min is not None else None,
                "max": round(self._max, 6) if self._max is not None else None,
            }
            for label, q in SNAPSHOT_QUANTILES:
                doc[label] = round(self._quantile_locked(q), 6)
        return doc


class MetricsRegistry:
    """Named instruments behind get-or-create accessors.

    The convenience recorders (:meth:`inc`, :meth:`observe`, :meth:`set_gauge`,
    :meth:`timer`) honour :attr:`enabled` — flipping it off turns every
    recording site into a near-free no-op, which is how the observability
    overhead benchmark measures its own cost.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    # Instrument accessors (get-or-create)
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                self._check_free(name, self._counters)
                instrument = self._counters[name] = Counter(name)
            return instrument

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                self._check_free(name, self._gauges)
                instrument = self._gauges[name] = Gauge(name)
            return instrument

    def histogram(self, name: str, bounds: Optional[Sequence[float]] = None) -> Histogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                self._check_free(name, self._histograms)
                instrument = self._histograms[name] = Histogram(
                    name, bounds if bounds is not None else DEFAULT_LATENCY_BUCKETS
                )
            return instrument

    def _check_free(self, name: str, owner: Dict) -> None:
        for kind in (self._counters, self._gauges, self._histograms):
            if kind is not owner and name in kind:
                raise ValueError(f"metric name {name!r} already registered as another kind")

    # ------------------------------------------------------------------
    # Recording conveniences (no-ops while disabled)
    # ------------------------------------------------------------------
    def inc(self, name: str, amount: int = 1) -> None:
        if self.enabled:
            self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        if self.enabled:
            self.gauge(name).set(value)

    def observe(self, name: str, value: float,
                bounds: Optional[Sequence[float]] = None) -> None:
        if self.enabled:
            self.histogram(name, bounds).observe(value)

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Time a block into histogram ``name`` (records on error too)."""
        if not self.enabled:
            yield
            return
        started = time.perf_counter()
        try:
            yield
        finally:
            self.observe(name, time.perf_counter() - started)

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict:
        """A JSON-serialisable dump: counters, gauges, histogram quantiles."""
        with self._lock:
            counters = list(self._counters.values())
            gauges = list(self._gauges.values())
            histograms = list(self._histograms.values())
        return {
            "counters": {c.name: c.value for c in counters},
            "gauges": {g.name: g.value for g in gauges},
            "histograms": {h.name: h.snapshot() for h in histograms},
        }

    def reset(self) -> None:
        """Drop every instrument (tests and long-lived CLIs)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    def histogram_names(self) -> List[str]:
        with self._lock:
            return sorted(self._histograms)


#: The process-default registry deep layers record into when no explicit
#: registry is wired through (mirrors the prometheus default-registry idiom).
_DEFAULT = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-default :class:`MetricsRegistry`."""
    return _DEFAULT
