"""Operational observability: metrics, structured events, trace IDs.

This package is the *service* telemetry layer — distinct from
:mod:`repro.metrics`, which computes the paper's research metrics (dedup
ratio, speed factor) from simulation state.  Everything here is
dependency-free and thread-safe, because engine work runs on worker
threads while the daemon's event loop serves sockets:

* :class:`MetricsRegistry` — named counters, gauges and fixed-bucket
  latency histograms (p50/p95/p99 via linear interpolation).  A process
  default registry (:func:`get_registry`) lets deep layers (container
  store, chunker stages) record timings without plumbing a registry
  through every constructor; tests pass their own instances.
* :class:`JsonEventLogger` — structured JSON-lines event log (one object
  per line) for the daemon's ``--log-json`` and the client's span log.
  :class:`EventLogger` is the no-op base used when logging is off.
* :func:`new_trace_id` — random correlation IDs; the daemon assigns one
  per session (returned in ``HELLO_OK``) and both sides derive
  ``<session>.<seq>`` per-request IDs from it, so one grep joins client
  and server records for a single backup.
"""

from .events import EventLogger, JsonEventLogger, new_trace_id, open_event_log, read_jsonl
from .registry import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "EventLogger",
    "Gauge",
    "Histogram",
    "JsonEventLogger",
    "MetricsRegistry",
    "get_registry",
    "new_trace_id",
    "open_event_log",
    "read_jsonl",
]
