"""TTTD — Two Thresholds, Two Divisors chunking (Eshghi & Tang, HP Labs).

The chunker the paper's prototype uses.  TTTD scans with a rolling hash and
keeps *two* boundary conditions: a main divisor ``D`` (rare boundary, sets
the average size) and a backup divisor ``D'`` (more frequent).  If no main
boundary appears before the maximum threshold, the most recent *backup*
boundary is used instead of a hard cut, which keeps boundaries
content-defined even for pathological data and tightens the size
distribution compared to plain Rabin CDC.
"""

from __future__ import annotations

import random
from typing import List, Optional

from ..errors import ChunkingError
from .base import BaseChunker

_MOD = 1 << 64
_PRIME = 1099511628211


def _substitution_table(seed: int) -> List[int]:
    rng = random.Random(seed)
    return [rng.getrandbits(63) for _ in range(256)]


class TTTDChunker(BaseChunker):
    """Two-Thresholds Two-Divisors content-defined chunker.

    Args:
        min_size / avg_size / max_size: size contract.  The HP defaults scale
            as min=460, avg=1015, max=2800 for 1 KiB average; we default to an
            8 KiB average with proportional thresholds, matching Destor.
        window: rolling-hash window width.
        seed: substitution-table seed (determinism knob).
    """

    def __init__(
        self,
        min_size: int = 4096,
        avg_size: int = 8192,
        max_size: int = 24576,
        window: int = 48,
        seed: int = 0x7177D,
    ) -> None:
        super().__init__(min_size, avg_size, max_size)
        if window <= 0 or window > min_size:
            raise ChunkingError("window must be positive and <= min_size")
        self.window = window
        # Main divisor targets the average size beyond min_size; the backup
        # divisor fires ~4x more often, per the TTTD paper's D/4 guidance.
        self.main_divisor = max(2, avg_size - min_size)
        self.backup_divisor = max(2, self.main_divisor // 4)
        self._table = _substitution_table(seed)
        self._out_factor = pow(_PRIME, window, _MOD)

    def next_cut(self, data: memoryview, eof: bool) -> Optional[int]:
        available = len(data)
        if available == 0:
            return None
        limit = min(available, self.max_size)
        if limit < self.min_size:
            return available if eof else None

        table = self._table
        window = self.window
        out_factor = self._out_factor
        main_d = self.main_divisor
        backup_d = self.backup_divisor

        buf = bytes(data[:limit])
        start = self.min_size - window
        h = 0
        for i in range(start, self.min_size):
            h = (h * _PRIME + table[buf[i]]) % _MOD
        pos = self.min_size
        backup_cut = -1
        if h % backup_d == backup_d - 1:
            backup_cut = pos
        if h % main_d == main_d - 1:
            return pos
        while pos < limit:
            h = (h * _PRIME + table[buf[pos]] - out_factor * table[buf[pos - window]]) % _MOD
            pos += 1
            if h % backup_d == backup_d - 1:
                backup_cut = pos
            if h % main_d == main_d - 1:
                return pos
        if limit == self.max_size:
            # No main boundary before the max threshold: prefer the last
            # backup boundary, else hard-cut at max (TTTD's defining rule).
            return backup_cut if backup_cut > 0 else self.max_size
        return available if eof else None
