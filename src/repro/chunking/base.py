"""Chunker interface and shared streaming split machinery.

Every content-defined chunker in this package implements a single primitive,
:meth:`BaseChunker.next_cut`: given a buffer that starts at a chunk boundary,
return the length of the first chunk, or ``None`` when the buffer is too
short to decide and more input may still arrive.  The base class turns that
primitive into whole-buffer and streaming split APIs and enforces the
min/max-size contract.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, Iterator, List, Optional

from ..errors import ChunkingError
from .fingerprint import Fingerprinter
from .stream import BackupStream, Chunk


class BaseChunker(ABC):
    """Abstract content-defined chunker.

    Args:
        min_size: smallest chunk the algorithm may emit (except the final
            tail of a stream, which may be shorter).
        avg_size: target average chunk size; subclasses derive their divisor
            or mask from it.
        max_size: hard ceiling; a cut is forced at this length.
    """

    def __init__(self, min_size: int, avg_size: int, max_size: int) -> None:
        if not (0 < min_size <= avg_size <= max_size):
            raise ChunkingError(
                f"need 0 < min({min_size}) <= avg({avg_size}) <= max({max_size})"
            )
        self.min_size = min_size
        self.avg_size = avg_size
        self.max_size = max_size

    @abstractmethod
    def next_cut(self, data: memoryview, eof: bool) -> Optional[int]:
        """Length of the first chunk in ``data``, or ``None`` if undecidable.

        ``data`` always begins at a chunk boundary.  Implementations must
        honour ``self.max_size`` (never return more) and, unless ``eof`` makes
        the remainder a short tail, ``self.min_size``.  When ``eof`` is true
        the whole buffer is final: implementations must return a cut (the
        buffer length at most) rather than ``None``, unless the buffer is
        empty.
        """

    # ------------------------------------------------------------------
    # Derived APIs
    # ------------------------------------------------------------------
    def split(self, data: bytes) -> List[bytes]:
        """Split a complete in-memory buffer into chunk payloads."""
        return list(self.iter_split(data))

    def iter_split(self, data: bytes) -> Iterator[bytes]:
        """Lazily split a complete in-memory buffer into chunk payloads."""
        view = memoryview(data)
        offset = 0
        total = len(view)
        while offset < total:
            cut = self.next_cut(view[offset:], eof=True)
            if cut is None or cut <= 0:
                raise ChunkingError(
                    f"{type(self).__name__}.next_cut returned {cut!r} at eof"
                )
            if cut > self.max_size:
                raise ChunkingError(
                    f"{type(self).__name__} produced an oversized cut: "
                    f"{cut} > max {self.max_size}"
                )
            yield bytes(view[offset : offset + cut])
            offset += cut

    def split_stream(self, blocks: Iterable[bytes]) -> Iterator[bytes]:
        """Split an iterable of byte blocks (e.g. file reads) into chunks.

        Buffers only as much input as needed to decide the next boundary
        (bounded by ``max_size``), so arbitrarily large inputs stream in
        constant memory.
        """
        buffer = bytearray()
        iterator = iter(blocks)
        exhausted = False
        while True:
            while not exhausted and len(buffer) < self.max_size:
                try:
                    buffer.extend(next(iterator))
                except StopIteration:
                    exhausted = True
            if not buffer:
                return
            cut = self.next_cut(memoryview(bytes(buffer)), eof=exhausted)
            if cut is None:
                if exhausted:
                    raise ChunkingError(
                        f"{type(self).__name__} refused to cut a final buffer"
                    )
                continue
            yield bytes(buffer[:cut])
            del buffer[:cut]

    def chunk_bytes(
        self, data: bytes, fingerprinter: Optional[Fingerprinter] = None
    ) -> List[Chunk]:
        """Split and fingerprint a buffer into :class:`Chunk` objects."""
        fp = fingerprinter or Fingerprinter()
        return [fp.chunk(piece) for piece in self.iter_split(data)]

    def chunk_stream(
        self,
        blocks: Iterable[bytes],
        tag: str = "",
        fingerprinter: Optional[Fingerprinter] = None,
    ) -> BackupStream:
        """Split + fingerprint an iterable of byte blocks into a backup stream."""
        fp = fingerprinter or Fingerprinter()
        return BackupStream(
            [fp.chunk(piece) for piece in self.split_stream(blocks)], tag=tag
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"{type(self).__name__}(min={self.min_size}, avg={self.avg_size}, "
            f"max={self.max_size})"
        )
