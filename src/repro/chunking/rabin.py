"""Rabin-style rolling-hash content-defined chunking.

This is the classic CDC scheme referenced by the paper ([26] LBFS): a hash is
rolled over a fixed window; whenever ``hash & mask == magic`` the window end
is declared a chunk boundary.  We use a multiplicative Karp–Rabin rolling
hash over a 48-byte window with a randomized (but seeded, hence
deterministic) byte-substitution table, which matches the boundary statistics
of a true irreducible-polynomial Rabin fingerprint while staying tractable in
pure Python.
"""

from __future__ import annotations

import random
from typing import List, Optional

from ..errors import ChunkingError
from .base import BaseChunker

_MOD = 1 << 64
_PRIME = 1099511628211  # FNV prime; odd, so invertible mod 2**64


def _substitution_table(seed: int) -> List[int]:
    rng = random.Random(seed)
    return [rng.getrandbits(63) for _ in range(256)]


class RabinChunker(BaseChunker):
    """Rolling-hash CDC with a fixed window.

    Args:
        min_size / avg_size / max_size: size contract; ``avg_size`` must be a
            power of two because the boundary test is a mask comparison.
        window: rolling window width in bytes (48, as in LBFS).
        seed: seeds the byte substitution table; two chunkers with the same
            seed cut identically.
    """

    def __init__(
        self,
        min_size: int = 2048,
        avg_size: int = 8192,
        max_size: int = 65536,
        window: int = 48,
        seed: int = 0x5EED,
    ) -> None:
        super().__init__(min_size, avg_size, max_size)
        if avg_size & (avg_size - 1):
            raise ChunkingError("avg_size must be a power of two for Rabin masks")
        if window <= 0 or window > min_size:
            raise ChunkingError("window must be positive and <= min_size")
        self.window = window
        self.mask = avg_size - 1
        self.magic = self.mask  # boundary when low bits are all ones
        self._table = _substitution_table(seed)
        # Precompute PRIME**window mod 2**64 to remove the outgoing byte.
        self._out_factor = pow(_PRIME, window, _MOD)

    def next_cut(self, data: memoryview, eof: bool) -> Optional[int]:
        available = len(data)
        if available == 0:
            return None
        limit = min(available, self.max_size)
        if limit < self.min_size:
            return available if eof else None

        table = self._table
        mask = self.mask
        magic = self.magic
        window = self.window
        out_factor = self._out_factor

        # Warm the window over the last `window` bytes before min_size so the
        # first boundary test happens exactly at offset min_size.
        start = self.min_size - window
        h = 0
        buf = bytes(data[:limit])
        for i in range(start, self.min_size):
            h = (h * _PRIME + table[buf[i]]) % _MOD
        pos = self.min_size
        if (h & mask) == magic:
            return pos
        while pos < limit:
            h = (h * _PRIME + table[buf[pos]] - out_factor * table[buf[pos - window]]) % _MOD
            pos += 1
            if (h & mask) == magic:
                return pos
        if limit == self.max_size:
            return self.max_size
        # Ran out of buffer before max_size.
        return available if eof else None
