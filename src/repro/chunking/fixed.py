"""Fixed-size chunking.

The simplest chunker: cut every ``size`` bytes.  Fixed-size chunking suffers
from the boundary-shift problem (one inserted byte re-chunks everything after
it) which is exactly why the paper's systems use content-defined chunking;
we keep it as the degenerate baseline and for unit tests.
"""

from __future__ import annotations

from typing import Optional

from ..errors import ChunkingError
from .base import BaseChunker


class FixedChunker(BaseChunker):
    """Cut the stream into equal ``size``-byte chunks (last one may be short)."""

    def __init__(self, size: int = 8192) -> None:
        if size <= 0:
            raise ChunkingError("fixed chunk size must be positive")
        super().__init__(min_size=size, avg_size=size, max_size=size)
        self.size = size

    def next_cut(self, data: memoryview, eof: bool) -> Optional[int]:
        available = len(data)
        if available >= self.size:
            return self.size
        if eof:
            return available if available > 0 else None
        return None
