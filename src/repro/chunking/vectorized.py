"""Vectorized FastCDC boundary detection (numpy-accelerated, exact).

The scalar :meth:`~repro.chunking.fastcdc.FastCDCChunker.next_cut` walks one
byte at a time through the Python interpreter, which caps ingest throughput
at a few MB/s and dwarfs every other stage of the backup pipeline.  This
module computes the *same* cut points with numpy, two orders of magnitude
faster, by exploiting a property of the gear hash: because each step shifts
the 64-bit state left by one, a byte stops influencing the hash after 64
steps.  The chunk-local hash at position ``p`` therefore equals the
*windowed* hash

    ``W[p] = sum_{j=0}^{63} gear[data[p-j]] << j   (mod 2**64)``

whenever at least 64 bytes of the current chunk have been hashed — i.e. for
positions ``>= min_size + 63`` relative to the chunk start.  ``W`` depends
only on the data, not on chunk boundaries, so it can be computed once for
the whole buffer (by log-doubling, six vector passes) and every chunk
boundary found by searching precomputed mask-hit position arrays.  The
first 63 positions of each chunk, where the window is still filling, are
walked with the scalar loop; everything after is a ``searchsorted``.

:func:`split_fast` is a drop-in replacement for ``chunker.split`` that
falls back to the scalar path for non-FastCDC chunkers, small buffers, or
when numpy is unavailable — callers never need to gate on ``HAVE_NUMPY``.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .base import BaseChunker
from .fastcdc import _MASK64, FastCDCChunker

try:  # pragma: no cover - exercised implicitly by every import
    import numpy as _np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - environment without numpy
    _np = None
    HAVE_NUMPY = False

#: Gear-hash memory: one left-shift per byte over 64-bit state.
_WINDOW = 64

#: Tile size for the windowed-hash pass.  Small enough that the uint64
#: working set (~8x this) stays cache-resident: 128 KiB tiles run ~5x
#: faster than multi-MiB ones on a single core.
_TILE = 128 * 1024

#: Below this, scalar chunking wins (vector setup cost dominates).
_MIN_VECTOR_BYTES = 64 * 1024


def _gear_array(chunker: FastCDCChunker):
    cached = getattr(chunker, "_gear_np", None)
    if cached is None:
        cached = _np.array(chunker._gear, dtype=_np.uint64)
        chunker._gear_np = cached
    return cached


def _window_hashes(gear_np, block, scratch) -> "object":
    """``W[p]`` for every position of ``block``, by log-doubling.

    After the six passes each ``W[p]`` covers window ``j in [0, 63]``;
    positions ``p < 63`` hold partial windows and must not be queried.
    ``scratch`` is a reusable uint64 buffer at least ``len(block)`` long.
    """
    w = gear_np[_np.frombuffer(block, dtype=_np.uint8)]
    n = w.shape[0]
    for k in (1, 2, 4, 8, 16, 32):
        shifted = scratch[: n - k]
        _np.left_shift(w[: n - k], _np.uint64(k), out=shifted)
        _np.add(w[k:], shifted, out=w[k:])
    return w


def _hit_positions(chunker: FastCDCChunker, data: bytes) -> Tuple["object", "object"]:
    """Sorted absolute positions where ``W[p] & mask == 0``, per mask.

    Computed tile-by-tile with a 63-byte prefix overlap so every queried
    position sees a complete window regardless of tile boundaries.
    """
    gear_np = _gear_array(chunker)
    mask_small = _np.uint64(chunker.mask_small)
    mask_large = _np.uint64(chunker.mask_large)
    small_parts = []
    large_parts = []
    view = memoryview(data)
    total = len(data)
    scratch = _np.empty(min(total, _TILE) + _WINDOW, dtype=_np.uint64)
    start = 0
    while start < total:
        stop = min(start + _TILE, total)
        lead = min(start, _WINDOW - 1)
        w = _window_hashes(gear_np, view[start - lead : stop], scratch)[lead:]
        small_parts.append(_np.flatnonzero((w & mask_small) == 0) + start)
        large_parts.append(_np.flatnonzero((w & mask_large) == 0) + start)
        start = stop
    empty = _np.empty(0, dtype=_np.int64)
    small = _np.concatenate(small_parts) if small_parts else empty
    large = _np.concatenate(large_parts) if large_parts else empty
    return small, large


def _first_hit(positions, lo: int, hi: int) -> Optional[int]:
    """Smallest element of sorted ``positions`` in ``[lo, hi)``, if any."""
    i = int(_np.searchsorted(positions, lo, side="left"))
    if i < positions.shape[0] and positions[i] < hi:
        return int(positions[i])
    return None


def vector_cuts(chunker: FastCDCChunker, data: bytes) -> List[int]:
    """Chunk lengths of ``data``, bit-identical to the scalar chunker.

    Equivalent to collecting ``len(piece) for piece in chunker.iter_split``
    — same normalized-chunking mask switch at ``avg_size``, same forced cut
    at ``max_size``, same short final tail.
    """
    small_pos, large_pos = _hit_positions(chunker, data)
    gear = chunker._gear
    mask_small = chunker.mask_small
    mask_large = chunker.mask_large
    min_size = chunker.min_size
    avg_size = chunker.avg_size
    max_size = chunker.max_size
    # First chunk-relative position where W[] equals the chunk-local hash:
    # the window has shifted the pre-min_size void fully out of the state.
    warm_end = min_size + _WINDOW - 1

    total = len(data)
    cuts: List[int] = []
    s = 0
    while s < total:
        available = total - s
        limit = min(available, max_size)
        if limit <= min_size:
            cuts.append(available if available <= max_size else max_size)
            s += cuts[-1]
            continue
        normal = min(avg_size, limit)
        cut = None
        # Scalar warmup over the partial-window prefix of this chunk.
        h = 0
        pos = min_size
        scalar_end = min(limit, warm_end)
        while pos < scalar_end:
            h = ((h << 1) + gear[data[s + pos]]) & _MASK64
            if not (h & (mask_small if pos < normal else mask_large)):
                cut = pos + 1
                break
            pos += 1
        if cut is None and warm_end < limit:
            if warm_end < normal:
                p = _first_hit(small_pos, s + warm_end, s + normal)
                if p is not None:
                    cut = p - s + 1
            if cut is None:
                p = _first_hit(large_pos, s + max(normal, warm_end), s + limit)
                if p is not None:
                    cut = p - s + 1
        if cut is None:
            cut = max_size if limit == max_size else available
        cuts.append(cut)
        s += cut
    return cuts


def split_fast(chunker: BaseChunker, data: bytes) -> List[bytes]:
    """``chunker.split(data)``, vectorized when it is safe to do so.

    The vector path is taken only for a plain :class:`FastCDCChunker`
    (subclasses may override ``next_cut``), with numpy present, on buffers
    large enough to amortise the windowed-hash pass.  Output is always
    byte-identical to the scalar path.
    """
    if (
        not HAVE_NUMPY
        or type(chunker) is not FastCDCChunker
        or len(data) < _MIN_VECTOR_BYTES
    ):
        return chunker.split(bytes(data) if not isinstance(data, bytes) else data)
    if not isinstance(data, bytes):
        data = bytes(data)
    view = memoryview(data)
    pieces: List[bytes] = []
    offset = 0
    for cut in vector_cuts(chunker, data):
        pieces.append(bytes(view[offset : offset + cut]))
        offset += cut
    return pieces
