"""Fingerprinting: cryptographic digests over chunk payloads.

The paper uses SHA-1 (20 bytes) and relies on the standard argument that a
hash collision is far less likely than a hardware error.  We expose SHA-1 as
the default plus MD5 and SHA-256 for experimentation; all are truncated or
padded to a configurable width so index-size metrics stay comparable.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Dict

from ..errors import ChunkingError
from ..units import FINGERPRINT_SIZE
from .stream import Chunk

_ALGORITHMS: Dict[str, Callable[[bytes], bytes]] = {
    "sha1": lambda data: hashlib.sha1(data).digest(),
    "md5": lambda data: hashlib.md5(data).digest(),
    "sha256": lambda data: hashlib.sha256(data).digest(),
}


class Fingerprinter:
    """Compute fixed-width fingerprints for chunk payloads.

    Args:
        algorithm: one of ``sha1`` (default, as in the paper), ``md5``,
            ``sha256``.
        width: output width in bytes.  Digests longer than ``width`` are
            truncated; shorter ones are zero-padded.  Defaults to the paper's
            20 bytes.
    """

    def __init__(self, algorithm: str = "sha1", width: int = FINGERPRINT_SIZE) -> None:
        if algorithm not in _ALGORITHMS:
            raise ChunkingError(
                f"unknown fingerprint algorithm {algorithm!r}; "
                f"choose from {sorted(_ALGORITHMS)}"
            )
        if width <= 0:
            raise ChunkingError("fingerprint width must be positive")
        self.algorithm = algorithm
        self.width = width
        self._digest = _ALGORITHMS[algorithm]

    def __reduce__(self):
        # The digest callable is a module-level lambda and unpicklable;
        # reconstruct from (algorithm, width) so process pools can ship us.
        return (Fingerprinter, (self.algorithm, self.width))

    def fingerprint(self, data: bytes) -> bytes:
        """Digest ``data`` to exactly ``self.width`` bytes."""
        raw = self._digest(data)
        if len(raw) >= self.width:
            return raw[: self.width]
        return raw.ljust(self.width, b"\x00")

    def chunk(self, data: bytes) -> Chunk:
        """Wrap a payload into a :class:`Chunk` with its fingerprint."""
        return Chunk(self.fingerprint(data), len(data), data)


#: Module-level default matching the paper (SHA-1, 20 bytes).
DEFAULT_FINGERPRINTER = Fingerprinter()


def sha1_fingerprint(data: bytes) -> bytes:
    """Convenience wrapper: the paper's SHA-1 fingerprint of ``data``."""
    return DEFAULT_FINGERPRINTER.fingerprint(data)
