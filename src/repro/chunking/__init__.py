"""Chunking substrate: content-defined chunkers and fingerprinting.

The paper's pipeline starts by splitting the backup stream into variable-size
chunks (4-8 KiB average) and hashing each with SHA-1.  This subpackage
provides the chunkers referenced in the paper — TTTD (used by the prototype),
Rabin CDC, FastCDC and AE — plus fixed-size chunking as a baseline, and the
:class:`~repro.chunking.stream.Chunk` / :class:`~repro.chunking.stream.BackupStream`
types every other layer consumes.
"""

from .ae import AEChunker
from .base import BaseChunker
from .fastcdc import FastCDCChunker
from .fingerprint import DEFAULT_FINGERPRINTER, Fingerprinter, sha1_fingerprint
from .fixed import FixedChunker
from .rabin import RabinChunker
from .stream import BackupStream, Chunk, concat_stream_bytes, synthetic_fingerprint
from .tttd import TTTDChunker

__all__ = [
    "AEChunker",
    "BackupStream",
    "BaseChunker",
    "Chunk",
    "DEFAULT_FINGERPRINTER",
    "FastCDCChunker",
    "Fingerprinter",
    "FixedChunker",
    "RabinChunker",
    "TTTDChunker",
    "concat_stream_bytes",
    "sha1_fingerprint",
    "synthetic_fingerprint",
    "make_chunker",
]

_CHUNKERS = {
    "fixed": FixedChunker,
    "rabin": RabinChunker,
    "tttd": TTTDChunker,
    "fastcdc": FastCDCChunker,
    "ae": AEChunker,
}


def make_chunker(name: str, **kwargs) -> BaseChunker:
    """Construct a chunker by name (``fixed``/``rabin``/``tttd``/``fastcdc``/``ae``)."""
    try:
        cls = _CHUNKERS[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown chunker {name!r}; choose from {sorted(_CHUNKERS)}"
        ) from None
    return cls(**kwargs)
