"""AE — Asymmetric Extremum content-defined chunking (Zhang et al., INFOCOM'15).

AE declares a boundary when a byte position holds the *maximum* hash value
seen so far and no larger value appears within the following fixed-size
window.  Unlike Rabin-style schemes it needs no minimum-size clamp (the
window supplies it naturally) and visits each byte once with a single
comparison, making it one of the cheapest CDC algorithms.
"""

from __future__ import annotations

import random
from typing import List, Optional

from ..errors import ChunkingError
from .base import BaseChunker


def _value_table(seed: int) -> List[int]:
    rng = random.Random(seed)
    return [rng.getrandbits(32) for _ in range(256)]


class AEChunker(BaseChunker):
    """Asymmetric-extremum chunker.

    Args:
        avg_size: target average chunk size.  AE's expected chunk size is
            ``window * (e - 1) ≈ 1.718 * window``, so the window is derived as
            ``avg_size / (e - 1)``.
        max_size: hard ceiling (AE itself has none; we add one so downstream
            container packing has a bound).
        seed: byte-value substitution table seed.
    """

    def __init__(
        self,
        avg_size: int = 8192,
        max_size: int = 65536,
        seed: int = 0xAE,
    ) -> None:
        window = max(1, int(avg_size / 1.71828))
        super().__init__(min_size=window, avg_size=avg_size, max_size=max_size)
        self.window = window
        self._table = _value_table(seed)

    def next_cut(self, data: memoryview, eof: bool) -> Optional[int]:
        available = len(data)
        if available == 0:
            return None
        limit = min(available, self.max_size)
        table = self._table
        window = self.window

        buf = bytes(data[:limit])
        max_value = -1
        max_pos = 0
        for pos in range(limit):
            value = table[buf[pos]]
            if value > max_value:
                max_value = value
                max_pos = pos
            elif pos - max_pos >= window:
                # max_pos is the extremum of its right window: cut after it.
                return pos + 1
        if limit == self.max_size:
            return self.max_size
        return available if eof else None
