"""FastCDC — gear-based content-defined chunking (Xia et al., ATC'16).

FastCDC replaces the Rabin window with a *gear* hash (one table lookup, one
shift, one add per byte) and applies *normalized chunking*: a harder-to-match
mask before the normal size and an easier one after, which pulls the size
distribution toward the average and skips the sub-minimum region entirely.
This is the fastest real chunker in the package and the default for
byte-level examples.
"""

from __future__ import annotations

import random
from typing import List, Optional

from ..errors import ChunkingError
from .base import BaseChunker

_MASK64 = (1 << 64) - 1


def _gear_table(seed: int) -> List[int]:
    rng = random.Random(seed)
    return [rng.getrandbits(64) for _ in range(256)]


def _spread_mask(bits: int) -> int:
    """Build a FastCDC-style padded mask with ``bits`` one-bits spread high."""
    mask = 0
    # Distribute the one-bits over the top 48 bits, as the paper recommends,
    # deterministically (every 48//bits-th position from the top).
    if bits <= 0:
        return 0
    step = max(1, 48 // bits)
    position = 63
    for _ in range(bits):
        mask |= 1 << position
        position -= step
    return mask


class FastCDCChunker(BaseChunker):
    """Gear-hash chunker with normalized chunking.

    Args:
        min_size / avg_size / max_size: size contract; ``avg_size`` must be a
            power of two.
        normalization: how many mask bits to add/remove around the average
            (the paper's "normalization level", usually 1-3).
        seed: gear-table seed.
    """

    def __init__(
        self,
        min_size: int = 2048,
        avg_size: int = 8192,
        max_size: int = 65536,
        normalization: int = 2,
        seed: int = 0xFA57,
    ) -> None:
        super().__init__(min_size, avg_size, max_size)
        if avg_size & (avg_size - 1):
            raise ChunkingError("avg_size must be a power of two for FastCDC")
        if normalization < 0:
            raise ChunkingError("normalization level must be >= 0")
        bits = avg_size.bit_length() - 1
        self.mask_small = _spread_mask(bits + normalization)  # harder, pre-avg
        self.mask_large = _spread_mask(max(1, bits - normalization))  # easier
        self._gear = _gear_table(seed)

    def next_cut(self, data: memoryview, eof: bool) -> Optional[int]:
        available = len(data)
        if available == 0:
            return None
        limit = min(available, self.max_size)
        if limit <= self.min_size:
            if eof:
                return available if available <= self.max_size else self.max_size
            return None

        gear = self._gear
        mask_small = self.mask_small
        mask_large = self.mask_large
        normal = min(self.avg_size, limit)

        buf = bytes(data[:limit])
        h = 0
        pos = self.min_size
        while pos < normal:
            h = ((h << 1) + gear[buf[pos]]) & _MASK64
            if not (h & mask_small):
                return pos + 1
            pos += 1
        while pos < limit:
            h = ((h << 1) + gear[buf[pos]]) & _MASK64
            if not (h & mask_large):
                return pos + 1
            pos += 1
        if limit == self.max_size:
            return self.max_size
        return available if eof else None
