"""Chunk and backup-stream primitives.

A *chunk* is the unit of deduplication: a (fingerprint, size) pair plus an
optional payload.  Real byte-level backups carry payloads; the simulated
benchmark workloads carry only fingerprints and sizes, which is all every
metric in the paper depends on (dedup ratio, lookups/GB, speed factor).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Sequence

from ..errors import ChunkingError
from ..units import FINGERPRINT_SIZE


@dataclass(frozen=True)
class Chunk:
    """One deduplication unit of a backup stream.

    Attributes:
        fingerprint: content digest (SHA-1 in real streams; any unique
            20-byte token in simulated streams).
        size: payload size in bytes.  Always known, even without a payload.
        data: the payload, or ``None`` for metadata-only (simulated) chunks.
    """

    fingerprint: bytes
    size: int
    data: Optional[bytes] = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not isinstance(self.fingerprint, bytes) or not self.fingerprint:
            raise ChunkingError("chunk fingerprint must be non-empty bytes")
        if self.size <= 0:
            raise ChunkingError(f"chunk size must be positive, got {self.size}")
        if self.data is not None and len(self.data) != self.size:
            raise ChunkingError(
                f"chunk size {self.size} disagrees with payload length {len(self.data)}"
            )

    @property
    def has_data(self) -> bool:
        """Whether the chunk carries a real payload."""
        return self.data is not None

    def drop_data(self) -> "Chunk":
        """Return a metadata-only copy (used when payloads are already stored)."""
        if self.data is None:
            return self
        return Chunk(self.fingerprint, self.size)

    def short_fp(self) -> str:
        """First 8 hex digits of the fingerprint, for logs and errors."""
        return self.fingerprint.hex()[:8]


class BackupStream:
    """A single backup version presented as an ordered sequence of chunks.

    The stream knows its ``tag`` (a caller-chosen label such as ``"v3"``)
    and exposes the aggregate logical size.  It can be iterated repeatedly
    when constructed from a sequence; single-pass iterables are consumed.
    """

    def __init__(self, chunks: Iterable[Chunk], tag: str = "") -> None:
        self._chunks: Sequence[Chunk] = (
            chunks if isinstance(chunks, (list, tuple)) else list(chunks)
        )
        self.tag = tag

    def __iter__(self) -> Iterator[Chunk]:
        return iter(self._chunks)

    def __len__(self) -> int:
        return len(self._chunks)

    def __getitem__(self, idx: int) -> Chunk:
        return self._chunks[idx]

    @property
    def chunks(self) -> Sequence[Chunk]:
        return self._chunks

    @property
    def logical_size(self) -> int:
        """Total pre-deduplication bytes of this version."""
        return sum(c.size for c in self._chunks)

    @property
    def unique_fingerprints(self) -> int:
        """Number of distinct fingerprints within this single version."""
        return len({c.fingerprint for c in self._chunks})

    def fingerprints(self) -> List[bytes]:
        return [c.fingerprint for c in self._chunks]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"BackupStream(tag={self.tag!r}, chunks={len(self._chunks)}, "
            f"logical={self.logical_size})"
        )


def _mix64(value: int) -> int:
    """splitmix64 finalizer: a cheap, high-quality 64-bit mixer."""
    z = (value + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return z ^ (z >> 31)


def synthetic_fingerprint(token: int) -> bytes:
    """Map an integer chunk identity onto a deterministic 20-byte fingerprint.

    Simulated workloads name chunks with integers.  The leading 16 bytes are
    a mixed (uniformly distributed) image of the token so that everything a
    real SHA-1 digest's uniformity is relied on for — min-hash similarity
    sampling (SiLo), hook sampling (Sparse Indexing), Bloom-filter hashing —
    behaves as with real digests.  The trailing 4 bytes carry the raw token,
    so distinct tokens can never collide.
    """
    if token < 0:
        raise ChunkingError("synthetic chunk tokens must be non-negative")
    if token >= 1 << 32:
        raise ChunkingError("synthetic chunk tokens must fit in 32 bits")
    head = _mix64(token).to_bytes(8, "big") + _mix64(token ^ 0x5DEECE66D).to_bytes(8, "big")
    return head + token.to_bytes(FINGERPRINT_SIZE - 16, "big")


def concat_stream_bytes(stream: Iterable[Chunk]) -> bytes:
    """Concatenate payloads of a byte-carrying stream (test/verification aid)."""
    parts = []
    for chunk in stream:
        if chunk.data is None:
            raise ChunkingError(
                f"chunk {chunk.short_fp()} carries no payload; cannot concatenate"
            )
        parts.append(chunk.data)
    return b"".join(parts)
