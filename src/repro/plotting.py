"""Minimal SVG chart generation (no third-party plotting dependencies).

The benchmark suite prints the paper's tables; this module turns the same
series into figure images so the reproduction can be compared with the
paper visually.  Two chart types cover every figure in the paper:

* :func:`line_chart` — Figures 3, 9, 11 (series over versions);
* :func:`bar_chart` — Figures 8, 10, 12 (grouped bars per dataset/scheme).

The output is plain SVG 1.1, viewable in any browser.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from .errors import ReproError

#: Default categorical palette (colour-blind-safe Okabe-Ito).
PALETTE = [
    "#0072B2", "#E69F00", "#009E73", "#D55E00",
    "#CC79A7", "#56B4E9", "#F0E442", "#000000",
]

_WIDTH = 640
_HEIGHT = 400
_MARGIN_L = 70
_MARGIN_R = 20
_MARGIN_T = 46
_MARGIN_B = 52


def _escape(text: str) -> str:
    return (
        str(text)
        .replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
        .replace('"', "&quot;")
    )


def _nice_ticks(low: float, high: float, count: int = 5) -> List[float]:
    """Round tick positions covering [low, high]."""
    if high <= low:
        high = low + 1.0
    span = high - low
    step = 10 ** math.floor(math.log10(span / max(1, count)))
    for multiplier in (1, 2, 2.5, 5, 10, 20):
        if span / (step * multiplier) <= count:
            step *= multiplier
            break
    start = math.floor(low / step) * step
    ticks = []
    value = start
    while value <= high + step * 0.5:
        ticks.append(round(value, 10))
        value += step
    return ticks


def _format_tick(value: float) -> str:
    if value == int(value) and abs(value) < 1e6:
        return str(int(value))
    if abs(value) >= 1000:
        return f"{value:.0f}"
    return f"{value:g}"


class _Canvas:
    """Accumulates SVG elements."""

    def __init__(self, width: int, height: int) -> None:
        self.width = width
        self.height = height
        self.parts: List[str] = [
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
            f'height="{height}" viewBox="0 0 {width} {height}" '
            'font-family="sans-serif">',
            f'<rect width="{width}" height="{height}" fill="white"/>',
        ]

    def text(self, x, y, s, size=12, anchor="middle", weight="normal", color="#222"):
        self.parts.append(
            f'<text x="{x:.1f}" y="{y:.1f}" font-size="{size}" '
            f'text-anchor="{anchor}" font-weight="{weight}" '
            f'fill="{color}">{_escape(s)}</text>'
        )

    def line(self, x1, y1, x2, y2, color="#999", width=1, dash=None):
        extra = f' stroke-dasharray="{dash}"' if dash else ""
        self.parts.append(
            f'<line x1="{x1:.1f}" y1="{y1:.1f}" x2="{x2:.1f}" y2="{y2:.1f}" '
            f'stroke="{color}" stroke-width="{width}"{extra}/>'
        )

    def polyline(self, points, color, width=2):
        joined = " ".join(f"{x:.1f},{y:.1f}" for x, y in points)
        self.parts.append(
            f'<polyline points="{joined}" fill="none" stroke="{color}" '
            f'stroke-width="{width}"/>'
        )

    def circle(self, x, y, r, color):
        self.parts.append(
            f'<circle cx="{x:.1f}" cy="{y:.1f}" r="{r}" fill="{color}"/>'
        )

    def rect(self, x, y, w, h, color):
        self.parts.append(
            f'<rect x="{x:.1f}" y="{y:.1f}" width="{w:.1f}" height="{h:.1f}" '
            f'fill="{color}"/>'
        )

    def render(self) -> str:
        return "\n".join(self.parts + ["</svg>"])


def _frame(canvas: _Canvas, title: str, xlabel: str, ylabel: str,
           y_ticks: Sequence[float], y_to_px) -> Tuple[float, float]:
    plot_w = canvas.width - _MARGIN_L - _MARGIN_R
    plot_h = canvas.height - _MARGIN_T - _MARGIN_B
    canvas.text(canvas.width / 2, 24, title, size=15, weight="bold")
    canvas.text(canvas.width / 2, canvas.height - 12, xlabel, size=12)
    canvas.parts.append(
        f'<text x="16" y="{_MARGIN_T + plot_h / 2:.1f}" font-size="12" '
        f'text-anchor="middle" fill="#222" '
        f'transform="rotate(-90 16 {_MARGIN_T + plot_h / 2:.1f})">'
        f"{_escape(ylabel)}</text>"
    )
    # Axes + horizontal grid.
    canvas.line(_MARGIN_L, _MARGIN_T, _MARGIN_L, _MARGIN_T + plot_h, "#222")
    canvas.line(_MARGIN_L, _MARGIN_T + plot_h, _MARGIN_L + plot_w,
                _MARGIN_T + plot_h, "#222")
    for tick in y_ticks:
        y = y_to_px(tick)
        canvas.line(_MARGIN_L, y, _MARGIN_L + plot_w, y, "#e5e5e5")
        canvas.text(_MARGIN_L - 8, y + 4, _format_tick(tick), size=10, anchor="end")
    return plot_w, plot_h


def _legend(canvas: _Canvas, names: Sequence[str], colors: Sequence[str]) -> None:
    x = _MARGIN_L + 6
    y = _MARGIN_T + 6
    for name, color in zip(names, colors):
        canvas.rect(x, y, 12, 12, color)
        canvas.text(x + 16, y + 10, name, size=11, anchor="start")
        y += 16


def line_chart(
    series: Dict[str, List[Tuple[float, float]]],
    title: str,
    xlabel: str,
    ylabel: str,
    path: Optional[str] = None,
    colors: Optional[Sequence[str]] = None,
) -> str:
    """Render named (x, y) series as an SVG line chart.

    Returns the SVG text; writes it to ``path`` when given.
    """
    if not series or not any(series.values()):
        raise ReproError("line_chart needs at least one non-empty series")
    colors = list(colors or PALETTE)
    xs = [x for points in series.values() for x, _ in points]
    ys = [y for points in series.values() for _, y in points]
    x_low, x_high = min(xs), max(xs)
    y_ticks = _nice_ticks(min(0.0, min(ys)), max(ys))
    y_low, y_high = y_ticks[0], y_ticks[-1]
    if x_high == x_low:
        x_high = x_low + 1

    canvas = _Canvas(_WIDTH, _HEIGHT)
    plot_w = _WIDTH - _MARGIN_L - _MARGIN_R
    plot_h = _HEIGHT - _MARGIN_T - _MARGIN_B

    def x_px(x): return _MARGIN_L + (x - x_low) / (x_high - x_low) * plot_w
    def y_px(y): return _MARGIN_T + plot_h - (y - y_low) / (y_high - y_low) * plot_h

    _frame(canvas, title, xlabel, ylabel, y_ticks, y_px)
    for tick in _nice_ticks(x_low, x_high, 8):
        if x_low <= tick <= x_high:
            canvas.line(x_px(tick), _MARGIN_T + plot_h, x_px(tick),
                        _MARGIN_T + plot_h + 4, "#222")
            canvas.text(x_px(tick), _MARGIN_T + plot_h + 16, _format_tick(tick), size=10)

    for i, (name, points) in enumerate(series.items()):
        color = colors[i % len(colors)]
        pixel_points = [(x_px(x), y_px(y)) for x, y in sorted(points)]
        canvas.polyline(pixel_points, color)
        for x, y in pixel_points:
            canvas.circle(x, y, 2.5, color)
    _legend(canvas, list(series), colors)

    svg = canvas.render()
    if path:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(svg)
    return svg


def bar_chart(
    categories: Sequence[str],
    groups: Dict[str, Sequence[float]],
    title: str,
    ylabel: str,
    path: Optional[str] = None,
    colors: Optional[Sequence[str]] = None,
) -> str:
    """Render grouped bars: one cluster per category, one bar per group.

    Returns the SVG text; writes it to ``path`` when given.
    """
    if not categories or not groups:
        raise ReproError("bar_chart needs categories and groups")
    for name, values in groups.items():
        if len(values) != len(categories):
            raise ReproError(
                f"group {name!r} has {len(values)} values for "
                f"{len(categories)} categories"
            )
    colors = list(colors or PALETTE)
    all_values = [v for values in groups.values() for v in values]
    y_ticks = _nice_ticks(min(0.0, min(all_values)), max(all_values))
    y_low, y_high = y_ticks[0], y_ticks[-1]

    canvas = _Canvas(_WIDTH, _HEIGHT)
    plot_w = _WIDTH - _MARGIN_L - _MARGIN_R
    plot_h = _HEIGHT - _MARGIN_T - _MARGIN_B

    def y_px(y): return _MARGIN_T + plot_h - (y - y_low) / (y_high - y_low) * plot_h

    _frame(canvas, title, "", ylabel, y_ticks, y_px)
    cluster_w = plot_w / len(categories)
    bar_w = cluster_w * 0.8 / len(groups)
    for c, category in enumerate(categories):
        base_x = _MARGIN_L + c * cluster_w + cluster_w * 0.1
        for g, (name, values) in enumerate(groups.items()):
            value = values[c]
            top = y_px(max(0.0, value))
            bottom = y_px(min(0.0, value))
            canvas.rect(base_x + g * bar_w, top, bar_w * 0.92,
                        max(0.5, bottom - top), colors[g % len(colors)])
        canvas.text(base_x + cluster_w * 0.4, _MARGIN_T + plot_h + 16,
                    category, size=10)
    _legend(canvas, list(groups), colors)

    svg = canvas.render()
    if path:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(svg)
    return svg
