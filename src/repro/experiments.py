"""Experiment matrix runner: sweep schemes × workloads, collect all metrics.

The benchmark files each regenerate one paper table/figure; this module is
the general tool behind them for downstream users: run any set of schemes
over any set of workloads and get every §5 metric back as flat rows —
ready for CSV, pandas, or plotting.

Example::

    from repro.experiments import run_matrix, write_csv

    rows = run_matrix(
        schemes={"ddfs": {}, "hidestore": {}},
        presets=["kernel", "gcc"],
        versions=16,
        container_size=512 * 1024,
    )
    write_csv(rows, "results.csv")
"""

from __future__ import annotations

import csv
import time
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Union

from .pipeline.schemes import build_scheme
from .units import CONTAINER_SIZE
from .workloads import SyntheticWorkload, history_depth_for, load_preset

#: Column order of the result rows (stable for CSV consumers).
COLUMNS = [
    "scheme",
    "workload",
    "versions",
    "logical_bytes",
    "stored_bytes",
    "dedup_ratio",
    "lookups_per_gb",
    "index_bytes_per_mb",
    "speed_factor_first",
    "speed_factor_mid",
    "speed_factor_last",
    "containers",
    "backup_seconds",
]


def _restore_points(version_ids: Sequence[int]) -> Dict[str, int]:
    return {
        "first": version_ids[0],
        "mid": version_ids[len(version_ids) // 2],
        "last": version_ids[-1],
    }


def run_single(
    scheme: str,
    workload: Union[str, SyntheticWorkload],
    scheme_kwargs: Optional[Mapping] = None,
    versions: Optional[int] = None,
    chunks_per_version: Optional[int] = None,
    container_size: int = CONTAINER_SIZE,
) -> Dict[str, object]:
    """Run one (scheme, workload) cell; returns a flat metric row."""
    kwargs = dict(scheme_kwargs or {})
    if isinstance(workload, str):
        if scheme == "hidestore":
            kwargs.setdefault("history_depth", history_depth_for(workload))
        name = workload
        workload = load_preset(workload, versions=versions, chunks_per_version=chunks_per_version)
    else:
        name = workload.spec.name
    system = build_scheme(scheme, container_size=container_size, **kwargs)

    started = time.perf_counter()
    for stream in workload.versions():
        system.backup(stream)
    backup_seconds = time.perf_counter() - started

    version_ids = system.version_ids()
    points = _restore_points(version_ids)
    speed = {
        label: system.restore(version).speed_factor
        for label, version in points.items()
    }
    report = system.report
    return {
        "scheme": scheme,
        "workload": name,
        "versions": report.versions,
        "logical_bytes": report.logical_bytes,
        "stored_bytes": report.stored_bytes,
        "dedup_ratio": report.dedup_ratio,
        "lookups_per_gb": report.lookups_per_gb,
        "index_bytes_per_mb": report.index_bytes_per_mb,
        "speed_factor_first": speed["first"],
        "speed_factor_mid": speed["mid"],
        "speed_factor_last": speed["last"],
        "containers": len(system.containers),
        "backup_seconds": backup_seconds,
    }


def run_matrix(
    schemes: Mapping[str, Mapping],
    presets: Iterable[Union[str, SyntheticWorkload]],
    versions: Optional[int] = None,
    chunks_per_version: Optional[int] = None,
    container_size: int = CONTAINER_SIZE,
    progress=None,
    jobs: int = 1,
) -> List[Dict[str, object]]:
    """Run every (scheme, workload) combination.

    Args:
        schemes: scheme name -> extra kwargs for its factory.
        presets: preset names (or prebuilt workloads).
        progress: optional callable receiving each finished row.
        jobs: worker processes (1 = in-process).  Parallel runs require
            preset *names* (picklable cells); prebuilt workload objects fall
            back to in-process execution.
    """
    cells = [
        (scheme, preset, kwargs)
        for preset in presets
        for scheme, kwargs in schemes.items()
    ]
    rows: List[Dict[str, object]] = []
    parallelisable = jobs > 1 and all(isinstance(c[1], str) for c in cells)
    if parallelisable:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=jobs) as pool:
            futures = [
                pool.submit(
                    run_single, scheme, preset,
                    scheme_kwargs=kwargs, versions=versions,
                    chunks_per_version=chunks_per_version,
                    container_size=container_size,
                )
                for scheme, preset, kwargs in cells
            ]
            for future in futures:
                row = future.result()
                rows.append(row)
                if progress is not None:
                    progress(row)
        return rows
    for scheme, preset, kwargs in cells:
        row = run_single(
            scheme,
            preset,
            scheme_kwargs=kwargs,
            versions=versions,
            chunks_per_version=chunks_per_version,
            container_size=container_size,
        )
        rows.append(row)
        if progress is not None:
            progress(row)
    return rows


def write_csv(rows: Iterable[Mapping[str, object]], path: str) -> int:
    """Write result rows to CSV (stable column order); returns row count."""
    count = 0
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.DictWriter(handle, fieldnames=COLUMNS)
        writer.writeheader()
        for row in rows:
            writer.writerow({key: row.get(key, "") for key in COLUMNS})
            count += 1
    return count


def read_csv(path: str) -> List[Dict[str, str]]:
    """Read back a results CSV (values as strings)."""
    with open(path, "r", newline="", encoding="utf-8") as handle:
        return list(csv.DictReader(handle))
