"""Report dataclasses returned by the backup/restore pipelines."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from .units import GiB, MiB


@dataclass
class BackupReport:
    """Outcome of deduplicating one backup version."""

    version_id: int
    tag: str
    total_chunks: int = 0
    duplicate_chunks: int = 0
    unique_chunks: int = 0  # chunks physically written (incl. rewrites)
    rewritten_chunks: int = 0
    logical_bytes: int = 0
    stored_bytes: int = 0  # bytes physically written (incl. rewrites)
    disk_index_lookups: int = 0
    containers_written: int = 0
    elapsed_seconds: float = 0.0

    @property
    def dedup_eliminated_bytes(self) -> int:
        return self.logical_bytes - self.stored_bytes

    @property
    def lookups_per_gb(self) -> float:
        """On-disk index probes per GB of logical data (Fig. 9 metric)."""
        if self.logical_bytes == 0:
            return 0.0
        return self.disk_index_lookups / (self.logical_bytes / GiB)


@dataclass
class SystemReport:
    """Cumulative system-level metrics across all versions backed up."""

    versions: int = 0
    logical_bytes: int = 0
    stored_bytes: int = 0
    disk_index_lookups: int = 0
    index_memory_bytes: int = 0
    per_version: List[BackupReport] = field(default_factory=list)

    @property
    def dedup_ratio(self) -> float:
        """Eliminated bytes over logical bytes (the paper's Table 1 metric)."""
        if self.logical_bytes == 0:
            return 0.0
        return (self.logical_bytes - self.stored_bytes) / self.logical_bytes

    @property
    def lookups_per_gb(self) -> float:
        if self.logical_bytes == 0:
            return 0.0
        return self.disk_index_lookups / (self.logical_bytes / GiB)

    @property
    def index_bytes_per_mb(self) -> float:
        """Resident index bytes per MB of logical data (Fig. 10 metric)."""
        if self.logical_bytes == 0:
            return 0.0
        return self.index_memory_bytes / (self.logical_bytes / MiB)
