"""Repository front end: one surface for local directories and the service.

The CLI, the backup daemon and the remote client all drive repositories
through the same small vocabulary:

* ``backup_tree(entries, tag)`` / ``backup_blocks(blocks, plan, tag)``
* ``restore(version) -> (plan, data_iter)``
* ``versions()`` / ``stats()`` / ``delete_oldest()``

:class:`LocalRepository` implements it over an on-disk HiDeStore repository
(the layout the ``hidestore`` CLI has always used); the server hosts one
``LocalRepository`` per tenant, and :class:`repro.client.RemoteRepository`
implements the same vocabulary over the wire — so ``cmd_backup`` et al.
genuinely share one code path between ``repo/`` and ``--remote HOST:PORT``.

Failed backups **roll back**: a backup that dies mid-stream (client
disconnect, storage error, process kill) leaves no recipe, no manifest, no
orphaned container files and no ``*.tmp`` litter — the repository looks
exactly as it did before the attempt.  This is the invariant the network
daemon's "partially streamed versions never become visible" guarantee is
built on.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from .chunking import FastCDCChunker
from .core.checkpoint import checkpoint_document, system_from_document
from .core.hidestore import HiDeStore
from .errors import ObjectMissingError, ReproError, RestoreError, VersionNotFoundError
from .observability import MetricsRegistry, get_registry
from .storage.repo import RepoStorage

#: (relative name, byte size) rows describing the files of one snapshot.
FilePlan = List[Tuple[str, int]]


def repo_paths(repo: str) -> Tuple[str, str, str]:
    """The ``containers/``, ``recipes/``, ``manifests/`` dirs of a repo."""
    return (
        os.path.join(repo, "containers"),
        os.path.join(repo, "recipes"),
        os.path.join(repo, "manifests"),
    )


def checkpoint_path(repo: str) -> str:
    """Where a repository persists its volatile engine state."""
    return os.path.join(repo, "checkpoint.json")


def open_repository(
    repo: str,
    history_depth: int = 1,
    compress: bool = False,
    metrics: Optional[MetricsRegistry] = None,
    storage: Optional[RepoStorage] = None,
) -> HiDeStore:
    """Open (or initialise) a HiDeStore repository.

    ``repo`` is a repository spec: a plain directory (the historical
    form), or a backend URL — ``file://PATH``, ``sqlite://PATH.db``,
    ``s3://HOST:PORT/BUCKET`` — optionally with ``?archive=URL`` sending
    sealed containers to a second (cold-tier) backend.

    The sealed world lives in the container and recipe stores the spec
    names; the volatile state (T1 tables, active containers, deletion
    tags) is reloaded from the ``checkpoint.json`` object — written after
    every backup — so physical locality and the version counter survive
    across invocations.
    """
    if storage is None:
        storage = RepoStorage(repo, compress=compress, metrics=metrics)
    storage.prepare()
    container_store = storage.container_store()
    recipe_store = storage.recipe_store()
    if storage.has_checkpoint():
        store = system_from_document(
            storage.read_checkpoint_document(), container_store, recipe_store
        )
        _discard_uncommitted_tail(storage, store)
        return store
    store = HiDeStore(
        container_store=container_store,
        recipe_store=recipe_store,
        history_depth=history_depth,
    )
    existing = store.recipes.version_ids()
    if existing:
        # Legacy repository without a checkpoint: the previous session must
        # have retired the store; resume via recipe priming (§4.1).
        store._next_version = existing[-1] + 1
        store._retired = True
    return store


def _discard_uncommitted_tail(storage: RepoStorage, store: HiDeStore) -> None:
    """Crash recovery at open time: erase versions the checkpoint never saw.

    The checkpoint is written after every successful backup, so it is the
    commit record.  A recipe or manifest whose id is at or past the
    checkpoint's ``next_version`` is debris from a backup that died between
    its recipe/manifest writes and the checkpoint save (power loss, a
    SIGKILL'd daemon): left in place it is listed by ``versions()`` but may
    be unrestorable, and — worse — the stale version counter would hand the
    same id to the next backup, silently overwriting one version with
    another.  Containers past the checkpointed allocator are deliberately
    kept: the §4.3 in-place rewrite of the previous recipe may already
    reference migrated chunks inside them, so they are at worst orphaned
    space, never safe to drop blindly.
    """
    mark = store._next_version
    probe = storage.recipe_store()
    tail = [vid for vid in probe.version_ids() if vid >= mark]
    for vid in tail:
        probe.delete(vid)
    stale_manifests = [vid for vid in storage.manifest_ids() if vid >= mark]
    for vid in stale_manifests:
        storage.delete_manifest(vid)
    if tail or stale_manifests:
        storage.sweep()


def validate_rel_name(rel: str) -> str:
    """Vet one relative file name from a plan or manifest; returns it.

    Rel names arrive from untrusted places — ``BACKUP_BEGIN`` frames over
    the network, manifests on disk — and are both joined under restore
    target directories and embedded in the tab-separated manifest
    encoding.  Reject anything that could escape the join (absolute
    paths, drive prefixes, ``..`` components) or corrupt the manifest
    (control characters, including tab and newline).
    """
    if not isinstance(rel, str) or not rel:
        raise ReproError("empty relative file name in file plan")
    if any(ord(ch) < 32 or ord(ch) == 127 for ch in rel):
        raise ReproError(f"control character in file name {rel!r}")
    if rel[0] in "/\\" or os.path.isabs(rel) or (len(rel) >= 2 and rel[1] == ":"):
        raise ReproError(f"absolute file name in file plan: {rel!r}")
    for part in rel.replace("\\", "/").split("/"):
        if part in ("", ".", ".."):
            raise ReproError(f"unsafe path component in file name {rel!r}")
    return rel


def read_tree(source: str) -> List[Tuple[str, str]]:
    """All files under ``source`` as (relative name, absolute path), sorted."""
    entries = []
    for root, _dirs, files in os.walk(source):
        for name in files:
            path = os.path.join(root, name)
            entries.append((os.path.relpath(path, source), path))
    entries.sort()
    return entries


def stream_blocks(
    entries: List[Tuple[str, str]], block_size: int = 1 << 20
) -> Iterator[bytes]:
    """Concatenated file contents as fixed-size blocks, in manifest order."""
    for _rel, path in entries:
        with open(path, "rb") as handle:
            while True:
                block = handle.read(block_size)
                if not block:
                    break
                yield block


def materialize(plan: FilePlan, data: Iterable[bytes], target: str) -> int:
    """Split a restored byte stream back into files under ``target``.

    ``plan`` carries the file boundaries (name + length, concatenation
    order); ``data`` yields the reassembled stream in arbitrary block
    sizes.  Returns the number of files written.

    Writes stream: each block is appended to the current file as it
    arrives, so peak memory is one incoming block (plus the partial block
    straddling a file boundary) regardless of file size.  Files are
    written to ``<name>.part`` and renamed into place only once complete —
    a restore that dies mid-stream leaves no truncated files posing as
    good ones, and the ``.part`` litter of the failed file is removed.
    """
    root = os.path.abspath(target)
    os.makedirs(root, exist_ok=True)
    blocks = iter(data)
    #: Tail of the last block that belongs to the *next* file.
    leftover = b""
    restored = 0
    for rel, size in plan:
        validate_rel_name(rel)
        out_path = os.path.join(root, rel)
        if os.path.commonpath([root, os.path.abspath(out_path)]) != root:
            raise RestoreError(f"restore path escapes target directory: {rel!r}")
        os.makedirs(os.path.dirname(out_path) or root, exist_ok=True)
        part_path = out_path + ".part"
        written = 0
        try:
            with open(part_path, "wb") as handle:
                while written < size:
                    if not leftover:
                        try:
                            leftover = next(blocks)
                        except StopIteration:
                            raise RestoreError(
                                f"restore stream ended early: {rel} needs "
                                f"{size} bytes, got {written}"
                            ) from None
                        continue
                    take = min(size - written, len(leftover))
                    handle.write(leftover[:take])
                    written += take
                    leftover = leftover[take:]
            os.replace(part_path, out_path)
        except BaseException:
            try:
                os.remove(part_path)
            except OSError:
                pass
            raise
        restored += 1
    return restored


class LocalRepository:
    """An on-disk HiDeStore repository behind the shared front-end surface.

    Args:
        root: repository directory (created on first backup).
        history_depth: fingerprint-cache look-back for new repositories.
        compress: zlib-compress container files on disk.
        workers / pipeline: parallel-ingest knobs for :meth:`backup_tree`
            (forwarded to the §5.4 engine; the server keeps the defaults).
        metrics: registry for stage-timing histograms (chunking, dedup,
            restore); defaults to the process registry.
        ingest_pool: a daemon-lifetime
            :class:`~repro.engine.shared_pool.SharedChunkPool`; when set,
            :meth:`backup_blocks` chunks its segments on the shared pool
            instead of inline.  The chunk sequence is byte-identical
            either way (see the determinism contract in that module).

    Thread-safety: backups and deletions must be externally serialised (the
    daemon's per-repo writer lock does this); concurrent restores and stats
    are safe — the engine's internal lock guards the flatten/maintenance
    steps they share.
    """

    def __init__(
        self,
        root: str,
        history_depth: int = 1,
        compress: bool = False,
        workers: int = 1,
        pipeline: bool = False,
        metrics: Optional[MetricsRegistry] = None,
        ingest_pool=None,
    ) -> None:
        self.root = root
        self.history_depth = history_depth
        self.compress = compress
        self.workers = workers
        self.pipeline = pipeline
        self.ingest_pool = ingest_pool
        self.metrics = metrics if metrics is not None else get_registry()
        self.storage = RepoStorage(root, compress=compress, metrics=self.metrics)
        self._store: Optional[HiDeStore] = None
        self._open_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Engine lifecycle
    # ------------------------------------------------------------------
    def _open(self) -> HiDeStore:
        with self._open_lock:
            if self._store is None:
                self._store = open_repository(
                    self.root, self.history_depth,
                    compress=self.compress, metrics=self.metrics,
                    storage=self.storage,
                )
            return self._store

    def invalidate(self) -> None:
        """Drop the cached engine; the next operation reloads from disk.

        Required after anything mutates the repository files behind the
        engine's back — a replication commit landing on a mirror tenant, a
        repair overwriting container files — so the cached store never
        serves state the disk no longer holds.
        """
        with self._open_lock:
            self._store = None

    def verify(self, deep: bool = False) -> Dict:
        """Integrity-check the repository; returns the report document.

        ``deep`` additionally re-hashes every stored chunk payload and
        container file against its fingerprint — the check that catches
        silent bit-flips.  Always verifies the on-disk state (fresh
        engine), so damage inflicted after the engine was cached is seen.
        """
        from .replication.repair import verify_repository

        report = verify_repository(self.root, deep=deep)
        return {
            "ok": report.ok,
            "versions_checked": report.versions_checked,
            "entries_checked": report.entries_checked,
            # Bounded for the wire; issues_total carries the true count.
            "issues": report.issues[:200],
            "issues_total": len(report.issues),
            "summary": report.summary(),
        }

    def _open_for_backup(self) -> HiDeStore:
        store = self._open()
        # A retired store cannot take further backups until its cache is
        # rebuilt from the last recipe (§4.1's T1 prefetch, cross-session).
        if store._retired and store.recipes.latest_version() is not None:
            store.prime_from_recipe()
        else:
            store._retired = False
        return store

    def _manifest_path(self, version_id: int) -> str:
        """Manifest file path (plain-directory repositories only)."""
        return os.path.join(repo_paths(self.root)[2], f"manifest-{version_id:08d}.txt")

    def _save_checkpoint(self, store: HiDeStore) -> None:
        self.storage.write_checkpoint_document(checkpoint_document(store))

    # ------------------------------------------------------------------
    # Backup
    # ------------------------------------------------------------------
    def backup_tree(self, entries: List[Tuple[str, str]], tag: str = "") -> Dict:
        """Back up files from disk ((rel, path) rows, see :func:`read_tree`)."""
        plan: FilePlan = [
            (validate_rel_name(rel), os.path.getsize(path)) for rel, path in entries
        ]
        if self.workers > 1 or self.pipeline:
            return self._backup_pipelined(entries, plan, tag)
        return self.backup_blocks(stream_blocks(entries), plan, tag)

    def backup_blocks(self, blocks: Iterable[bytes], plan: FilePlan, tag: str = "") -> Dict:
        """Back up an incoming byte-block stream as one version.

        ``plan`` carries the file boundaries for the manifest; the blocks
        are the concatenation of those files, in order (any block sizing).
        This is the entry point the network daemon feeds frames into:
        chunking + fingerprinting run lazily, so ingest overlaps with frame
        arrival instead of buffering the whole version first.

        The stream is re-framed into fixed-size ingest segments
        (:func:`~repro.engine.shared_pool.iter_segments`); each segment is
        chunked independently with the vectorized FastCDC kernel — inline
        here, or on the daemon's shared multiprocess pool when
        ``ingest_pool`` is wired in.  Segmentation depends only on the
        byte stream, so every execution mode (serial, 1..N pool workers,
        thread pool) produces byte-identical recipes, containers and
        dedup stats.
        """
        from .chunking.fingerprint import Fingerprinter
        from .engine.pipeline import LazyBackupStream
        from .engine.shared_pool import chunk_segment, iter_segments

        plan = [(validate_rel_name(rel), int(size)) for rel, size in plan]
        store = self._open_for_backup()
        chunker = FastCDCChunker()
        fingerprinter = Fingerprinter()
        timings = {"chunking": 0.0}

        def chunks():
            # Accumulate chunking wall time inside the lazy stream.  Note
            # this includes waiting on the source iterator (frame arrival,
            # for network ingest) and, on the pooled path, waiting for
            # worker results — it bounds the time the dedup engine spent
            # blocked on upstream stages.
            if self.ingest_pool is not None:
                # The pool segments with its own configured segment size,
                # so its slabs always fit the descriptors it hands out.
                batches = self.ingest_pool.chunk_blocks(blocks)
            else:
                batches = (
                    chunk_segment(chunker, fingerprinter, segment)
                    for segment in iter_segments(blocks)
                )
            mark = time.perf_counter()
            for batch in batches:
                timings["chunking"] += time.perf_counter() - mark
                yield from batch
                mark = time.perf_counter()
            timings["chunking"] += time.perf_counter() - mark

        stream = LazyBackupStream(chunks(), tag=tag or "")
        started = time.perf_counter()
        report = self._guarded_backup(store, lambda: store.backup(stream), plan)
        total = time.perf_counter() - started
        self.metrics.observe("repo.backup_seconds", total)
        self.metrics.observe("repo.chunking_seconds", timings["chunking"])
        self.metrics.observe("repo.dedup_seconds", max(0.0, total - timings["chunking"]))
        return report

    def _backup_pipelined(self, entries, plan: FilePlan, tag: str) -> Dict:
        from .engine import (
            MaintenanceExecutor,
            ParallelChunkPipeline,
            install_write_behind,
        )

        store = self._open_for_backup()
        write_behind = None
        executor = None
        if self.pipeline:
            write_behind = install_write_behind(store)
            executor = MaintenanceExecutor()
            store.deferred_maintenance = True
            store.attach_maintenance_executor(executor)

        def items() -> Iterator[bytes]:
            for _rel, path in entries:
                with open(path, "rb") as handle:
                    yield handle.read()

        chunker = FastCDCChunker()
        try:

            def run():
                with ParallelChunkPipeline(chunker=chunker, workers=self.workers) as pipe:
                    return store.backup(pipe.stream(items(), tag=tag or ""))

            # save_checkpoint (inside the guard) drains queued maintenance,
            # so the background executor is idle by the time it is closed.
            started = time.perf_counter()
            report = self._guarded_backup(store, run, plan)
            self.metrics.observe("repo.backup_seconds", time.perf_counter() - started)
            return report
        finally:
            if executor is not None:
                executor.close()
            if write_behind is not None:
                write_behind.close()

    def _guarded_backup(self, store: HiDeStore, run, plan: FilePlan) -> Dict:
        """Run one backup attempt; on any failure, roll the repo back."""
        mark = store.containers.next_id
        versions_before = set(store.recipes.version_ids())
        latest = store.recipes.latest_version()
        prev_blob: Optional[bytes] = None
        if latest is not None:
            # The previous recipe is the one chunk-filter maintenance may
            # rewrite in place (§4.3); snapshot it for rollback.
            try:
                prev_blob = self.storage.read_object(
                    "recipe", f"recipe-{latest:08d}.hdsr"
                )
            except ObjectMissingError:
                prev_blob = None
        try:
            report = run()
            self.storage.write_manifest(
                report.version_id,
                "".join(f"{size}\t{rel}\n" for rel, size in plan),
            )
            self._save_checkpoint(store)
        except BaseException:
            self._rollback(mark, versions_before, latest, prev_blob)
            raise
        return {
            "version_id": report.version_id,
            "tag": report.tag,
            "total_chunks": report.total_chunks,
            "unique_chunks": report.unique_chunks,
            "duplicate_chunks": report.duplicate_chunks,
            "logical_bytes": report.logical_bytes,
            "stored_bytes": report.stored_bytes,
        }

    def _rollback(
        self,
        mark: int,
        versions_before: set,
        latest: Optional[int],
        prev_blob: Optional[bytes],
    ) -> None:
        """Erase every trace of a failed backup attempt.

        Deletes recipes/manifests of versions that were not visible before
        the attempt, restores the previous recipe (in-place chain updates),
        removes container objects allocated during the attempt and drops
        the in-memory engine — the next operation reloads from the
        checkpoint, which was last written at a good version boundary.
        Foreign container names (e.g. ``container-backup.hdsc``) are not
        ours to delete; only the 8-digit IDs from this attempt go.
        """
        with self._open_lock:
            self._store = None
        probe = self.storage.recipe_store()
        for vid in probe.version_ids():
            if vid not in versions_before:
                probe.delete(vid)
        if prev_blob is not None and latest is not None:
            self.storage.write_object(
                "recipe", f"recipe-{latest:08d}.hdsr", prev_blob
            )
        self.storage.sweep()
        for cid in self.storage.container_object_ids():
            if cid >= mark:
                self.storage.delete_container_object(cid)
        for vid in self.storage.manifest_ids():
            if vid not in versions_before:
                self.storage.delete_manifest(vid)

    # ------------------------------------------------------------------
    # Restore
    # ------------------------------------------------------------------
    def restore_plan(self, version_id: int) -> FilePlan:
        """The file boundaries of a stored version (from its manifest)."""
        text = self.storage.read_manifest(version_id)
        if text is None:
            raise VersionNotFoundError(f"no manifest for version {version_id}")
        plan: FilePlan = []
        for line in text.splitlines():
            size_str, rel = line.split("\t", 1)
            plan.append((rel, int(size_str)))
        return plan

    def restore(
        self,
        version_id: int,
        *,
        workers: int = 1,
        readahead: Optional[int] = None,
        verify: bool = False,
        file: Optional[str] = None,
    ) -> Tuple[FilePlan, Iterator[bytes]]:
        """A version's file plan plus its reassembled byte stream.

        Args:
            workers: container-reader pool size; ``1`` restores serially,
                ``>1`` prefetches container reads through the pipelined
                engine (:func:`repro.engine.restore.restore_stream`).
            readahead: in-flight container-read cap (default 2×workers).
            verify: re-hash every chunk against its recipe fingerprint;
                a mismatch raises :class:`~repro.errors.RestoreError`.
            file: restore only this manifest-relative file — only the
                containers covering its entry range are read.
        """
        from .engine.restore import restore_stream

        store = self._open()
        plan = self.restore_plan(version_id)
        start = stop = None
        head_skip = 0
        length: Optional[int] = None
        if file is not None:
            plan, start, stop, head_skip, length = self._partial_spec(
                store, version_id, plan, file
            )

        def data() -> Iterator[bytes]:
            started = time.perf_counter()
            skip, remaining = head_skip, length
            for chunk in restore_stream(
                store, version_id,
                workers=workers, readahead=readahead, verify=verify,
                start=start, stop=stop, metrics=self.metrics,
            ):
                if chunk.data is None:
                    raise ReproError("repository chunk carries no payload")
                block = chunk.data
                if skip:
                    take = min(skip, len(block))
                    block = block[take:]
                    skip -= take
                    if not block:
                        continue
                if remaining is not None:
                    if remaining <= 0:
                        break
                    block = block[:remaining]
                    remaining -= len(block)
                yield block
            self.metrics.observe("repo.restore_seconds", time.perf_counter() - started)

        return plan, data()

    def _partial_spec(
        self, store: HiDeStore, version_id: int, plan: FilePlan, rel: str
    ) -> Tuple[FilePlan, int, int, int, int]:
        """Locate one file inside a version's chunk stream.

        Returns the single-file plan plus the entry range ``[start, stop)``
        covering the file's bytes, the byte offset of the file within the
        first entry (``head_skip``) and the file length.  Offsets come from
        the manifest (files concatenate in manifest order); entry sizes are
        chain-invariant, so the range computed from the un-flattened recipe
        stays valid after Algorithm 1 runs.
        """
        offset = 0
        size: Optional[int] = None
        for name, file_size in plan:
            if name == rel:
                size = file_size
                break
            offset += file_size
        if size is None:
            raise VersionNotFoundError(
                f"no file {rel!r} in version {version_id}"
            )
        sizes = [entry.size for entry in store.recipes.peek(version_id).entries]
        start = stop = len(sizes)
        position = 0
        for i, entry_size in enumerate(sizes):
            if position + entry_size > offset and start == len(sizes):
                start = i
            if position >= offset + size:
                stop = i
                break
            position += entry_size
        if size == 0:
            start = stop = 0
        head_skip = offset - sum(sizes[:start])
        return [(rel, size)], start, stop, head_skip, size

    # ------------------------------------------------------------------
    # Introspection + deletion
    # ------------------------------------------------------------------
    def versions(self) -> List[Dict]:
        return self._open().version_summaries()

    def stats(self) -> Dict:
        store = self._open()
        logical = sum(
            store.recipes.peek(v).logical_size for v in store.recipes.version_ids()
        )
        stored = store.containers.stored_bytes() + store.pool.hot_bytes()
        ratio = 0.0 if logical == 0 else (logical - stored) / logical
        return {
            "versions": len(store.recipes.version_ids()),
            "logical_bytes": logical,
            "stored_bytes": stored,
            "dedup_ratio": ratio,
            "containers_archival": len(store.containers),
            "containers_active": store.pool.container_count(),
            "containers_read": store.io.container_reads,
            "containers_written": store.io.container_writes,
            "pending_maintenance": store.pending_maintenance,
        }

    def delete_oldest(self) -> Dict:
        store = self._open()
        versions = store.recipes.version_ids()
        if not versions:
            raise VersionNotFoundError("repository is empty")
        oldest = versions[0]
        stats = store.delete_oldest()
        self.storage.delete_manifest(oldest)
        if self.storage.has_checkpoint():
            self._save_checkpoint(store)
        return {
            "version_id": oldest,
            "containers_deleted": stats.containers_deleted,
            "bytes_reclaimed": stats.bytes_reclaimed,
            "delete_seconds": stats.delete_seconds,
        }
