"""repro — a from-scratch reproduction of HiDeStore (MIDDLEWARE 2020).

*"Improving the Restore Performance via Physical-Locality Middleware for
Backup Systems"* — Li, Hua, Cao, Zhang.

The package is organised like the system in the paper:

* :mod:`repro.chunking` — CDC chunkers (TTTD, Rabin, FastCDC, AE) + SHA-1;
* :mod:`repro.storage` — 4 MiB containers, recipes, I/O accounting;
* :mod:`repro.index` — DDFS / Sparse Indexing / SiLo baselines;
* :mod:`repro.rewriting` — Capping / CBR / CFL / FBW baselines;
* :mod:`repro.restore` — container/chunk caches, FAA, ALACC;
* :mod:`repro.pipeline` — the Destor-like platform assembling the above;
* :mod:`repro.core` — **HiDeStore itself** (double cache, chunk filter,
  recipe chain, GC-free deletion);
* :mod:`repro.workloads` — scaled synthetic equivalents of the paper's
  datasets plus traces and real byte trees;
* :mod:`repro.metrics` / :mod:`repro.analysis` — the paper's metrics and
  the §3 observation experiment.

Quickstart::

    from repro import HiDeStore, load_preset

    system = HiDeStore()
    for stream in load_preset("kernel", versions=10).versions():
        system.backup(stream)
    result = system.restore(10)
    print(result.speed_factor)
"""

from .archive import DirectoryArchive, Manifest
from .chunking import (
    AEChunker,
    BackupStream,
    Chunk,
    FastCDCChunker,
    Fingerprinter,
    FixedChunker,
    RabinChunker,
    TTTDChunker,
    make_chunker,
)
from .core import DoubleHashCache, HiDeStore
from .errors import ReproError
from .experiments import run_matrix, run_single, write_csv
from .index import DDFSIndex, ExactFullIndex, SiLoIndex, SparseIndex, make_index
from .pipeline import BackupSystem, SCHEMES, build_scheme
from .restore import (
    ALACCRestore,
    ChunkCacheRestore,
    ContainerCacheRestore,
    FAARestore,
    OptimalContainerCacheRestore,
    make_restorer,
)
from .rewriting import (
    CBRRewriter,
    CFLRewriter,
    CappingRewriter,
    FBWRewriter,
    NoRewriter,
    make_rewriter,
)
from .storage import (
    Container,
    FileContainerStore,
    FileRecipeStore,
    IOStats,
    MemoryContainerStore,
    MemoryRecipeStore,
    Recipe,
)
from .workloads import SyntheticWorkload, WorkloadSpec, load_preset, preset_names

__version__ = "1.0.0"

__all__ = [
    "AEChunker",
    "ALACCRestore",
    "BackupStream",
    "BackupSystem",
    "CBRRewriter",
    "CFLRewriter",
    "CappingRewriter",
    "Chunk",
    "ChunkCacheRestore",
    "Container",
    "ContainerCacheRestore",
    "DDFSIndex",
    "DirectoryArchive",
    "Manifest",
    "DoubleHashCache",
    "ExactFullIndex",
    "FAARestore",
    "FBWRewriter",
    "FastCDCChunker",
    "FileContainerStore",
    "FileRecipeStore",
    "Fingerprinter",
    "FixedChunker",
    "HiDeStore",
    "IOStats",
    "MemoryContainerStore",
    "MemoryRecipeStore",
    "NoRewriter",
    "OptimalContainerCacheRestore",
    "RabinChunker",
    "Recipe",
    "ReproError",
    "SCHEMES",
    "SiLoIndex",
    "SparseIndex",
    "SyntheticWorkload",
    "TTTDChunker",
    "WorkloadSpec",
    "build_scheme",
    "run_matrix",
    "run_single",
    "write_csv",
    "load_preset",
    "make_chunker",
    "make_index",
    "make_restorer",
    "make_rewriter",
    "preset_names",
    "__version__",
]
