"""Size units and small formatting helpers shared across the package."""

from __future__ import annotations

KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB
TiB = 1024 * GiB

#: Default container payload capacity used throughout the paper (4 MB).
CONTAINER_SIZE = 4 * MiB

#: Average chunk size targeted by the paper's chunkers (4-8 KB); we default
#: to 8 KiB like Destor's TTTD configuration.
AVERAGE_CHUNK_SIZE = 8 * KiB

#: SHA-1 fingerprint width in bytes.
FINGERPRINT_SIZE = 20

#: Bytes per recipe entry: 20-byte fingerprint + 4-byte container ID +
#: 4-byte offset/size (paper §2.1).
RECIPE_ENTRY_SIZE = 28


def format_bytes(n: float) -> str:
    """Render a byte count with a binary-unit suffix, e.g. ``format_bytes(4<<20) == '4.0 MiB'``."""
    value = float(n)
    for suffix in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(value) < 1024.0 or suffix == "TiB":
            if suffix == "B":
                return f"{int(value)} B"
            return f"{value:.1f} {suffix}"
        value /= 1024.0
    raise AssertionError("unreachable")


def parse_bytes(text: str) -> int:
    """Parse a human size string (``"4MiB"``, ``"8 KB"``, ``"123"``) into bytes.

    Decimal suffixes (KB/MB/GB) are treated as binary multiples, matching how
    the paper uses "4MB container" to mean 4 MiB.
    """
    cleaned = text.strip().lower().replace(" ", "")
    multipliers = {
        "tib": TiB, "tb": TiB, "t": TiB,
        "gib": GiB, "gb": GiB, "g": GiB,
        "mib": MiB, "mb": MiB, "m": MiB,
        "kib": KiB, "kb": KiB, "k": KiB,
        "b": 1,
    }
    for suffix, mult in multipliers.items():
        if cleaned.endswith(suffix):
            number = cleaned[: -len(suffix)]
            if not number:
                break
            return int(float(number) * mult)
    try:
        return int(cleaned)
    except ValueError as exc:
        raise ValueError(f"cannot parse size: {text!r}") from exc
