"""Integrity verification ("fsck") for backup systems.

Walks every retained recipe and checks that each chunk reference resolves to
a container actually holding that fingerprint with the recorded size, plus
HiDeStore-specific invariants (active-location map consistency, archival
deletion tags pointing at real containers, chain references in range).

Used by tests, the CLI's ``verify`` command, and available to library users
as ``verify_system(system)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Union

from ..pipeline.system import BackupSystem
from ..storage.recipe import ACTIVE_CID
from .hidestore import HiDeStore


@dataclass
class VerificationReport:
    """Outcome of an integrity walk."""

    versions_checked: int = 0
    entries_checked: int = 0
    issues: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.issues

    def note(self, issue: str) -> None:
        self.issues.append(issue)

    def summary(self) -> str:
        status = "OK" if self.ok else f"{len(self.issues)} issue(s)"
        return (
            f"verified {self.versions_checked} versions / "
            f"{self.entries_checked} chunk references: {status}"
        )


def _check_entry(report, fp, size, container, where) -> None:
    if fp not in container:
        report.note(f"{where}: container {container.container_id} lacks {fp.hex()[:8]}")
        return
    slot = container.get(fp)
    if slot.size != size:
        report.note(
            f"{where}: size mismatch for {fp.hex()[:8]} "
            f"(recipe {size}, container {slot.size})"
        )


def verify_traditional(system: BackupSystem) -> VerificationReport:
    """Verify a :class:`BackupSystem`: every recipe entry must resolve."""
    report = VerificationReport()
    for version_id in system.recipes.version_ids():
        recipe = system.recipes.peek(version_id)
        report.versions_checked += 1
        for i, entry in enumerate(recipe.entries):
            report.entries_checked += 1
            where = f"v{version_id}[{i}]"
            if entry.cid <= 0:
                report.note(f"{where}: non-positive cid {entry.cid} in traditional recipe")
                continue
            if entry.cid not in system.containers:
                report.note(f"{where}: missing container {entry.cid}")
                continue
            container = system.containers.peek(entry.cid)
            _check_entry(report, entry.fingerprint, entry.size, container, where)
    return report


def verify_hidestore(system: HiDeStore) -> VerificationReport:
    """Verify a :class:`HiDeStore`: chains, active map, deletion tags."""
    report = VerificationReport()
    newest = system.recipes.latest_version()
    versions = system.recipes.version_ids()
    version_set = set(versions)

    for version_id in versions:
        recipe = system.recipes.peek(version_id)
        report.versions_checked += 1
        for i, entry in enumerate(recipe.entries):
            report.entries_checked += 1
            where = f"v{version_id}[{i}]"
            cid = entry.cid
            if cid < 0:
                target = -cid
                if newest is not None and target > newest:
                    # Stale pointer past the newest version: legal, means
                    # "active" — resolved through the location map below.
                    cid = ACTIVE_CID
                elif target not in version_set:
                    report.note(f"{where}: chain points at deleted recipe R_{target}")
                    continue
                else:
                    continue  # chained: the target recipe is checked itself
            if cid == ACTIVE_CID:
                location = system.pool.location.get(entry.fingerprint)
                if location is None:
                    report.note(f"{where}: active chunk {entry.fingerprint.hex()[:8]} "
                                "not in the location map")
                    continue
                if location not in system.pool:
                    report.note(f"{where}: location map points at missing active "
                                f"container {location}")
                    continue
                container = system.pool.peek(location)
                _check_entry(report, entry.fingerprint, entry.size, container, where)
            else:
                if cid not in system.containers:
                    report.note(f"{where}: missing archival container {cid}")
                    continue
                container = system.containers.peek(cid)
                _check_entry(report, entry.fingerprint, entry.size, container, where)

    # Location map entries must exist in their active containers.
    for fp, cid in system.pool.location.items():
        if cid not in system.pool:
            report.note(f"location map: {fp.hex()[:8]} -> missing container {cid}")
        elif fp not in system.pool.peek(cid):
            report.note(f"location map: container {cid} lacks {fp.hex()[:8]}")

    # Deletion tags must reference stored containers.
    for version in system.deletion.tagged_versions():
        for cid in system.deletion.containers_for(version):
            if cid not in system.containers:
                report.note(f"deletion tag v{version}: missing container {cid}")
    return report


def verify_system(system: Union[BackupSystem, HiDeStore]) -> VerificationReport:
    """Dispatch on the system type."""
    if isinstance(system, HiDeStore):
        return verify_hidestore(system)
    return verify_traditional(system)
