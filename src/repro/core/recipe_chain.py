"""HiDeStore's recipe chain and Algorithm 1 (paper §4.3, Figure 7).

A freshly written recipe ``R_n`` records every chunk with ``CID = 0``: all
its chunks are hot, i.e. in active containers.  When, after version ``n``,
the cold residue of version ``n - depth`` is demoted, only the *previous*
recipe ``R_{n-depth}`` is rewritten:

* demoted chunks get their archival container ID (positive);
* everything else — still hot — gets ``-(n-depth+1)``: "follow the chain to
  the next recipe".

Old recipes therefore form a forward-pointing chain.  Restoring an old
version would walk several recipes, so Algorithm 1 (:meth:`RecipeChain.flatten`)
is run offline before restores: it propagates concrete locations backwards
so every entry becomes either a positive archival CID or ``-newest``
("still in the active containers").
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from ..errors import RecipeError
from ..storage.recipe import ACTIVE_CID, Recipe, RecipeStore


@dataclass
class ChainStats:
    """Recipe-update accounting (Figure 12's 'update recipe' latency)."""

    previous_updates: int = 0
    flatten_runs: int = 0
    entries_rewritten: int = 0
    update_seconds: float = 0.0
    flatten_seconds: float = 0.0


class RecipeChain:
    """Maintains HiDeStore's chained recipes over a :class:`RecipeStore`."""

    def __init__(self, recipes: RecipeStore) -> None:
        self.recipes = recipes
        self.stats = ChainStats()

    # ------------------------------------------------------------------
    def write_fresh(self, recipe: Recipe) -> None:
        """Persist a just-deduplicated version's recipe.

        Entries are ``0`` (the chunk sits in the active containers) or, for
        a reopened system whose hot set was already retired to archival
        containers, a positive archival CID.  Negative chain references are
        never valid in a fresh recipe.
        """
        for entry in recipe.entries:
            if entry.cid < ACTIVE_CID:
                raise RecipeError(
                    f"fresh HiDeStore recipes cannot chain; found cid={entry.cid}"
                )
        self.recipes.write(recipe)

    def update_previous(
        self, previous_version: int, moved: Mapping[bytes, int], next_version: int
    ) -> int:
        """Rewrite ``R_previous`` after demotion (the per-version update).

        Args:
            previous_version: the recipe to update (``n - depth``).
            moved: fingerprint -> archival CID of the just-demoted cold set.
            next_version: the chain target for still-hot chunks
                (``previous_version + 1``).

        Returns the number of entries rewritten.
        """
        started = time.perf_counter()
        if previous_version not in self.recipes:
            raise RecipeError(f"no recipe R_{previous_version} to update")
        recipe = self.recipes.read(previous_version)
        rewritten = 0
        for entry in recipe.entries:
            if entry.cid > 0:
                continue  # already archival (possible with history depth > 1)
            archival = moved.get(entry.fingerprint)
            if archival is not None:
                entry.cid = archival
            else:
                entry.cid = -next_version
            rewritten += 1
        self.recipes.write(recipe)
        self.stats.previous_updates += 1
        self.stats.entries_rewritten += rewritten
        self.stats.update_seconds += time.perf_counter() - started
        return rewritten

    # ------------------------------------------------------------------
    def flatten(self, newest: Optional[int] = None) -> int:
        """Algorithm 1: eliminate chain dependencies among all recipes.

        Walks recipes from the newest to the oldest, carrying a hash table of
        known archival locations; every chained entry is resolved to its
        archival CID, or to ``-newest`` when the chunk is still hot (active
        containers).  Safe to re-run at any time (idempotent).

        Returns the number of entries rewritten.
        """
        started = time.perf_counter()
        versions = self.recipes.version_ids()
        if not versions:
            return 0
        if newest is None:
            newest = versions[-1]
        known: Dict[bytes, int] = {}
        rewritten = 0
        for version in reversed(versions):
            if version > newest:
                continue
            recipe = self.recipes.read(version)
            changed = False
            for entry in recipe.entries:
                if entry.cid > 0:
                    known.setdefault(entry.fingerprint, entry.cid)
                    continue
                if version == newest:
                    continue  # the newest recipe's 0-entries stay active
                resolved = known.get(entry.fingerprint)
                target = resolved if resolved is not None else -newest
                if entry.cid != target:
                    entry.cid = target
                    changed = True
                    rewritten += 1
            if changed:
                self.recipes.write(recipe)
        self.stats.flatten_runs += 1
        self.stats.entries_rewritten += rewritten
        self.stats.flatten_seconds += time.perf_counter() - started
        return rewritten

    # ------------------------------------------------------------------
    def resolve_entry_location(
        self, fingerprint: bytes, cid: int, newest: int, max_hops: int = 64
    ) -> int:
        """Follow the chain for one entry without flattening.

        Returns a positive archival CID, or ``ACTIVE_CID`` when the chunk is
        in the active containers.  Used by tests and by restores that skip
        the offline flatten.
        """
        hops = 0
        current = cid
        while True:
            if current > 0:
                return current
            if current == ACTIVE_CID:
                return ACTIVE_CID
            target = -current
            if target > newest:
                return ACTIVE_CID
            hops += 1
            if hops > max_hops:
                raise RecipeError(
                    f"recipe chain for {fingerprint.hex()[:8]} exceeds {max_hops} hops"
                )
            recipe = self.recipes.read(target)
            found = None
            for entry in recipe.entries:
                if entry.fingerprint == fingerprint:
                    found = entry.cid
                    break
            if found is None:
                raise RecipeError(
                    f"chain for {fingerprint.hex()[:8]} points to R_{target}, "
                    "which does not contain the chunk"
                )
            if target == newest and found == ACTIVE_CID:
                return ACTIVE_CID
            if found == current and target == newest:
                return ACTIVE_CID
            current = found
