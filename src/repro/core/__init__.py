"""HiDeStore core: the paper's contribution.

* :class:`~repro.core.double_cache.DoubleHashCache` — §4.1's T1/T2 cache;
* :class:`~repro.core.chunk_filter.ActiveContainerPool` — §4.2's filter;
* :class:`~repro.core.recipe_chain.RecipeChain` — §4.3 / Algorithm 1;
* :class:`~repro.core.deletion.DeletionManager` — §4.5's GC-free expiry;
* :class:`~repro.core.hidestore.HiDeStore` — the assembled system.
"""

from .checkpoint import load_checkpoint, save_checkpoint
from .chunk_filter import ActiveContainerPool, FilterStats
from .deletion import DeletionManager, DeletionStats
from .double_cache import CacheEntry, DoubleHashCache
from .hidestore import HiDeStore
from .multi import MultiClientHiDeStore
from .recipe_chain import ChainStats, RecipeChain
from .verify import VerificationReport, verify_hidestore, verify_system, verify_traditional

__all__ = [
    "ActiveContainerPool",
    "CacheEntry",
    "ChainStats",
    "DeletionManager",
    "DeletionStats",
    "DoubleHashCache",
    "FilterStats",
    "HiDeStore",
    "MultiClientHiDeStore",
    "load_checkpoint",
    "save_checkpoint",
    "RecipeChain",
    "VerificationReport",
    "verify_hidestore",
    "verify_system",
    "verify_traditional",
]
