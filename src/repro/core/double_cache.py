"""HiDeStore's double-hash fingerprint cache (paper §4.1, Figure 5).

Two hash tables: ``T1`` holds the chunks of the *previous* backup version,
``T2`` collects the chunks of the *current* one.  Deduplication searches only
these tables — never a full on-disk index — because the §3 observation says
chunks absent from the previous version have negligible probability of
recurring.  The three classification cases:

* miss both → **unique**: caller stores the chunk and inserts it into T2;
* hit T1 → **duplicate & hot**: the entry migrates T1 → T2;
* hit T2 → **duplicate**: nothing to do.

After a version completes, the residue of T1 is exactly the **cold** set
(chunks whose last appearance was the previous version); T2 becomes the next
version's T1.

For workloads like macos where chunks skip one version before recurring
(Figure 3d), ``history_depth`` keeps more than one previous table; a chunk is
cold only after missing ``history_depth`` consecutive versions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

from ..errors import IndexError_
from ..units import RECIPE_ENTRY_SIZE

#: :meth:`DoubleHashCache.lookup_many` marker for a fingerprint whose
#: *earlier occurrence in the same batch* was unique: by the time a
#: sequential scan would classify this occurrence, the caller has stored
#: the chunk and inserted it into T2, so it is a duplicate — but its entry
#: (the assigned container ID) only exists after the caller's insert.
#: Resolve with :meth:`DoubleHashCache.current_entry` post-insert.
BATCH_DUPLICATE = object()


@dataclass
class CacheEntry:
    """Metadata held per fingerprint: chunk size + active container ID (CID)."""

    size: int
    cid: int


class DoubleHashCache:
    """The T1/T2 fingerprint cache.

    Args:
        history_depth: number of previous versions deduplicated against
            (1 per the paper; 2 for macos-like skip-a-version workloads).
    """

    def __init__(self, history_depth: int = 1) -> None:
        if history_depth < 1:
            raise IndexError_("history_depth must be >= 1")
        self.history_depth = history_depth
        # Oldest table first; at most history_depth previous tables.
        self._previous: List[Dict[bytes, CacheEntry]] = []
        self._current: Dict[bytes, CacheEntry] = {}
        self.lookups = 0
        self.hits = 0

    # ------------------------------------------------------------------
    # Classification (Figure 5's three cases)
    # ------------------------------------------------------------------
    def classify(self, fingerprint: bytes) -> Optional[CacheEntry]:
        """Classify an incoming fingerprint.

        Returns the cache entry if the chunk is a **duplicate** (migrating a
        T1 hit into T2 as a side effect), or ``None`` for a **unique** chunk
        (the caller must store it and call :meth:`insert`).
        """
        self.lookups += 1
        entry = self._current.get(fingerprint)
        if entry is not None:  # Case three: already hot this version.
            self.hits += 1
            return entry
        # Case two: hit a previous version's table; promote to current.
        # Newest previous table first — the most likely to match.
        for table in reversed(self._previous):
            entry = table.pop(fingerprint, None)
            if entry is not None:
                self._current[fingerprint] = entry
                self.hits += 1
                return entry
        return None  # Case one: unique.

    def lookup_many(self, fingerprints: List[bytes]) -> List[object]:
        """Classify a whole dedup batch in one call.

        Amortises the per-chunk call (and the caller's lock round-trip)
        over the batch while preserving the *sequential* classification
        semantics exactly — counters included.  Per input fingerprint the
        result is one of:

        * a :class:`CacheEntry` — duplicate (T1 hits migrate to T2, as in
          :meth:`classify`);
        * ``None`` — unique: the caller stores the chunk and
          :meth:`insert`\\ s it;
        * :data:`BATCH_DUPLICATE` — duplicate *of a unique earlier in this
          batch*; resolve via :meth:`current_entry` after the inserts.
        """
        results: List[object] = []
        current = self._current
        seen_unique = set()
        for fp in fingerprints:
            self.lookups += 1
            entry = current.get(fp)
            if entry is not None:
                self.hits += 1
                results.append(entry)
                continue
            for table in reversed(self._previous):
                entry = table.pop(fp, None)
                if entry is not None:
                    current[fp] = entry
                    self.hits += 1
                    results.append(entry)
                    break
            else:
                if fp in seen_unique:
                    # Sequentially this occurrence lands after the caller
                    # inserted the first one into T2: a hit.
                    self.hits += 1
                    results.append(BATCH_DUPLICATE)
                else:
                    seen_unique.add(fp)
                    results.append(None)
        return results

    def current_entry(self, fingerprint: bytes) -> Optional[CacheEntry]:
        """The T2 entry for ``fingerprint`` (resolves BATCH_DUPLICATE)."""
        return self._current.get(fingerprint)

    def insert(self, fingerprint: bytes, size: int, cid: int) -> None:
        """Register a just-stored unique chunk in T2."""
        self._current[fingerprint] = CacheEntry(size, cid)

    # ------------------------------------------------------------------
    # Version lifecycle
    # ------------------------------------------------------------------
    def end_version(self) -> Dict[bytes, CacheEntry]:
        """Close the current version; returns the **cold** residue.

        The oldest previous table (chunks that have now missed
        ``history_depth`` consecutive versions) is evicted and returned; the
        current table becomes the newest previous table.
        """
        cold: Dict[bytes, CacheEntry] = {}
        self._previous.append(self._current)
        self._current = {}
        if len(self._previous) > self.history_depth:
            cold = self._previous.pop(0)
        return cold

    def drain(self) -> Dict[bytes, CacheEntry]:
        """Evict *all* remaining previous tables (system shutdown/retire)."""
        drained: Dict[bytes, CacheEntry] = {}
        for table in self._previous:
            drained.update(table)
        self._previous = []
        return drained

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def apply_relocations(self, relocations: Mapping[bytes, int]) -> int:
        """Update CIDs after active-container compaction moved chunks."""
        updated = 0
        for table in self._previous + [self._current]:
            for fp, new_cid in relocations.items():
                entry = table.get(fp)
                if entry is not None:
                    entry.cid = new_cid
                    updated += 1
        return updated

    def location_of(self, fingerprint: bytes) -> Optional[int]:
        """Active CID of a hot chunk, if cached (newest tables win)."""
        entry = self._current.get(fingerprint)
        if entry is not None:
            return entry.cid
        for table in reversed(self._previous):
            entry = table.get(fingerprint)
            if entry is not None:
                return entry.cid
        return None

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def export_tables(self) -> List[Dict[bytes, CacheEntry]]:
        """Snapshot the previous tables (oldest first) for checkpointing.

        Only legal between versions (T2 must be empty): checkpoints are
        version boundaries, matching the paper's per-version lifecycle.
        """
        if self._current:
            raise IndexError_("cannot export mid-version (T2 is not empty)")
        return [dict(table) for table in self._previous]

    def restore_tables(self, tables: List[Dict[bytes, CacheEntry]]) -> None:
        """Reinstate previously exported tables (oldest first)."""
        if self._previous or self._current:
            raise IndexError_("restore_tables requires an empty cache")
        if len(tables) > self.history_depth:
            raise IndexError_(
                f"{len(tables)} tables exceed history depth {self.history_depth}"
            )
        self._previous = [dict(table) for table in tables]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def current_size(self) -> int:
        return len(self._current)

    @property
    def previous_size(self) -> int:
        return sum(len(t) for t in self._previous)

    @property
    def transient_bytes(self) -> int:
        """Scratch memory: 28 bytes per cached entry (paper's §4.1 estimate)."""
        return (self.current_size + self.previous_size) * RECIPE_ENTRY_SIZE

    @property
    def hit_ratio(self) -> float:
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups

    def __contains__(self, fingerprint: bytes) -> bool:
        if fingerprint in self._current:
            return True
        return any(fingerprint in table for table in self._previous)
