"""HiDeStore checkpointing: persist and reload the volatile state.

The sealed world — archival containers and recipes — already lives in the
(possibly file-backed) stores.  What would be lost on process exit is the
*volatile* state: the T1 fingerprint tables, the active containers and
their location map, the deletion tags and the version counter.  A
checkpoint captures exactly that, taken at a version boundary (between
backups), so a store can be closed and reopened **without** retiring —
unlike :meth:`HiDeStore.retire`, a checkpointed system resumes with its hot
set still active and its physical locality intact.

The format is a single JSON document; active-container payloads ride along
as base64 of the same binary container format the file store uses.
"""

from __future__ import annotations

import base64
import json
import os
from typing import Optional

from ..errors import ReproError
from ..storage.container_store import ContainerStore, pack_container, unpack_container
from ..storage.recipe import RecipeStore
from .double_cache import CacheEntry
from .hidestore import HiDeStore

_FORMAT = "hidestore-checkpoint-v1"


def checkpoint_document(system: HiDeStore) -> dict:
    """The volatile state of ``system`` as a JSON-serialisable document.

    Must be taken between backups (never mid-version).  The archival
    container store and recipe store are *not* captured — persist those
    with durable stores.  :func:`save_checkpoint` writes this document to
    a file; backend-addressed repositories store it as the
    ``checkpoint.json`` object instead.
    """
    system.run_maintenance()  # queued filter work is not serialised
    tables = system.cache.export_tables()  # raises if mid-version
    return {
        "format": _FORMAT,
        "next_version": system._next_version,
        "history_depth": system.history_depth,
        "compaction_threshold": system.pool.compaction_threshold,
        "container_size": system.container_size,
        "lookup_unit_bytes": system.lookup_unit_bytes,
        "deferred_maintenance": system.deferred_maintenance,
        "flatten_every": system.flatten_every,
        "retired": system._retired,
        "next_container_id": system.containers.next_id,
        "cache_tables": [
            {fp.hex(): [entry.size, entry.cid] for fp, entry in table.items()}
            for table in tables
        ],
        "active_containers": [
            base64.b64encode(pack_container(container)).decode("ascii")
            for container in system.pool.iter_containers()
        ],
        "deletion_tags": {
            str(version): system.deletion.containers_for(version)
            for version in system.deletion.tagged_versions()
        },
        "report": {
            "versions": system.report.versions,
            "logical_bytes": system.report.logical_bytes,
            "stored_bytes": system.report.stored_bytes,
            "disk_index_lookups": system.report.disk_index_lookups,
        },
    }


def save_checkpoint(system: HiDeStore, path: str) -> None:
    """Write the volatile state of ``system`` to ``path`` (see
    :func:`checkpoint_document`)."""
    document = checkpoint_document(system)
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(document, handle)
    os.replace(tmp, path)


def system_from_document(
    document: dict,
    container_store: Optional[ContainerStore] = None,
    recipe_store: Optional[RecipeStore] = None,
) -> HiDeStore:
    """Rebuild a :class:`HiDeStore` from a checkpoint document + its stores.

    Args:
        document: a document produced by :func:`checkpoint_document`.
        container_store: the archival store the system was using; defaults
            to a fresh in-memory store (tests).
        recipe_store: likewise for recipes.
    """
    if document.get("format") != _FORMAT:
        raise ReproError(f"not a {_FORMAT} document")

    system = HiDeStore(
        container_store=container_store,
        recipe_store=recipe_store,
        history_depth=document["history_depth"],
        compaction_threshold=document["compaction_threshold"],
        container_size=document["container_size"],
        lookup_unit_bytes=document["lookup_unit_bytes"],
        deferred_maintenance=document.get("deferred_maintenance", False),
        flatten_every=document.get("flatten_every", 0),
    )
    system._next_version = document["next_version"]
    system._retired = document["retired"]
    system.containers.reserve_ids(document["next_container_id"] - 1)

    # Volatile cache tables.
    tables = [
        {
            bytes.fromhex(fp_hex): CacheEntry(size=entry[0], cid=entry[1])
            for fp_hex, entry in table.items()
        }
        for table in document["cache_tables"]
    ]
    system.cache.restore_tables(tables)

    # Active containers + location map.
    for blob_b64 in document["active_containers"]:
        container = unpack_container(base64.b64decode(blob_b64))
        system.pool._active[container.container_id] = container
        for fp in container.fingerprints():
            system.pool.location[fp] = container.container_id

    # Deletion tags.
    for version, cids in document["deletion_tags"].items():
        system.deletion.tag_containers(int(version), list(cids))

    # Cumulative report (per-version history is not checkpointed).
    report = document["report"]
    system.report.versions = report["versions"]
    system.report.logical_bytes = report["logical_bytes"]
    system.report.stored_bytes = report["stored_bytes"]
    system.report.disk_index_lookups = report["disk_index_lookups"]
    return system


def load_checkpoint(
    path: str,
    container_store: Optional[ContainerStore] = None,
    recipe_store: Optional[RecipeStore] = None,
) -> HiDeStore:
    """Rebuild a :class:`HiDeStore` from a checkpoint file + its stores."""
    if not os.path.exists(path):
        raise ReproError(f"no checkpoint at {path}")
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if document.get("format") != _FORMAT:
        raise ReproError(f"{path}: not a {_FORMAT} file")
    return system_from_document(document, container_store, recipe_store)
