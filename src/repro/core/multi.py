"""Multi-client HiDeStore: per-user version chains over one container store.

The paper motivates HiDeStore with archival services that "backup all
versions of the software and the system snapshots *for users*" — plural.
HiDeStore's double cache is inherently per-stream (it deduplicates a
version against *its own* predecessor), so a service hosts one HiDeStore
namespace per client, all allocating containers from a single shared store
(one I/O ledger, globally unique container IDs, one physical pool of disks).

Semantics worth knowing:

* deduplication is **within** a client's history; identical data pushed by
  two clients is stored twice (the paper's design has no cross-client
  index, and adding one would reintroduce exactly the full-index costs
  HiDeStore removes);
* per-client deletion stays GC-free: a client's archival containers hold
  only that client's cold chunks, so expiring one client's oldest version
  touches nobody else;
* the shared ledger means speed factors and lookup counts aggregate
  naturally across clients.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from ..chunking.stream import BackupStream
from ..errors import ReproError, VersionNotFoundError
from ..reports import BackupReport
from ..storage.container_store import ContainerStore, MemoryContainerStore
from ..storage.io_model import IOStats
from ..storage.recipe import MemoryRecipeStore
from ..units import CONTAINER_SIZE
from .hidestore import HiDeStore


class MultiClientHiDeStore:
    """A HiDeStore namespace per client over one shared container store.

    Args:
        container_size: shared container capacity.
        container_store: the shared backing store (defaults to in-memory).
        default_history_depth: history depth for newly created clients.
    """

    def __init__(
        self,
        container_size: int = CONTAINER_SIZE,
        container_store: Optional[ContainerStore] = None,
        default_history_depth: int = 1,
    ) -> None:
        self.io = IOStats()
        self.containers = (
            container_store
            if container_store is not None
            else MemoryContainerStore(container_size, self.io)
        )
        self.containers.stats = self.io
        self.container_size = container_size
        self.default_history_depth = default_history_depth
        self._clients: Dict[str, HiDeStore] = {}

    # ------------------------------------------------------------------
    def client(self, name: str, history_depth: Optional[int] = None) -> HiDeStore:
        """Get (or create) a client's namespace."""
        if not name:
            raise ReproError("client names must be non-empty")
        system = self._clients.get(name)
        if system is None:
            system = HiDeStore(
                container_store=self.containers,
                recipe_store=MemoryRecipeStore(self.io),
                history_depth=(
                    history_depth if history_depth is not None else self.default_history_depth
                ),
                container_size=self.container_size,
            )
            # One ledger for the whole service: the constructor pointed the
            # shared store at the client's private ledger — undo that.
            system.io = self.io
            self.containers.stats = self.io
            system.recipes.stats = self.io
            self._clients[name] = system
        elif history_depth is not None and system.history_depth != history_depth:
            raise ReproError(
                f"client {name!r} already exists with history depth "
                f"{system.history_depth}"
            )
        return system

    def clients(self) -> List[str]:
        return sorted(self._clients)

    def __contains__(self, name: str) -> bool:
        return name in self._clients

    # ------------------------------------------------------------------
    # Convenience pass-throughs
    # ------------------------------------------------------------------
    def backup(self, name: str, stream: BackupStream) -> BackupReport:
        """Back up one version for ``name`` (creating the client if new)."""
        return self.client(name).backup(stream)

    def restore(self, name: str, version_id: int):
        if name not in self._clients:
            raise VersionNotFoundError(f"unknown client {name!r}")
        return self._clients[name].restore(version_id)

    def restore_chunks(self, name: str, version_id: int) -> Iterator:
        if name not in self._clients:
            raise VersionNotFoundError(f"unknown client {name!r}")
        return self._clients[name].restore_chunks(version_id)

    def delete_oldest(self, name: str):
        if name not in self._clients:
            raise VersionNotFoundError(f"unknown client {name!r}")
        return self._clients[name].delete_oldest()

    # ------------------------------------------------------------------
    # Service-level accounting
    # ------------------------------------------------------------------
    def stored_bytes(self) -> int:
        """Physical payload bytes across all clients (archival + active)."""
        active = sum(s.pool.hot_bytes() for s in self._clients.values())
        return self.containers.stored_bytes() + active

    def logical_bytes(self) -> int:
        return sum(s.report.logical_bytes for s in self._clients.values())

    @property
    def dedup_ratio(self) -> float:
        logical = self.logical_bytes()
        if logical == 0:
            return 0.0
        stored = sum(s.report.stored_bytes for s in self._clients.values())
        return (logical - stored) / logical

    def per_client_report(self) -> List[Tuple[str, int, float]]:
        """(client, versions, dedup ratio) rows for dashboards."""
        return [
            (name, system.report.versions, system.dedup_ratio)
            for name, system in sorted(self._clients.items())
        ]
