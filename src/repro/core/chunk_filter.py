"""HiDeStore's chunk filter: active containers, demotion, compaction (§4.2).

Unique chunks are staged in **active containers**.  After each version the
cold residue of the fingerprint cache is *demoted*: removed from the active
containers and written sequentially into sealed **archival containers**
(tagged with the version whose expiry will free them, enabling §4.5's
GC-free deletion).  Demotion leaves holes, so sparse active containers —
utilisation below a threshold — are merged and compacted so the hot set
stays physically dense (Figure 6).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from ..chunking.stream import Chunk
from ..errors import StorageError, UnknownContainerError
from ..storage.container import Container
from ..storage.container_store import ContainerStore
from .double_cache import CacheEntry


@dataclass
class FilterStats:
    """Accounting for the demotion/compaction machinery (Fig. 12 inputs)."""

    cold_chunks_moved: int = 0
    cold_bytes_moved: int = 0
    archival_containers_written: int = 0
    compactions: int = 0
    containers_merged: int = 0
    move_seconds: float = 0.0
    compact_seconds: float = 0.0


class ActiveContainerPool:
    """The mutable set of active containers plus the demotion path.

    Args:
        store: the shared container store; supplies globally unique IDs and
            receives sealed archival containers.  Active containers are held
            here (in memory) until every chunk they hold has been demoted or
            relocated.
        compaction_threshold: utilisation below which an active container is
            considered sparse and eligible for merging (§4.2).
    """

    def __init__(self, store: ContainerStore, compaction_threshold: float = 0.7) -> None:
        if not (0.0 <= compaction_threshold <= 1.0):
            raise StorageError("compaction_threshold must be in [0, 1]")
        self.store = store
        self.compaction_threshold = compaction_threshold
        self._active: Dict[int, Container] = {}
        self._open: Optional[Container] = None
        #: fp -> active container id, for resolving ACTIVE_CID recipe entries.
        self.location: Dict[bytes, int] = {}
        self.stats = FilterStats()

    # ------------------------------------------------------------------
    # Hot path: store incoming unique chunks
    # ------------------------------------------------------------------
    def store_chunk(self, chunk: Chunk) -> int:
        """Append a unique chunk to the open active container; returns its CID."""
        if self._open is None or not self._open.fits(chunk.size):
            if self._open is not None:
                self._active[self._open.container_id] = self._open
            self._open = self.store.allocate()
            self._active[self._open.container_id] = self._open
        if chunk.size > self._open.capacity:
            raise StorageError(
                f"chunk of {chunk.size} B exceeds container capacity {self._open.capacity} B"
            )
        self._open.add(chunk)
        self.location[chunk.fingerprint] = self._open.container_id
        return self._open.container_id

    def store_chunks(self, chunks: Iterable[Chunk]) -> List[int]:
        """Append a dedup batch's unique chunks in order; returns their CIDs.

        The batch companion to :meth:`store_chunk`: one pool call per
        engine dedup batch instead of one per chunk.  Appends happen in
        input order, so any batch partitioning yields the exact container
        layout the per-chunk path would have produced.
        """
        store = self.store_chunk
        return [store(chunk) for chunk in chunks]

    def end_version(self) -> None:
        """Close the open container boundary (it stays active, not archival)."""
        self._open = None

    # ------------------------------------------------------------------
    # Demotion: cold chunks -> archival containers
    # ------------------------------------------------------------------
    def demote(
        self, cold: Mapping[bytes, CacheEntry], expiry_version: Optional[int] = None
    ) -> Tuple[Dict[bytes, int], List[int]]:
        """Move cold chunks from active to archival containers.

        Args:
            cold: fingerprint -> cache entry (the T1 residue).
            expiry_version: version tag recorded on the written archival
                containers (for §4.5 deletion); purely informational here —
                the caller's deletion manager keeps the map.

        Returns:
            ``(moved, archival_cids)``: the archival CID per fingerprint, and
            the list of archival containers written.
        """
        started = time.perf_counter()
        moved: Dict[bytes, int] = {}
        written: List[int] = []
        archive: Optional[Container] = None
        for fp, entry in cold.items():
            container = self._active.get(entry.cid)
            if container is None:
                if entry.cid in self.store:
                    # Already archival: a reopened system primed its cache
                    # from a retired recipe.  Nothing to move; just report
                    # the existing location so recipe updates resolve.
                    moved[fp] = entry.cid
                    continue
                raise UnknownContainerError(
                    f"cold chunk {fp.hex()[:8]} claims active container {entry.cid}, "
                    "which is not in the pool"
                )
            slot = container.remove(fp)
            self.location.pop(fp, None)
            chunk = Chunk(fp, slot.size, slot.data)
            if archive is None or not archive.fits(chunk.size):
                if archive is not None:
                    self.store.write(archive)
                    written.append(archive.container_id)
                archive = self.store.allocate()
            archive.add(chunk)
            moved[fp] = archive.container_id
            self.stats.cold_chunks_moved += 1
            self.stats.cold_bytes_moved += chunk.size
        if archive is not None and not archive.is_empty:
            self.store.write(archive)
            written.append(archive.container_id)
        self.stats.archival_containers_written += len(written)
        # Drop active containers that demotion emptied entirely.
        for cid in [cid for cid, c in self._active.items() if c.is_empty]:
            del self._active[cid]
        self.stats.move_seconds += time.perf_counter() - started
        return moved, written

    # ------------------------------------------------------------------
    # Compaction: merge sparse active containers (Figure 6)
    # ------------------------------------------------------------------
    def compact(self) -> Dict[bytes, int]:
        """Merge sparse active containers; returns chunk relocations.

        Containers whose utilisation is below the threshold are drained
        fullest-first into freshly allocated containers (order inside a
        merged container is irrelevant — all its chunks are hot and will be
        prefetched together, §4.2).  Returns ``fp -> new active CID`` for
        every relocated chunk; the caller must propagate these into the
        fingerprint cache.
        """
        started = time.perf_counter()
        sparse = [
            c
            for c in self._active.values()
            if c.utilization < self.compaction_threshold and not c.is_empty
        ]
        if len(sparse) < 2:
            self.stats.compact_seconds += time.perf_counter() - started
            return {}
        sparse.sort(key=lambda c: c.used, reverse=True)
        relocations: Dict[bytes, int] = {}
        target: Optional[Container] = None
        merged = 0
        for container in sparse:
            for chunk in list(container.chunks()):
                if target is None or not target.fits(chunk.size):
                    target = self.store.allocate()
                    self._active[target.container_id] = target
                target.add(chunk)
                relocations[chunk.fingerprint] = target.container_id
                self.location[chunk.fingerprint] = target.container_id
            del self._active[container.container_id]
            merged += 1
        self.stats.compactions += 1
        self.stats.containers_merged += merged
        self.stats.compact_seconds += time.perf_counter() - started
        return relocations

    # ------------------------------------------------------------------
    # Read path (restore from active containers is a billed read too)
    # ------------------------------------------------------------------
    def read(self, cid: int) -> Container:
        try:
            container = self._active[cid]
        except KeyError:
            raise UnknownContainerError(f"no active container {cid}") from None
        self.store.stats.note_container_read(container.used)
        return container

    def peek(self, cid: int) -> Container:
        """Fetch an active container *without* billing a read (metrics/fsck)."""
        try:
            return self._active[cid]
        except KeyError:
            raise UnknownContainerError(f"no active container {cid}") from None

    def __contains__(self, cid: int) -> bool:
        return cid in self._active

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def container_ids(self) -> List[int]:
        return sorted(self._active)

    def container_count(self) -> int:
        return len(self._active)

    def hot_bytes(self) -> int:
        return sum(c.used for c in self._active.values())

    def utilizations(self) -> List[float]:
        return [c.utilization for c in self._active.values()]

    def iter_containers(self) -> Iterable[Container]:
        return self._active.values()
