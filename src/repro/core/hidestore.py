"""HiDeStore: the paper's high-performance deduplication + restore system.

This facade composes the three mechanisms of §4 on top of the storage
substrate:

* :class:`~repro.core.double_cache.DoubleHashCache` — dedup against the
  previous version(s) only, no on-disk index, no disk lookups (§4.1);
* :class:`~repro.core.chunk_filter.ActiveContainerPool` — hot chunks stay in
  dense active containers, cold residues demote to archival containers
  (§4.2);
* :class:`~repro.core.recipe_chain.RecipeChain` — one previous-recipe update
  per version, offline Algorithm-1 flattening before restores (§4.3);
* :class:`~repro.core.deletion.DeletionManager` — GC-free expiry (§4.5).

The public surface mirrors :class:`repro.pipeline.system.BackupSystem`
(``backup`` / ``restore`` / reports) so benchmarks can swap schemes freely.
"""

from __future__ import annotations

import threading
import time
from itertools import islice
from typing import TYPE_CHECKING, List, Optional

from ..chunking.stream import BackupStream
from ..errors import ReproError, RestoreError, VersionNotFoundError
from ..pipeline.base import RestoreMixin
from ..reports import BackupReport, SystemReport
from ..restore.base import RestoreAlgorithm
from ..restore.faa import FAARestore
from ..storage.container import Container
from ..storage.container_store import ContainerStore, MemoryContainerStore
from ..storage.io_model import IOStats
from ..storage.recipe import ACTIVE_CID, MemoryRecipeStore, Recipe, RecipeEntry, RecipeStore
from ..units import CONTAINER_SIZE
from .chunk_filter import ActiveContainerPool
from .deletion import DeletionManager, DeletionStats
from .double_cache import BATCH_DUPLICATE, DoubleHashCache
from .recipe_chain import RecipeChain

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine.maintenance import MaintenanceExecutor

#: Chunks classified per lock acquisition: small enough that a background
#: maintenance executor interleaves at fine grain, large enough that the
#: lock overhead is invisible on the hot path.
_CLASSIFY_BATCH = 1024


class HiDeStore(RestoreMixin):
    """The complete HiDeStore backup system.

    Args:
        container_store: sealed-container backend (defaults to in-memory).
        recipe_store: recipe backend (defaults to in-memory).
        history_depth: versions of look-back in the fingerprint cache
            (1 per the paper; 2 for macos-like workloads, §4.1).
        compaction_threshold: active-container utilisation below which
            containers are merged (§4.2).
        restorer: default restore algorithm (FAA, as in the evaluation).
        container_size: container payload capacity (4 MiB).
        lookup_unit_bytes: accounting unit for the Figure 9 comparison.
            HiDeStore never probes a full on-disk index, but it does prefetch
            the previous version's recipe into T1; the paper bills that
            prefetch in the same lookup-request units as the traditional
            schemes ("the lookup overhead of HiDeStore is bounded to the
            size of one backup version", §5.2.2).
        deferred_maintenance: when true, demotion, compaction and
            previous-recipe updates are queued instead of running on the
            backup critical path — the paper's pipelined/offline processing
            (§5.4: "the process of moving chunks ... can be processed
            offline due to the pipeline implementation").  Queued work runs
            on :meth:`run_maintenance`, and automatically before restores,
            deletions, retirement and checkpoints.
        flatten_every: run Algorithm 1 automatically after every Nth backup
            (0 disables).  The paper flattens "periodically ... before
            restoring"; a nonzero period keeps old-version restore latency
            bounded without waiting for a restore request.
        maintenance_executor: a background
            :class:`~repro.engine.maintenance.MaintenanceExecutor`.  With
            ``deferred_maintenance=True`` the queued demotion/compaction
            work is then *actually asynchronous*: it runs on the executor's
            worker thread while the next version is being chunked and
            fingerprinted, instead of waiting for :meth:`run_maintenance`.
            :meth:`run_maintenance` (called automatically before restores,
            deletions, retirement and checkpoints) is the drain barrier.
    """

    def __init__(
        self,
        container_store: Optional[ContainerStore] = None,
        recipe_store: Optional[RecipeStore] = None,
        history_depth: int = 1,
        compaction_threshold: float = 0.7,
        restorer: Optional[RestoreAlgorithm] = None,
        container_size: int = CONTAINER_SIZE,
        lookup_unit_bytes: int = 4096,
        deferred_maintenance: bool = False,
        flatten_every: int = 0,
        maintenance_executor: Optional["MaintenanceExecutor"] = None,
    ) -> None:
        self.io = IOStats()
        self.containers = (
            container_store
            if container_store is not None
            else MemoryContainerStore(container_size, self.io)
        )
        self.containers.stats = self.io
        self.recipes = recipe_store if recipe_store is not None else MemoryRecipeStore(self.io)
        self.recipes.stats = self.io
        self.cache = DoubleHashCache(history_depth)
        self.pool = ActiveContainerPool(self.containers, compaction_threshold)
        self.chain = RecipeChain(self.recipes)
        self.deletion = DeletionManager(self.containers, self.recipes)
        self.restorer = restorer if restorer is not None else FAARestore()
        self.container_size = container_size
        self.history_depth = history_depth
        self.lookup_unit_bytes = lookup_unit_bytes
        self.deferred_maintenance = deferred_maintenance
        self.flatten_every = max(0, flatten_every)
        self._pending_maintenance: List = []  # (previous_version, cold residue)
        self._maintenance_executor = maintenance_executor
        self._lock = threading.Lock()  # guards cache/pool/chain/deletion state
        self._next_version = 1
        self._retired = False
        self.report = SystemReport()

    # ------------------------------------------------------------------
    # Backup path (§4.1 + §4.2 + §4.3)
    # ------------------------------------------------------------------
    def backup(self, stream: BackupStream) -> BackupReport:
        """Deduplicate and store one backup version.

        The stream is consumed in batches, each classified under the
        internal lock; between batches a background maintenance executor
        (see ``maintenance_executor``) may interleave the previous
        version's demotion/compaction — the paper's §5.4 pipeline.  A lazy
        (pipelined) stream therefore overlaps chunking + fingerprinting
        with both classification and filter maintenance.

        ``report.containers_written`` counts the archival containers
        written synchronously by *this* call (demotion/compaction inline,
        or a ``flatten_every``-triggered drain) — the per-version delta,
        matching :class:`~repro.pipeline.system.BackupSystem`.  Work still
        queued behind ``deferred_maintenance`` is attributed to whichever
        call later drains it.
        """
        if self._retired:
            raise ReproError("this HiDeStore instance has been retired")
        started = time.perf_counter()
        with self._lock:
            version_id = self._next_version
            self._next_version += 1

            # T1 prefetch accounting: loading the previous recipe's metadata
            # is the only "lookup" traffic HiDeStore generates (§5.2.2);
            # bounded by the size of one backup version, however many
            # versions are stored.
            prefetch_lookups = 0
            if version_id > 1 and (version_id - 1) in self.recipes:
                prefetch_bytes = self.recipes.peek(version_id - 1).byte_size
                prefetch_lookups = -(-prefetch_bytes // self.lookup_unit_bytes)  # ceil
                self.io.note_index_lookup(prefetch_lookups)

        tag = stream.tag or f"v{version_id}"
        report = BackupReport(version_id, tag)
        recipe = Recipe(version_id, tag)

        # Deduplicate against the fingerprint cache only — no disk lookups.
        # Batched: one ``lookup_many`` round-trip classifies the whole
        # batch, one ``store_chunks`` call appends its uniques — the index
        # and pool are touched twice per 1024 chunks instead of per chunk,
        # while the sequential per-chunk semantics (counters, container
        # layout, recipe CIDs) are preserved exactly.
        chunks = iter(stream)
        while True:
            batch = list(islice(chunks, _CLASSIFY_BATCH))
            if not batch:
                break
            with self._lock:
                entries = self.cache.lookup_many(
                    [chunk.fingerprint for chunk in batch]
                )
                uniques = [
                    chunk for chunk, entry in zip(batch, entries) if entry is None
                ]
                # In-order batch append == identical container layout to
                # the per-chunk path, whatever the batch partitioning.
                cids = self.pool.store_chunks(uniques)
                for chunk, cid in zip(uniques, cids):
                    self.cache.insert(chunk.fingerprint, chunk.size, cid)
                for chunk, entry in zip(batch, entries):
                    if entry is None:
                        recipe_cid = ACTIVE_CID
                        report.unique_chunks += 1
                        report.stored_bytes += chunk.size
                    else:
                        if entry is BATCH_DUPLICATE:
                            # Duplicate of a unique stored earlier in this
                            # very batch; its entry exists now.
                            entry = self.cache.current_entry(chunk.fingerprint)
                        # Duplicates normally sit in active containers
                        # (recorded as ACTIVE); a reopened system's primed
                        # chunks are archival and keep their concrete CID in
                        # the recipe.
                        recipe_cid = ACTIVE_CID if entry.cid in self.pool else entry.cid
                        report.duplicate_chunks += 1
                    recipe.append(chunk.fingerprint, chunk.size, recipe_cid)
                    report.total_chunks += 1
                    report.logical_bytes += chunk.size

        with self._lock:
            containers_before = len(self.containers)
            self.pool.end_version()
            self.chain.write_fresh(recipe)

            # Filter: demote the cold residue, then keep the hot set dense.
            # With deferred maintenance this work leaves the critical path
            # (paper §5.4's pipelined/offline processing).
            cold = self.cache.end_version()
            previous = version_id - self.history_depth
            if previous >= 1:
                if self.deferred_maintenance:
                    self._queue_maintenance(previous, cold)
                else:
                    self._apply_maintenance(previous, cold)
                    self._compact_and_relocate()
            report.containers_written = len(self.containers) - containers_before

        if self.flatten_every and version_id % self.flatten_every == 0:
            before_flatten = len(self.containers)
            self.run_maintenance()
            with self._lock:
                self.chain.flatten()
                report.containers_written += len(self.containers) - before_flatten

        report.disk_index_lookups = prefetch_lookups  # recipe prefetch only
        report.elapsed_seconds = time.perf_counter() - started

        self.report.versions += 1
        self.report.logical_bytes += report.logical_bytes
        self.report.stored_bytes += report.stored_bytes
        self.report.disk_index_lookups += report.disk_index_lookups
        self.report.index_memory_bytes = 0  # no persistent index table (§5.2.3)
        self.report.per_version.append(report)
        return report

    # ------------------------------------------------------------------
    # Offline maintenance (§5.4)
    # ------------------------------------------------------------------
    def _apply_maintenance(self, previous: int, cold) -> None:
        moved, written = self.pool.demote(cold)
        self.deletion.tag_containers(previous, written)
        self.chain.update_previous(previous, moved, previous + 1)

    def _compact_and_relocate(self) -> None:
        relocations = self.pool.compact()
        if relocations:
            self.cache.apply_relocations(relocations)

    def _queue_maintenance(self, previous: int, cold) -> None:
        """Defer one version's filter work (caller holds the lock).

        Without an executor the work waits on the synchronous queue for the
        next :meth:`run_maintenance`; with one it is handed to the
        background worker immediately and runs as soon as the lock frees up
        — i.e. while the next version is being chunked and fingerprinted.
        """
        executor = self._maintenance_executor
        if executor is None:
            self._pending_maintenance.append((previous, cold))
            return

        def task() -> None:
            with self._lock:
                self._apply_maintenance(previous, cold)
                self._compact_and_relocate()

        executor.submit(task)

    def attach_maintenance_executor(self, executor: "MaintenanceExecutor") -> None:
        """Route future deferred maintenance through a background executor."""
        self._maintenance_executor = executor

    def run_maintenance(self) -> int:
        """Process all queued demotions/recipe updates, then compact.

        Returns the number of versions whose maintenance was performed
        (including background tasks waited for).  This is the drain
        barrier: when it returns, no filter work is pending or in flight.
        Idempotent; a no-op when nothing is queued.
        """
        processed = 0
        if self._maintenance_executor is not None:
            processed += self._maintenance_executor.drain()
        with self._lock:
            pending, self._pending_maintenance = self._pending_maintenance, []
            for previous, cold in pending:
                self._apply_maintenance(previous, cold)
                processed += 1
            if pending:
                self._compact_and_relocate()
        return processed

    @property
    def pending_maintenance(self) -> int:
        """Number of versions whose filter work is still queued/in flight."""
        queued = len(self._pending_maintenance)
        if self._maintenance_executor is not None:
            queued += self._maintenance_executor.pending
        return queued

    # ------------------------------------------------------------------
    # Reopening a retired store
    # ------------------------------------------------------------------
    def prime_from_recipe(self, version_id: Optional[int] = None) -> int:
        """Reopen a retired store: rebuild T1 from the newest recipe.

        The paper prefetches the previous version's recipe into T1 when a
        new version starts (§4.1); this is the cross-session equivalent.
        The primed entries carry their archival CIDs (the retired hot set
        lives in archival containers), so subsequent versions deduplicate
        exactly against the last version without re-reading any index.

        Returns the number of entries primed.
        """
        if version_id is None:
            version_id = self.recipes.latest_version()
        if version_id is None:
            raise VersionNotFoundError("no recipes to prime from")
        recipe = self.recipes.peek(version_id)
        primed = 0
        for entry in recipe.entries:
            if entry.cid <= 0:
                raise ReproError(
                    "prime_from_recipe needs a fully archival recipe; "
                    "retire() the store before closing it"
                )
            self.cache.insert(entry.fingerprint, entry.size, entry.cid)
            primed += 1
        self.cache.end_version()  # the primed table becomes T1
        self._next_version = max(self._next_version, version_id + 1)
        self._retired = False
        return primed

    # ------------------------------------------------------------------
    # Restore path (§4.4) — the shared RestoreMixin implementation over
    # three HiDeStore-specific hooks.
    # ------------------------------------------------------------------
    def _prepare_restore(self, flatten: bool) -> None:
        """Drain queued filter work, then (optionally) run Algorithm 1.

        The paper performs flattening offline before restoring; pass
        ``flatten=False`` only when the chain is known flat.
        """
        self.run_maintenance()
        if flatten:
            with self._lock:
                self.chain.flatten()

    def _read_container(self, cid: int) -> Container:
        if cid in self.pool:
            return self.pool.read(cid)
        return self.containers.read(cid)

    def _read_container_chunks(self, cid, fingerprints):
        if cid in self.pool:
            return None  # pool containers are in memory; no ranged path
        return super()._read_container_chunks(cid, fingerprints)

    def _resolve_restore_entries(
        self, entries: List[RecipeEntry], version_id: int
    ) -> List[RecipeEntry]:
        """Map every entry to a concrete (positive) container ID.

        Requires a flattened chain: entries are positive, ``0`` (active) or
        ``-newest`` (active).  Active chunks resolve through the pool's
        location map.
        """
        newest = self.recipes.latest_version()
        resolved: List[RecipeEntry] = []
        for entry in entries:
            cid = entry.cid
            if cid <= 0:
                location = self.pool.location.get(entry.fingerprint)
                if location is None:
                    raise RestoreError(
                        f"chunk {entry.fingerprint.hex()[:8]} of version "
                        f"{version_id} resolves to the active containers "
                        "but is not there (flatten the chain first?)"
                    )
                if cid < 0 and -cid != newest:
                    # A still-chained entry: legal only straight after flatten;
                    # location map already gives the answer, so proceed.
                    pass
                cid = location
            resolved.append(RecipeEntry(entry.fingerprint, entry.size, cid))
        return resolved

    def _resolve_entries(self, recipe: Recipe) -> List[RecipeEntry]:
        """Back-compat wrapper over :meth:`_resolve_restore_entries`."""
        return self._resolve_restore_entries(list(recipe.entries), recipe.version_id)

    # ------------------------------------------------------------------
    # Deletion (§4.5)
    # ------------------------------------------------------------------
    @property
    def demotion_horizon(self) -> int:
        """Newest version whose cold set has been demoted."""
        if self._retired:
            return self._next_version - 1
        return self._next_version - 1 - self.history_depth

    def delete_oldest(self) -> DeletionStats:
        """Expire the oldest retained version (GC-free)."""
        self.run_maintenance()
        versions = self.recipes.version_ids()
        if not versions:
            raise VersionNotFoundError("no versions to delete")
        return self.deletion.delete_version(versions[0], self.demotion_horizon)

    # ------------------------------------------------------------------
    # Retirement: demote everything, freeze the system
    # ------------------------------------------------------------------
    def retire(self) -> None:
        """Demote all remaining hot chunks and flatten every recipe.

        After retirement the whole store is archival: any version can be
        restored or (in order) deleted, but no further backups are accepted.
        """
        if self._retired:
            return
        self.run_maintenance()
        newest = self.recipes.latest_version()
        drained = self.cache.drain()
        moved, written = self.pool.demote(drained)
        if newest is not None:
            self.deletion.tag_containers(newest, written)
            final = self.recipes.read(newest)
            for entry in final.entries:
                if entry.cid <= 0:
                    archival = moved.get(entry.fingerprint)
                    if archival is None:
                        raise RestoreError(
                            f"retire: chunk {entry.fingerprint.hex()[:8]} has "
                            "no archival location"
                        )
                    entry.cid = archival
            self.recipes.write(final)
            self.chain.flatten()
        self._retired = True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def dedup_ratio(self) -> float:
        return self.report.dedup_ratio

    def version_ids(self) -> List[int]:
        return self.recipes.version_ids()

    def stored_bytes(self) -> int:
        """Physical payload bytes (archival store + active pool)."""
        return self.containers.stored_bytes() + self.pool.hot_bytes()

    @property
    def transient_cache_bytes(self) -> int:
        """Scratch memory of T1/T2 (bounded by one-two versions, §4.1)."""
        return self.cache.transient_bytes

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"HiDeStore(versions={self.report.versions}, "
            f"dedup_ratio={self.dedup_ratio:.3f}, "
            f"active_containers={self.pool.container_count()})"
        )
