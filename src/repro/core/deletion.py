"""GC-free deletion of expired backup versions (paper §4.5 / §5.5).

Because the chunk filter stores every cold set in its own archival
containers, the chunks *exclusive* to version ``v`` are precisely the
archival containers written when ``v``'s chunks fell cold (their "last
version" tag is ``v``).  Expiring the oldest retained version is therefore:

1. delete the archival containers tagged with it (no chunk detection —
   no newer version references them, by the §3 observation made structural);
2. delete its recipe (nothing points backwards in the chain).

No garbage collection, no copying — the paper's "almost zero" deletion cost.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List

from ..errors import DeletionError
from ..storage.container_store import ContainerStore
from ..storage.recipe import RecipeStore


@dataclass
class DeletionStats:
    versions_deleted: int = 0
    containers_deleted: int = 0
    bytes_reclaimed: int = 0
    delete_seconds: float = 0.0


class DeletionManager:
    """Tracks archival containers by the version whose expiry frees them."""

    def __init__(self, containers: ContainerStore, recipes: RecipeStore) -> None:
        self.containers = containers
        self.recipes = recipes
        #: last-version tag -> archival container IDs holding its cold set.
        self._tagged: Dict[int, List[int]] = {}
        self.stats = DeletionStats()

    def tag_containers(self, last_version: int, container_ids: List[int]) -> None:
        """Record that these archival containers hold ``last_version``'s cold set."""
        if container_ids:
            self._tagged.setdefault(last_version, []).extend(container_ids)

    def tagged_versions(self) -> List[int]:
        return sorted(self._tagged)

    def containers_for(self, version: int) -> List[int]:
        return list(self._tagged.get(version, []))

    # ------------------------------------------------------------------
    def delete_version(self, version: int, demotion_horizon: int) -> DeletionStats:
        """Expire ``version``; it must be the oldest retained one.

        Args:
            version: the version to expire.
            demotion_horizon: the newest version whose cold set has already
                been demoted (``newest_backed_up - history_depth``).  Deleting
                a version whose exclusive chunks are still sitting in active
                containers would corrupt newer versions, so it is refused.

        Returns per-call deletion statistics.
        """
        started = time.perf_counter()
        retained = self.recipes.version_ids()
        if version not in retained:
            raise DeletionError(f"version {version} is not retained")
        if version != retained[0]:
            raise DeletionError(
                f"only the oldest retained version ({retained[0]}) can be "
                f"expired; got {version}"
            )
        if version > demotion_horizon:
            raise DeletionError(
                f"version {version}'s exclusive chunks have not been demoted "
                f"yet (horizon {demotion_horizon}); back up more versions or "
                "retire the system first"
            )
        call_stats = DeletionStats()
        for cid in self._tagged.pop(version, []):
            container = self.containers.peek(cid)
            call_stats.bytes_reclaimed += container.used
            self.containers.delete(cid)
            call_stats.containers_deleted += 1
        self.recipes.delete(version)
        call_stats.versions_deleted = 1
        call_stats.delete_seconds = time.perf_counter() - started

        self.stats.versions_deleted += call_stats.versions_deleted
        self.stats.containers_deleted += call_stats.containers_deleted
        self.stats.bytes_reclaimed += call_stats.bytes_reclaimed
        self.stats.delete_seconds += call_stats.delete_seconds
        return call_stats
