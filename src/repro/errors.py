"""Exception hierarchy for the HiDeStore reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming out of this package with a single ``except`` clause
while still being able to discriminate the failure domain.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ChunkingError(ReproError):
    """Invalid chunker configuration or a malformed input stream."""


class StorageError(ReproError):
    """Container or recipe storage failure."""


class ObjectMissingError(StorageError):
    """A named storage-backend object does not exist.

    The backend-level analogue of :class:`UnknownContainerError`: raised by
    :class:`~repro.storage.backend.StorageBackend` implementations when a
    ``get``/``size``/``digest``/``delete`` names an absent object.
    """


class ContainerFullError(StorageError):
    """A chunk did not fit into the container it was directed to."""


class UnknownContainerError(StorageError):
    """A container ID was referenced that the store does not hold."""


class UnknownChunkError(StorageError):
    """A fingerprint was requested from a container that does not hold it."""


class RecipeError(StorageError):
    """A recipe is missing, malformed, or its chain cannot be resolved."""


class IndexError_(ReproError):
    """Fingerprint-index failure (name avoids shadowing builtin IndexError)."""


class RestoreError(ReproError):
    """The restore pipeline could not reassemble the requested version."""


class VersionNotFoundError(ReproError):
    """A backup version ID was referenced that the system does not know."""


class DeletionError(ReproError):
    """An expired-version deletion request was invalid (e.g. not the oldest)."""


class WorkloadError(ReproError):
    """Invalid synthetic-workload or trace configuration."""


class ReplicationError(ReproError):
    """A mirror-sync or repair operation was invalid or failed.

    Covers self-sync attempts (target resolves to the source repository),
    digest mismatches on shipped objects, and torn commit requests.
    """


class ClusterError(ReproError):
    """A sharded-cluster operation was invalid or could not complete.

    Covers malformed cluster maps, tenants whose every placement node is
    unreachable, and rebalance moves that failed verification.
    """


class NotPrimaryError(ClusterError):
    """A mutating request landed on a daemon that is not the tenant's
    acting ring primary under the daemon's current cluster map.

    The daemon-side write fence: after a promotion the old primary (or a
    client routing on a stale epoch) must not extend tenant history — a
    fork would be undetectable.  Also raised while a freshly promoted
    primary's replica has not yet passed its deep verify.  The router
    reacts by re-``refresh()``-ing its map and retrying on the *current*
    primary; the error is authoritative, never a reason to try a replica.
    """


class RemoteError(ReproError):
    """A remote backup-service operation failed.

    Raised client-side when the server reports a failure that does not map
    onto a more specific :class:`ReproError` subclass, or when the
    connection to the server is lost mid-operation.
    """


class ProtocolError(RemoteError):
    """The wire conversation violated the backup frame protocol.

    Covers malformed frames, oversized payloads, version mismatches and
    frames arriving in an impossible order — on either side of the socket.
    """


class TimeoutExceededError(RemoteError):
    """A remote request did not complete within its deadline."""


class RetryBudgetExceededError(RemoteError):
    """An operation's retry budget (attempts and/or wall-clock) ran out.

    Raised client-side instead of sleeping into the next backoff once the
    per-operation budget is spent — a flapping daemon must not absorb
    unbounded client retry time.  Carries the last transport error as its
    ``__cause__``.
    """


class ServerDrainingError(RemoteError):
    """The server is shutting down and refuses new mutating sessions."""


def error_by_name(name: str) -> type:
    """Map an exception class name back to its :class:`ReproError` subclass.

    The wire protocol sends errors as ``(class name, message)`` pairs; this
    resolves the name on the receiving side so the single-catch guarantee
    (everything derives from :class:`ReproError`) survives the network hop.
    Unknown names degrade to :class:`RemoteError`.
    """
    cls = globals().get(name)
    if isinstance(cls, type) and issubclass(cls, ReproError):
        return cls
    return RemoteError
