"""Exception hierarchy for the HiDeStore reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming out of this package with a single ``except`` clause
while still being able to discriminate the failure domain.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ChunkingError(ReproError):
    """Invalid chunker configuration or a malformed input stream."""


class StorageError(ReproError):
    """Container or recipe storage failure."""


class ContainerFullError(StorageError):
    """A chunk did not fit into the container it was directed to."""


class UnknownContainerError(StorageError):
    """A container ID was referenced that the store does not hold."""


class UnknownChunkError(StorageError):
    """A fingerprint was requested from a container that does not hold it."""


class RecipeError(StorageError):
    """A recipe is missing, malformed, or its chain cannot be resolved."""


class IndexError_(ReproError):
    """Fingerprint-index failure (name avoids shadowing builtin IndexError)."""


class RestoreError(ReproError):
    """The restore pipeline could not reassemble the requested version."""


class VersionNotFoundError(ReproError):
    """A backup version ID was referenced that the system does not know."""


class DeletionError(ReproError):
    """An expired-version deletion request was invalid (e.g. not the oldest)."""


class WorkloadError(ReproError):
    """Invalid synthetic-workload or trace configuration."""
