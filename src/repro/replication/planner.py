"""The sync planner: diff two repository states into a resumable plan.

Pure data-in/data-out — the planner never touches the filesystem or the
network, so every diff decision is unit-testable.  The plan it emits is
O(delta): sealed archival containers present on the target with the right
size are skipped (they are immutable, §4.2), digest-bearing objects ship
only when their content moved, and objects that vanished from the source
(expired versions, §4.5) become deletions on the mirror.

Ordering is the correctness story:

* **ships** run containers → manifests → recipes → checkpoint.  Containers
  and manifests are invisible until a recipe references them, so they go
  straight into place; recipes and the checkpoint are *staged* (shipped as
  ``*.staged`` files) because they define the mirror's visible state and
  must move together.
* **renames** (the commit) apply staged recipes oldest-first with the
  checkpoint last, shrinking the window in which a new head recipe could be
  observed beside an old checkpoint to a couple of renames.
* **deletes** run recipes → manifests → containers, so the mirror never
  holds a recipe whose containers are already gone.

A sync interrupted mid-transfer needs no journal replay to resume: the next
planner run diffs fresh states, sees the containers that already made it,
and re-plans only the remainder (reported as ``containers_skipped``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from .state import CHECKPOINT_NAME, RepoState


@dataclass(frozen=True)
class ShipAction:
    """Copy one object from source to target."""

    kind: str
    name: str
    size: int
    digest: str = ""  #: expected content digest ("" for containers)
    staged: bool = False  #: land as ``*.staged`` awaiting the commit


@dataclass(frozen=True)
class ObjectRef:
    """One (kind, name) pair inside the commit's rename/delete lists."""

    kind: str
    name: str


@dataclass
class SyncPlan:
    """Everything one sync will do, in execution order."""

    ships: List[ShipAction] = field(default_factory=list)
    renames: List[ObjectRef] = field(default_factory=list)
    deletes: List[ObjectRef] = field(default_factory=list)
    #: Source containers already on the target (the O(delta) evidence).
    containers_skipped: int = 0

    @property
    def empty(self) -> bool:
        return not (self.ships or self.renames or self.deletes)

    @property
    def needs_commit(self) -> bool:
        return bool(self.renames or self.deletes)

    @property
    def bytes_to_ship(self) -> int:
        return sum(action.size for action in self.ships)

    def summary(self) -> Dict:
        """A JSON-friendly digest of the plan (journal header, logs)."""
        per_kind: Dict[str, int] = {}
        for action in self.ships:
            per_kind[action.kind] = per_kind.get(action.kind, 0) + 1
        return {
            "ships": len(self.ships),
            "ships_by_kind": per_kind,
            "renames": len(self.renames),
            "deletes": len(self.deletes),
            "bytes_to_ship": self.bytes_to_ship,
            "containers_skipped": self.containers_skipped,
        }


def _want_ship(kind: str, name: str, info: Dict, target_section: Dict) -> bool:
    have = target_section.get(name)
    if have is None:
        return True
    if kind == "container":
        # Immutable once visible: same name + size means same content.  A
        # size mismatch means a foreign/corrupt file squatting on the name —
        # re-ship and overwrite it.
        return have.get("size") != info["size"]
    return have.get("digest") != info.get("digest") or have.get("size") != info["size"]


class SyncPlanner:
    """Diffs a source state against a target state into a :class:`SyncPlan`."""

    def plan(self, source: RepoState, target: RepoState) -> SyncPlan:
        plan = SyncPlan()

        # Ships, in visibility-safe order.
        for name, info in source["containers"].items():
            if _want_ship("container", name, info, target["containers"]):
                plan.ships.append(ShipAction("container", name, info["size"]))
            else:
                plan.containers_skipped += 1
        for name, info in source["manifests"].items():
            if _want_ship("manifest", name, info, target["manifests"]):
                plan.ships.append(
                    ShipAction("manifest", name, info["size"], info["digest"])
                )
        changed_recipes = [
            name
            for name, info in source["recipes"].items()
            if _want_ship("recipe", name, info, target["recipes"])
        ]
        for name in changed_recipes:
            info = source["recipes"][name]
            plan.ships.append(
                ShipAction("recipe", name, info["size"], info["digest"], staged=True)
            )
        checkpoint = source["checkpoint"].get(CHECKPOINT_NAME)
        ship_checkpoint = checkpoint is not None and _want_ship(
            "checkpoint", CHECKPOINT_NAME, checkpoint, target["checkpoint"]
        )
        if ship_checkpoint:
            plan.ships.append(
                ShipAction(
                    "checkpoint",
                    CHECKPOINT_NAME,
                    checkpoint["size"],
                    checkpoint["digest"],
                    staged=True,
                )
            )

        # Commit renames: staged recipes oldest-first, checkpoint last.
        for name in sorted(changed_recipes):
            plan.renames.append(ObjectRef("recipe", name))
        if ship_checkpoint:
            plan.renames.append(ObjectRef("checkpoint", CHECKPOINT_NAME))

        # Deletions (expired on source): recipes, then manifests, then the
        # §4.5-tagged containers those versions owned — the mirror never
        # keeps a recipe whose containers are gone.
        for name in sorted(set(target["recipes"]) - set(source["recipes"])):
            plan.deletes.append(ObjectRef("recipe", name))
        for name in sorted(set(target["manifests"]) - set(source["manifests"])):
            plan.deletes.append(ObjectRef("manifest", name))
        for name in sorted(set(target["containers"]) - set(source["containers"])):
            plan.deletes.append(ObjectRef("container", name))
        if CHECKPOINT_NAME in target["checkpoint"] and checkpoint is None:
            plan.deletes.append(ObjectRef("checkpoint", CHECKPOINT_NAME))
        return plan
