"""Replicable-object model: what a repository *is*, for mirroring purposes.

A HiDeStore repository directory is a set of four object kinds:

* ``container`` — ``containers/container-XXXXXXXX.hdsc``.  Sealed archival
  containers are **immutable**: :meth:`FileContainerStore.write` refuses to
  overwrite, so a container file's content never changes after its first
  rename into place.  A mirror therefore copies each container exactly once
  (diffed by presence + size) and never again — the O(delta) property the
  §4.2 chunk filter buys us.
* ``recipe`` — ``recipes/recipe-XXXXXXXX.hdsr``.  Mostly stable, but **not**
  immutable: §4.3 chain maintenance rewrites the previous version's recipe
  in place, and Algorithm-1 flattening may rewrite any of them.  Diffed by
  content digest.
* ``manifest`` — ``manifests/manifest-XXXXXXXX.txt``.  Immutable per
  version; diffed by digest anyway (they are tiny).
* ``checkpoint`` — ``checkpoint.json``: the volatile engine state (T1
  tables, active containers, deletion tags).  Rewritten after every backup;
  re-shipped whenever its digest moved.

:func:`capture_state` snapshots a repository into a plain dict the
:class:`~repro.replication.planner.SyncPlanner` diffs; it is also what a
mirror daemon returns in ``REPLICATE_STATE_OK``, so both sides of the wire
speak the same shape.
"""

from __future__ import annotations

import hashlib
import os
import re
from typing import Dict, Iterator, Tuple

from ..errors import ReplicationError
from ..repository import checkpoint_path, repo_paths
from ..storage.repo import RepoStorage, is_repo_url

#: Object kinds, in the order they must be shipped (containers are
#: invisible until a recipe references them; the checkpoint commits last).
KINDS = ("container", "manifest", "recipe", "checkpoint")

#: Mirror-side file-name vocabulary per kind.  Anything else is rejected —
#: these names arrive over the wire and are joined under the tenant root.
_NAME_PATTERNS: Dict[str, "re.Pattern[str]"] = {
    "container": re.compile(r"^container-\d{8}\.hdsc$"),
    "recipe": re.compile(r"^recipe-\d{8}\.hdsr$"),
    "manifest": re.compile(r"^manifest-\d{8}\.txt$"),
    "checkpoint": re.compile(r"^checkpoint\.json$"),
}

#: Suffix of staged (shipped but not yet committed) mirror objects.  Not
#: ``.tmp`` — :class:`FileContainerStore` sweeps ``*.tmp`` on open, and a
#: staged object must survive a mirror restart mid-sync.
STAGED_SUFFIX = ".staged"

#: The checkpoint's one valid object name.
CHECKPOINT_NAME = "checkpoint.json"

#: A repository state snapshot: kind -> name -> {"size": int, "digest": str}.
#: Containers carry size only (immutable once visible; presence + size is
#: the whole identity), digest-bearing kinds carry both.
RepoState = Dict[str, Dict[str, Dict]]


def validate_object(kind: str, name: str) -> Tuple[str, str]:
    """Vet one (kind, name) pair from a plan or a wire frame; returns it."""
    pattern = _NAME_PATTERNS.get(kind)
    if pattern is None:
        raise ReplicationError(f"unknown replication object kind {kind!r}")
    if not isinstance(name, str) or not pattern.match(name):
        raise ReplicationError(f"invalid {kind} object name {name!r}")
    return kind, name


def object_path(root: str, kind: str, name: str) -> str:
    """Absolute path of one replicable object inside a repository."""
    validate_object(kind, name)
    containers_dir, recipes_dir, manifests_dir = repo_paths(root)
    base = {
        "container": containers_dir,
        "recipe": recipes_dir,
        "manifest": manifests_dir,
    }.get(kind)
    if base is None:  # checkpoint
        return checkpoint_path(root)
    return os.path.join(base, name)


def file_digest(path: str) -> Tuple[int, str]:
    """(size, sha256 hex) of a file, streamed."""
    digest = hashlib.sha256()
    size = 0
    with open(path, "rb") as handle:
        while True:
            block = handle.read(1 << 20)
            if not block:
                break
            digest.update(block)
            size += len(block)
    return size, digest.hexdigest()


def blob_digest(blob: bytes) -> str:
    """The hex sha256 of an in-memory object blob (matches ``file_digest``)."""
    return hashlib.sha256(blob).hexdigest()


def _scan_dir(directory: str, kind: str) -> Dict[str, Dict]:
    pattern = _NAME_PATTERNS[kind]
    objects: Dict[str, Dict] = {}
    if not os.path.isdir(directory):
        return objects
    for name in sorted(os.listdir(directory)):
        if not pattern.match(name):
            continue  # .tmp / .staged / foreign files are not repo state
        path = os.path.join(directory, name)
        if kind == "container":
            # Immutable once visible: presence + size is the identity, and
            # skipping the digest keeps state capture O(metadata).
            objects[name] = {"size": os.path.getsize(path)}
        else:
            size, digest = file_digest(path)
            objects[name] = {"size": size, "digest": digest}
    return objects


def capture_state(root: str) -> RepoState:
    """Snapshot a repository directory's replicable objects.

    Must run while no backup/deletion is mutating the repository (the
    caller holds the registry's reader lock, or owns the directory
    outright); a mutation between digesting and shipping is caught later by
    the session's read-time digest check.

    ``root`` may be a plain directory (the historical fast path below) or
    any backend repo spec — URL-addressed repositories snapshot through
    :meth:`~repro.storage.repo.RepoStorage.state`, which produces the same
    shape.
    """
    if is_repo_url(root):
        storage = RepoStorage(root)
        try:
            return storage.state()
        finally:
            storage.close()
    containers_dir, recipes_dir, manifests_dir = repo_paths(root)
    state: RepoState = {
        "containers": _scan_dir(containers_dir, "container"),
        "recipes": _scan_dir(recipes_dir, "recipe"),
        "manifests": _scan_dir(manifests_dir, "manifest"),
        "checkpoint": {},
    }
    checkpoint = checkpoint_path(root)
    if os.path.exists(checkpoint):
        size, digest = file_digest(checkpoint)
        state["checkpoint"] = {CHECKPOINT_NAME: {"size": size, "digest": digest}}
    return state


def normalize_state(obj: object) -> RepoState:
    """Vet a state document that arrived over the wire (untrusted JSON)."""
    if not isinstance(obj, dict):
        raise ReplicationError("replication state must be a JSON object")
    state: RepoState = {}
    for section, kind in (
        ("containers", "container"),
        ("recipes", "recipe"),
        ("manifests", "manifest"),
        ("checkpoint", "checkpoint"),
    ):
        raw = obj.get(section, {})
        if not isinstance(raw, dict):
            raise ReplicationError(f"replication state section {section!r} malformed")
        clean: Dict[str, Dict] = {}
        for name, info in raw.items():
            validate_object(kind, name)
            if not isinstance(info, dict) or not isinstance(info.get("size"), int):
                raise ReplicationError(f"replication state entry {name!r} malformed")
            entry = {"size": info["size"]}
            if "digest" in info:
                if not isinstance(info["digest"], str):
                    raise ReplicationError(f"replication state digest of {name!r} malformed")
                entry["digest"] = info["digest"]
            clean[name] = entry
        state[section] = clean
    return state


def iter_blocks(blob: bytes, block_size: int = 1 << 18) -> Iterator[bytes]:
    """Slice one object blob into wire/file-friendly blocks."""
    view = memoryview(blob)
    for offset in range(0, len(blob), block_size):
        yield bytes(view[offset : offset + block_size])


def source_identity(root: str) -> Dict[str, str]:
    """Where a repository physically lives, for self-sync detection.

    URL-addressed repositories identify by canonical URL (see
    :meth:`~repro.storage.repo.RepoStorage.identity`); a ``file://`` URL
    and the bare path it names produce the same identity.
    """
    if is_repo_url(root):
        return RepoStorage(root).identity()
    import socket

    return {"host": socket.gethostname(), "path": os.path.realpath(root)}


def same_identity(a: Dict, b: Dict) -> bool:
    """True when two identities resolve to the same directory on one host."""
    return (
        bool(a.get("path"))
        and a.get("host") == b.get("host")
        and a.get("path") == b.get("path")
    )
