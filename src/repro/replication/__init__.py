"""Replication & disaster recovery: incremental mirror sync and repair.

The subsystem mirrors an on-disk repository to a second location — a
local directory or a tenant on a remote daemon — in O(delta) work per
sync, and repairs damaged containers back from that mirror:

* :mod:`.state` — the replicable-object model: what a repository *is* on
  the wire (containers / manifests / recipes / checkpoint) and how each
  kind is identified and digested.
* :mod:`.planner` — :class:`SyncPlanner` diffs two states into a
  :class:`SyncPlan`: sealed containers copied once and never again,
  mutable objects re-shipped on digest change, expired objects deleted.
* :mod:`.targets` — :class:`LocalMirror` (directory) and
  :class:`RemoteMirror` (daemon tenant over ``REPLICATE_*`` frames)
  behind one :class:`ReplicationTarget` protocol.
* :mod:`.session` — :class:`ReplicationSession` executes one sync with a
  crash-safe journal; interrupted syncs resume without re-shipping.
* :mod:`.repair` — :func:`repair_from_mirror` re-fetches containers that
  fail verification, validating every blob before it lands.
"""

from .planner import ObjectRef, ShipAction, SyncPlan, SyncPlanner
from .repair import (
    RepairReport,
    check_container_blob,
    repair_from_mirror,
    scan_containers,
    verify_repository,
)
from .session import ReplicationSession, SyncJournal, SyncReport, journal_path_for
from .state import capture_state, normalize_state, same_identity, source_identity
from .targets import (
    LocalMirror,
    RemoteMirror,
    ReplicationTarget,
    commit_objects,
    open_target,
    read_object,
    write_object,
)

__all__ = [
    "LocalMirror",
    "ObjectRef",
    "RemoteMirror",
    "RepairReport",
    "ReplicationSession",
    "ReplicationTarget",
    "ShipAction",
    "SyncJournal",
    "SyncPlan",
    "SyncPlanner",
    "SyncReport",
    "capture_state",
    "check_container_blob",
    "commit_objects",
    "journal_path_for",
    "normalize_state",
    "open_target",
    "read_object",
    "repair_from_mirror",
    "same_identity",
    "scan_containers",
    "source_identity",
    "verify_repository",
    "write_object",
]
