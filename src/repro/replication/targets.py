"""Replication targets: where a mirror lives (local directory or daemon).

Both targets speak the same five-verb surface the
:class:`~repro.replication.session.ReplicationSession` drives:

* ``state()`` — the mirror's current :data:`RepoState` for diffing;
* ``put(kind, name, blob, staged)`` — land one object, atomically
  (``*.tmp`` + rename), either into place or as a ``*.staged`` file;
* ``commit(renames, deletes)`` — flip staged objects live and apply
  expirations, in the caller's order;
* ``fetch(kind, name)`` — read one object back (the ``repair`` path);
* ``identity()`` — where the mirror physically lives, so ``replicate`` and
  ``repair`` can refuse a target that resolves to the source repository.

:class:`LocalMirror` is a plain directory; :class:`RemoteMirror` drives a
mirror daemon through the ``REPLICATE_*`` frames via
:class:`~repro.client.remote.RemoteRepository`, inheriting its pooling,
timeouts and idempotent-op retry machinery.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Protocol, Tuple, runtime_checkable

from ..errors import ReplicationError
from ..storage.repo import RepoStorage, is_repo_url
from .planner import ObjectRef
from .state import (
    STAGED_SUFFIX,
    RepoState,
    blob_digest,
    capture_state,
    object_path,
    source_identity,
    validate_object,
)


@runtime_checkable
class ReplicationTarget(Protocol):
    """The verbs a mirror must support (see module docstring)."""

    def state(self) -> RepoState: ...

    def put(self, kind: str, name: str, blob: bytes, staged: bool = False) -> None: ...

    def commit(self, renames: List[ObjectRef], deletes: List[ObjectRef]) -> None: ...

    def fetch(self, kind: str, name: str) -> bytes: ...

    def identity(self) -> Dict[str, str]: ...

    def close(self) -> None: ...


# ----------------------------------------------------------------------
# Shared filesystem mechanics (LocalMirror + the daemon's target handler)
# ----------------------------------------------------------------------
def write_object(root: str, kind: str, name: str, blob: bytes, staged: bool) -> str:
    """Atomically land one object under ``root``; returns the final path.

    Direct writes go ``<path>.tmp`` → ``<path>`` (a crash leaves only
    ``*.tmp`` litter the stores already sweep); staged writes go
    ``<path>.staged.tmp`` → ``<path>.staged`` and wait for
    :func:`commit_objects`.

    ``root`` may also be a backend repo spec (URL), in which case the
    object lands through :class:`~repro.storage.repo.RepoStorage` with the
    same staging semantics and the returned "path" is the object name.
    """
    if is_repo_url(root):
        validate_object(kind, name)
        storage = RepoStorage(root)
        try:
            storage.write_object(kind, name, blob, staged=staged)
        finally:
            storage.close()
        return name + STAGED_SUFFIX if staged else name
    path = object_path(root, kind, name)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    final = path + STAGED_SUFFIX if staged else path
    tmp = final + ".tmp"
    try:
        with open(tmp, "wb") as handle:
            handle.write(blob)
        os.replace(tmp, final)
    except BaseException:
        try:
            os.remove(tmp)
        except OSError:
            pass
        raise
    return final


def commit_objects(root: str, renames: List[ObjectRef], deletes: List[ObjectRef]) -> int:
    """Apply a sync's commit step to a mirror directory; returns ops applied.

    Idempotent by construction, so an interrupted commit can simply be
    re-run: a rename whose staged file is gone but whose final file exists
    already happened; a delete of a missing object already happened.

    ``root`` may also be a backend repo spec (URL) — same semantics via
    :meth:`~repro.storage.repo.RepoStorage.commit_objects`.
    """
    if is_repo_url(root):
        for ref in list(renames) + list(deletes):
            validate_object(ref.kind, ref.name)
        storage = RepoStorage(root)
        try:
            return storage.commit_objects(
                [(ref.kind, ref.name) for ref in renames],
                [(ref.kind, ref.name) for ref in deletes],
            )
        finally:
            storage.close()
    applied = 0
    for ref in renames:
        path = object_path(root, ref.kind, ref.name)
        staged = path + STAGED_SUFFIX
        if os.path.exists(staged):
            os.replace(staged, path)
            applied += 1
        elif not os.path.exists(path):
            raise ReplicationError(
                f"commit: no staged or final {ref.kind} {ref.name!r} on the mirror"
            )
    for ref in deletes:
        path = object_path(root, ref.kind, ref.name)
        try:
            os.remove(path)
            applied += 1
        except FileNotFoundError:
            pass
    return applied


def read_object(root: str, kind: str, name: str) -> bytes:
    """Read one replicable object's bytes from a repository (path or URL)."""
    if is_repo_url(root):
        from ..errors import ObjectMissingError

        validate_object(kind, name)
        storage = RepoStorage(root)
        try:
            return storage.read_object(kind, name)
        except ObjectMissingError:
            raise ReplicationError(f"no {kind} object {name!r} in {root}") from None
        finally:
            storage.close()
    path = object_path(root, kind, name)
    try:
        with open(path, "rb") as handle:
            return handle.read()
    except FileNotFoundError:
        raise ReplicationError(f"no {kind} object {name!r} in {root}") from None


class LocalMirror:
    """A mirror living in a local directory (created on first sync)."""

    def __init__(self, root: str) -> None:
        self.root = root

    def state(self) -> RepoState:
        return capture_state(self.root)

    def put(self, kind: str, name: str, blob: bytes, staged: bool = False) -> None:
        validate_object(kind, name)
        write_object(self.root, kind, name, blob, staged)

    def commit(self, renames: List[ObjectRef], deletes: List[ObjectRef]) -> None:
        commit_objects(self.root, renames, deletes)

    def fetch(self, kind: str, name: str) -> bytes:
        return read_object(self.root, kind, name)

    def identity(self) -> Dict[str, str]:
        return source_identity(self.root)

    def close(self) -> None:  # nothing to release
        pass


class RemoteMirror:
    """A tenant on a mirror daemon, driven over the ``REPLICATE_*`` frames."""

    def __init__(self, address, repo: str, timeout: float = 30.0, retries: int = 3) -> None:
        from ..client.remote import RemoteRepository

        self.remote = RemoteRepository(address, repo, timeout=timeout, retries=retries)
        self._identity: Optional[Dict[str, str]] = None

    def _state_doc(self) -> Tuple[RepoState, Dict[str, str]]:
        from .state import normalize_state

        doc = self.remote.replicate_state()
        identity = doc.get("identity")
        self._identity = identity if isinstance(identity, dict) else {}
        return normalize_state(doc.get("state")), self._identity

    def state(self) -> RepoState:
        state, _ = self._state_doc()
        return state

    def put(self, kind: str, name: str, blob: bytes, staged: bool = False) -> None:
        validate_object(kind, name)
        self.remote.replicate_put(kind, name, blob, blob_digest(blob), staged)

    def commit(self, renames: List[ObjectRef], deletes: List[ObjectRef]) -> None:
        self.remote.replicate_commit(
            [[ref.kind, ref.name] for ref in renames],
            [[ref.kind, ref.name] for ref in deletes],
        )

    def fetch(self, kind: str, name: str) -> bytes:
        validate_object(kind, name)
        return self.remote.replicate_fetch(kind, name)

    def identity(self) -> Dict[str, str]:
        if self._identity is None:
            self._state_doc()
        return self._identity or {}

    def close(self) -> None:
        self.remote.close()


def open_target(target: str, remote: Optional[str] = None) -> ReplicationTarget:
    """CLI factory: ``target`` is a directory, or a tenant when ``remote``
    carries a daemon's ``HOST:PORT`` (validated via ``parse_address``)."""
    if remote:
        from ..client.remote import parse_address

        return RemoteMirror(parse_address(remote), target)
    return LocalMirror(target)
