"""Verifiable repair: re-fetch damaged containers from a mirror.

The repair path is the disaster-recovery half of replication: when
``verify`` finds archival containers that are unreadable, fail deep
payload re-hashing, or are missing outright, ``repair_from_mirror``
re-fetches exactly those containers from a replication target, validates
every fetched blob *before* it touches the repository (unpack + chunk
payloads re-hashed against their fingerprints), and lands it atomically
(``*.tmp`` + rename) over the damaged file.

Sealed containers are immutable (§4.2), so a mirror populated by
``replicate`` holds bit-identical copies — a validated fetch is a full
repair, no reconciliation needed.  A mirror whose copy is *also* damaged
can never make things worse: blobs failing validation are rejected and
reported, and the original file is left untouched.
"""

from __future__ import annotations

import json
import os
import re
import struct
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..errors import ReproError, StorageError
from ..observability import MetricsRegistry, get_registry
from ..storage.container_store import _COMPRESSED_MAGIC, unpack_container
from .state import same_identity, source_identity
from .targets import ReplicationTarget, write_object

_CONTAINER_RE = re.compile(r"^container-(\d{8})\.hdsc$")


def container_name(cid: int) -> str:
    """The on-disk file name of archival container ``cid``."""
    return f"container-{cid:08d}.hdsc"


def check_container_blob(blob: bytes, expected_id: int, deep: bool = True) -> Optional[str]:
    """Validate one serialised container; returns the defect or ``None``.

    Shallow: the blob must decompress/unpack as container ``expected_id``.
    Deep: every chunk payload must re-hash to its fingerprint (the check
    that catches bit-flips the container format itself cannot see — chunk
    payloads carry no per-chunk checksum, their fingerprint *is* the
    checksum).
    """
    from ..chunking.fingerprint import Fingerprinter

    try:
        raw = blob
        if raw[:4] == _COMPRESSED_MAGIC:
            raw = zlib.decompress(raw[4:])
        container = unpack_container(raw, expected_id=expected_id)
    except (ReproError, struct.error, zlib.error, IndexError) as exc:
        return f"unreadable: {exc}"
    if deep:
        fingerprinter = None
        for fp, slot in container.items():
            if slot.data is None:
                continue
            if fingerprinter is None or fingerprinter.width != len(fp):
                fingerprinter = Fingerprinter(width=len(fp))
            if fingerprinter.fingerprint(slot.data) != fp:
                return f"payload of chunk {fp.hex()[:8]} does not re-hash to its fingerprint"
    return None


def referenced_container_ids(repo_root: str) -> Set[int]:
    """Archival container IDs the repository's metadata still points at.

    Union of positive cids across every retained recipe plus the §4.5
    deletion tags in the checkpoint (tagged containers must exist for the
    expiry path to reclaim them).  Chain markers (negative) and the
    active-pool marker (0) reference no archival file.
    """
    from ..storage.recipe import FileRecipeStore
    from ..storage.repo import RepoStorage, is_repo_url

    referenced: Set[int] = set()
    if is_repo_url(repo_root):
        storage = RepoStorage(repo_root)
        try:
            recipes = storage.recipe_store()
            for version_id in recipes.version_ids():
                for entry in recipes.peek(version_id).entries:
                    if entry.cid > 0:
                        referenced.add(entry.cid)
            if storage.has_checkpoint():
                try:
                    document = storage.read_checkpoint_document()
                    for cids in document.get("deletion_tags", {}).values():
                        referenced.update(int(cid) for cid in cids)
                except (ValueError, TypeError, ReproError):
                    pass  # a damaged checkpoint is verify's problem
        finally:
            storage.close()
        return referenced
    recipes_dir = os.path.join(repo_root, "recipes")
    if os.path.isdir(recipes_dir):
        recipes = FileRecipeStore(recipes_dir)
        for version_id in recipes.version_ids():
            for entry in recipes.peek(version_id).entries:
                if entry.cid > 0:
                    referenced.add(entry.cid)
    checkpoint = os.path.join(repo_root, "checkpoint.json")
    if os.path.exists(checkpoint):
        try:
            with open(checkpoint, "r", encoding="utf-8") as handle:
                document = json.load(handle)
            for cids in document.get("deletion_tags", {}).values():
                referenced.update(int(cid) for cid in cids)
        except (ValueError, OSError, TypeError):
            pass  # a damaged checkpoint is verify's problem, not repair's
    return referenced


def scan_containers(repo_root: str, deep: bool = True) -> Tuple[int, Dict[str, str]]:
    """Find damaged archival containers; returns ``(scanned, {name: defect})``.

    Three defect classes: present-but-unreadable, present-but-payload-
    corrupt (``deep``), and referenced-but-missing.
    """
    from ..storage.repo import RepoStorage, is_repo_url

    bad: Dict[str, str] = {}
    scanned = 0
    present: Set[int] = set()
    if is_repo_url(repo_root):
        storage = RepoStorage(repo_root)
        try:
            for cid in storage.container_object_ids():
                scanned += 1
                present.add(cid)
                blob = storage.read_object("container", container_name(cid))
                defect = check_container_blob(blob, cid, deep=deep)
                if defect is not None:
                    bad[container_name(cid)] = defect
        finally:
            storage.close()
        for cid in sorted(referenced_container_ids(repo_root) - present):
            bad[container_name(cid)] = "missing"
        return scanned, bad
    containers_dir = os.path.join(repo_root, "containers")
    if os.path.isdir(containers_dir):
        for name in sorted(os.listdir(containers_dir)):
            match = _CONTAINER_RE.match(name)
            if not match:
                continue
            scanned += 1
            cid = int(match.group(1))
            present.add(cid)
            with open(os.path.join(containers_dir, name), "rb") as handle:
                blob = handle.read()
            defect = check_container_blob(blob, cid, deep=deep)
            if defect is not None:
                bad[name] = defect
    for cid in sorted(referenced_container_ids(repo_root) - present):
        bad[container_name(cid)] = "missing"
    return scanned, bad


@dataclass
class RepairReport:
    """Outcome of one ``repair_from_mirror`` run."""

    containers_scanned: int = 0
    #: name -> defect found by the pre-repair scan
    damaged: Dict[str, str] = field(default_factory=dict)
    repaired: List[str] = field(default_factory=list)
    #: name -> why the mirror's copy could not be used
    unrepaired: Dict[str, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.unrepaired

    def as_dict(self) -> Dict:
        return {
            "containers_scanned": self.containers_scanned,
            "damaged": dict(self.damaged),
            "repaired": list(self.repaired),
            "unrepaired": dict(self.unrepaired),
            "ok": self.ok,
        }

    def summary(self) -> str:
        if not self.damaged:
            return f"scanned {self.containers_scanned} containers: all sound"
        status = "OK" if self.ok else f"{len(self.unrepaired)} NOT repaired"
        return (
            f"scanned {self.containers_scanned} containers: "
            f"{len(self.damaged)} damaged, {len(self.repaired)} repaired, {status}"
        )


def repair_from_mirror(
    repo_root: str,
    mirror: ReplicationTarget,
    deep: bool = True,
    metrics: Optional[MetricsRegistry] = None,
) -> RepairReport:
    """Scan ``repo_root`` for damaged containers and re-fetch them.

    Every fetched blob is validated (unpack under the damaged container's
    ID, payloads re-hashed) before it replaces anything; validation
    failures leave the local file untouched and are reported in
    ``unrepaired``.  Refuses a mirror that resolves to the repository
    being repaired — "repairing" from the damaged files themselves.
    """
    from ..errors import ReplicationError

    metrics = metrics if metrics is not None else get_registry()
    mirror_id = mirror.identity()
    if same_identity(source_identity(repo_root), mirror_id):
        raise ReplicationError(
            f"repair mirror resolves to the repository being repaired "
            f"({mirror_id.get('path')!r} on {mirror_id.get('host')!r})"
        )
    report = RepairReport()
    report.containers_scanned, report.damaged = scan_containers(repo_root, deep=deep)
    for name in sorted(report.damaged):
        cid = int(_CONTAINER_RE.match(name).group(1))
        try:
            blob = mirror.fetch("container", name)
        except ReproError as exc:
            report.unrepaired[name] = f"mirror fetch failed: {exc}"
            metrics.inc("repair.containers_unrepaired")
            continue
        defect = check_container_blob(blob, cid, deep=True)
        if defect is not None:
            report.unrepaired[name] = f"mirror copy rejected: {defect}"
            metrics.inc("repair.containers_unrepaired")
            continue
        write_object(repo_root, "container", name, blob, staged=False)
        report.repaired.append(name)
        metrics.inc("repair.containers_repaired")
        metrics.inc("repair.bytes_fetched", len(blob))
    return report


def verify_repository(repo_root: str, deep: bool = False) -> "VerificationReport":
    """Full-repository verification over an on-disk repo directory.

    Runs the engine-level walk (:func:`repro.core.verify.verify_system`)
    and, with ``deep``, re-hashes every stored chunk payload *and*
    re-checks every container file blob — the checks ``repair`` keys off.
    """
    from ..core.verify import VerificationReport, verify_system
    from ..repository import open_repository

    try:
        system = open_repository(repo_root)
    except (ReproError, ValueError, KeyError, OSError) as exc:
        report = VerificationReport()
        report.note(f"repository unreadable: {exc}")
        return report
    try:
        report = verify_system(system)
    except StorageError as exc:
        report = VerificationReport()
        report.note(f"verification aborted: {exc}")
    if deep:
        _scanned, bad = scan_containers(repo_root, deep=True)
        for name, defect in sorted(bad.items()):
            report.note(f"container file {name}: {defect}")
    return report
