"""The replication session: execute one sync plan against a mirror.

One :meth:`ReplicationSession.run` is one sync:

1. refuse a target that resolves to the source repository (self-sync);
2. snapshot the source state (the caller guarantees no writer is mutating
   the repository — the daemon wraps this in the registry's reader lock,
   the CLI owns the directory);
3. diff against the target's state (:class:`SyncPlanner`) and journal the
   plan;
4. ship the delta — containers and manifests straight into place (atomic
   per object, invisible until a recipe references them), recipes and the
   checkpoint as staged files;
5. commit: flip staged objects live and apply expirations.

Crash safety: every landed object is ``*.tmp`` + rename, staged objects
survive a mirror restart, and the commit is idempotent — so a sync killed
at *any* point leaves the mirror serving exactly its previous consistent
state, and simply re-running the sync resumes it: the fresh diff skips
every container that already made it (journaled and reported as
``containers_skipped``).

The journal (one JSON-lines file per target under
``<source>/.replication/``) is itself written crash-safely: the header
truncates the previous run via ``*.tmp`` + rename, progress lines append
with flush.  It is an operational record — resume correctness never
depends on it.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import asdict, dataclass
from typing import Dict, Optional

from ..errors import ReplicationError
from ..observability import MetricsRegistry, get_registry
from ..storage.repo import RepoStorage, is_repo_url
from .planner import SyncPlan, SyncPlanner
from .state import blob_digest, capture_state, same_identity, source_identity
from .targets import ReplicationTarget, read_object


@dataclass
class SyncReport:
    """What one sync shipped, skipped and deleted."""

    containers_shipped: int = 0
    containers_skipped: int = 0
    objects_shipped: int = 0
    bytes_shipped: int = 0
    objects_deleted: int = 0
    committed: bool = False
    duration_seconds: float = 0.0

    def as_dict(self) -> Dict:
        return asdict(self)


class SyncJournal:
    """Crash-safe JSON-lines record of one sync run."""

    def __init__(self, path: Optional[str]) -> None:
        self.path = path
        self._handle = None
        if path is not None:
            os.makedirs(os.path.dirname(path) or ".", exist_ok=True)

    def start(self, target_identity: Dict, plan: SyncPlan) -> None:
        if self.path is None:
            return
        # Replace any previous run's journal atomically, then append.
        tmp = self.path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(
                json.dumps(
                    {
                        "event": "sync_begin",
                        "target": target_identity,
                        "plan": plan.summary(),
                    },
                    separators=(",", ":"),
                )
                + "\n"
            )
        os.replace(tmp, self.path)
        self._handle = open(self.path, "a", encoding="utf-8")

    def note(self, event: str, **fields) -> None:
        if self._handle is None:
            return
        self._handle.write(json.dumps({"event": event, **fields}, separators=(",", ":")) + "\n")
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


def journal_path_for(source_root: str, target_identity: Dict) -> str:
    """Default journal location: one file per target under the source repo."""
    key = hashlib.sha256(
        json.dumps(target_identity, sort_keys=True).encode("utf-8")
    ).hexdigest()[:12]
    return os.path.join(source_root, ".replication", f"sync-{key}.jsonl")


class ReplicationSession:
    """Incrementally mirror one repository directory to a target.

    Args:
        source_root: the repository directory to mirror.
        target: a :class:`~repro.replication.targets.ReplicationTarget`.
        journal: journal file path; ``None`` derives the default under
            ``<source>/.replication/``, ``""`` disables journaling.
        metrics: registry for ``replication.*`` counters and the sync
            duration histogram (defaults to the process registry).
    """

    def __init__(
        self,
        source_root: str,
        target: ReplicationTarget,
        journal: Optional[str] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if is_repo_url(source_root):
            if not RepoStorage(source_root).exists():
                raise ReplicationError(
                    f"source repository {source_root!r} does not exist"
                )
        elif not os.path.isdir(source_root):
            raise ReplicationError(f"source repository {source_root!r} does not exist")
        self.source_root = source_root
        self.target = target
        self.metrics = metrics if metrics is not None else get_registry()
        self._journal_arg = journal
        self.journal_path: Optional[str] = None

    # ------------------------------------------------------------------
    def check_not_self(self) -> Dict:
        """Refuse a target that is the source repository itself."""
        target_id = self.target.identity()
        if same_identity(source_identity(self.source_root), target_id):
            raise ReplicationError(
                f"replication target resolves to the source repository "
                f"({target_id.get('path')!r} on {target_id.get('host')!r}); "
                "refusing to self-sync"
            )
        return target_id

    def plan(self) -> SyncPlan:
        """Diff source against target without shipping anything (dry run)."""
        self.check_not_self()
        return SyncPlanner().plan(capture_state(self.source_root), self.target.state())

    # ------------------------------------------------------------------
    def run(self) -> SyncReport:
        """Execute one full sync; returns the shipping report."""
        started = time.perf_counter()
        target_id = self.check_not_self()
        if self._journal_arg == "":
            journal = SyncJournal(None)
        elif self._journal_arg is None:
            # URL-addressed sources have no local directory to journal
            # under; pass an explicit path to journal those syncs.
            if is_repo_url(self.source_root):
                journal = SyncJournal(None)
            else:
                journal = SyncJournal(journal_path_for(self.source_root, target_id))
        else:
            journal = SyncJournal(self._journal_arg)
        self.journal_path = journal.path

        plan = SyncPlanner().plan(capture_state(self.source_root), self.target.state())
        journal.start(target_id, plan)
        report = SyncReport(containers_skipped=plan.containers_skipped)
        self.metrics.inc("replication.containers_skipped", plan.containers_skipped)
        try:
            for action in plan.ships:
                blob = read_object(self.source_root, action.kind, action.name)
                if action.digest and blob_digest(blob) != action.digest:
                    raise ReplicationError(
                        f"{action.kind} {action.name!r} changed while syncing; "
                        "is a backup mutating the source repository? re-run "
                        "the sync under the repository lock"
                    )
                if action.kind == "container" and len(blob) != action.size:
                    raise ReplicationError(
                        f"container {action.name!r} changed size while syncing"
                    )
                self.target.put(action.kind, action.name, blob, staged=action.staged)
                report.objects_shipped += 1
                report.bytes_shipped += len(blob)
                if action.kind == "container":
                    report.containers_shipped += 1
                    self.metrics.inc("replication.containers_shipped")
                self.metrics.inc("replication.bytes_shipped", len(blob))
                journal.note(
                    "ship", kind=action.kind, name=action.name,
                    bytes=len(blob), staged=action.staged,
                )
            if plan.needs_commit:
                self.target.commit(plan.renames, plan.deletes)
                report.committed = True
                report.objects_deleted = len(plan.deletes)
                self.metrics.inc("replication.objects_deleted", len(plan.deletes))
                journal.note(
                    "commit", renames=len(plan.renames), deletes=len(plan.deletes)
                )
            report.duration_seconds = time.perf_counter() - started
            self.metrics.observe("replication.sync_seconds", report.duration_seconds)
            self.metrics.inc("replication.syncs_total")
            journal.note("sync_end", report=report.as_dict())
            return report
        except BaseException as exc:
            self.metrics.inc("replication.sync_failures_total")
            journal.note(
                "sync_error", error=type(exc).__name__, message=str(exc),
                shipped=report.objects_shipped,
            )
            raise
        finally:
            journal.close()
