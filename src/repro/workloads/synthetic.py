"""Synthetic backup-version evolution model.

The paper's datasets (Linux kernel, gcc, fslhomes, macos) are sequences of
highly similar versions: each new version keeps most chunks of the previous
one, replaces some, inserts some, deletes some.  Every metric the paper
evaluates — deduplication ratio, lookup traffic, index size, speed factor —
depends only on that *chunk-recurrence structure*, so we model it directly:

* a chunk is an integer token with a deterministic pseudo-random size
  (mean ≈ 8 KiB, the paper's TTTD average);
* version ``k+1`` is derived from version ``k`` by per-chunk modification
  (replace with a fresh token), deletion, and block insertion;
* optionally, a fraction of removed chunks *skip* exactly one version and
  reappear (the macos behaviour of Figure 3d);
* optionally, every Nth version is a *major upgrade* with amplified rates.

Everything is seeded: a workload spec always regenerates identical streams.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator, List, Optional

from ..chunking.stream import BackupStream, Chunk, synthetic_fingerprint
from ..errors import WorkloadError
from ..units import KiB


def _mix64(value: int) -> int:
    z = (value + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return z ^ (z >> 31)


def token_size(token: int, mean_size: int = 8 * KiB) -> int:
    """Deterministic chunk size for a token: uniform in [mean/2, 3*mean/2]."""
    spread = _mix64(token) % mean_size  # [0, mean)
    return mean_size // 2 + spread


@dataclass
class WorkloadSpec:
    """Parameters of a synthetic versioned workload.

    Attributes:
        name: label used in stream tags and reports.
        versions: number of backup versions to generate.
        chunks_per_version: approximate stream length per version.
        mean_chunk_size: average chunk size in bytes.
        modify_rate: per-chunk probability of replacement by fresh content.
        delete_rate: per-chunk probability of removal.
        insert_rate: inserted chunks per existing chunk (fresh content).
        skip_rate: per-chunk probability that a removal is temporary — the
            chunk disappears for exactly one version, then returns (macos).
        major_every: every Nth version is a major upgrade (0 disables).
        major_factor: rate multiplier applied on major upgrades.
        seed: RNG seed; same spec → same streams.
    """

    name: str = "synthetic"
    versions: int = 10
    chunks_per_version: int = 2048
    mean_chunk_size: int = 8 * KiB
    modify_rate: float = 0.03
    delete_rate: float = 0.01
    insert_rate: float = 0.015
    skip_rate: float = 0.0
    major_every: int = 0
    major_factor: float = 3.0
    seed: int = 42

    def __post_init__(self) -> None:
        if self.versions < 1:
            raise WorkloadError("versions must be >= 1")
        if self.chunks_per_version < 1:
            raise WorkloadError("chunks_per_version must be >= 1")
        for rate_name in ("modify_rate", "delete_rate", "insert_rate", "skip_rate"):
            rate = getattr(self, rate_name)
            if not (0.0 <= rate <= 1.0):
                raise WorkloadError(f"{rate_name} must be in [0, 1], got {rate}")
        if self.major_every < 0 or self.major_factor < 1.0:
            raise WorkloadError("major_every must be >= 0 and major_factor >= 1")

    @property
    def new_data_rate(self) -> float:
        """Approximate fresh-content fraction per minor version."""
        return self.modify_rate + self.insert_rate


class SyntheticWorkload:
    """Generates the version streams described by a :class:`WorkloadSpec`.

    Iterating yields one :class:`BackupStream` per version, tagged
    ``"<name>-v<k>"``.  Streams are regenerable: :meth:`versions` restarts
    from the first version every time.
    """

    def __init__(self, spec: WorkloadSpec) -> None:
        self.spec = spec

    # ------------------------------------------------------------------
    def versions(self) -> Iterator[BackupStream]:
        """Yield every version stream in order (deterministic)."""
        spec = self.spec
        rng = random.Random(spec.seed)
        next_token = 1
        current: List[int] = []
        for _ in range(spec.chunks_per_version):
            current.append(next_token)
            next_token += 1
        skipped: List[int] = []  # chunks absent this version, back next

        for version in range(1, spec.versions + 1):
            if version > 1:
                factor = 1.0
                if spec.major_every and (version - 1) % spec.major_every == 0:
                    factor = spec.major_factor
                modify = min(1.0, spec.modify_rate * factor)
                delete = min(1.0, spec.delete_rate * factor)
                insert = min(1.0, spec.insert_rate * factor)

                evolved: List[int] = []
                returning = skipped
                skipped = []
                for token in current:
                    roll = rng.random()
                    if roll < modify:
                        evolved.append(next_token)  # replaced by fresh content
                        next_token += 1
                    elif roll < modify + delete:
                        if rng.random() < spec.skip_rate and spec.skip_rate > 0:
                            skipped.append(token)  # temporary absence
                        # else: permanently gone
                    else:
                        evolved.append(token)
                    if rng.random() < insert:
                        evolved.append(next_token)
                        next_token += 1
                # Temporarily absent chunks reappear at random positions.
                for token in returning:
                    evolved.insert(rng.randrange(len(evolved) + 1), token)
                current = evolved

            yield BackupStream(
                [
                    Chunk(synthetic_fingerprint(t), token_size(t, spec.mean_chunk_size))
                    for t in current
                ],
                tag=f"{spec.name}-v{version}",
            )

    def all_versions(self) -> List[BackupStream]:
        """Materialise every version (convenience for tests/benches)."""
        return list(self.versions())

    def version(self, index: int) -> BackupStream:
        """The ``index``-th (1-based) version stream."""
        if index < 1 or index > self.spec.versions:
            raise WorkloadError(
                f"version index {index} out of range 1..{self.spec.versions}"
            )
        for k, stream in enumerate(self.versions(), start=1):
            if k == index:
                return stream
        raise AssertionError("unreachable")

    # ------------------------------------------------------------------
    def logical_bytes(self) -> int:
        """Total pre-dedup bytes across all versions."""
        return sum(s.logical_size for s in self.versions())

    def expected_dedup_ratio(self) -> float:
        """Exact dedup ratio of the generated streams (unique-bytes based)."""
        total = 0
        unique = 0
        seen = set()
        for stream in self.versions():
            for chunk in stream:
                total += chunk.size
                if chunk.fingerprint not in seen:
                    seen.add(chunk.fingerprint)
                    unique += chunk.size
        if total == 0:
            return 0.0
        return (total - unique) / total

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SyntheticWorkload({self.spec!r})"


def rates_for_target_ratio(
    target_ratio: float, versions: int, modify_share: float = 0.7
) -> dict:
    """Derive per-version churn rates that hit a whole-dataset dedup ratio.

    With ``V`` versions and fresh-content fraction ``x`` per version, the
    dataset's unique share is roughly ``(1 + (V-1)*x) / V``; solving for the
    target ratio gives ``x``.  The returned dict feeds
    :class:`WorkloadSpec` (``modify_rate``/``insert_rate``; deletions are set
    to balance insertions so version size stays roughly constant).
    """
    if not (0.0 <= target_ratio < 1.0):
        raise WorkloadError("target_ratio must be in [0, 1)")
    if versions < 2:
        raise WorkloadError("need at least 2 versions to tune rates")
    x = (versions * (1.0 - target_ratio) - 1.0) / (versions - 1)
    x = max(0.0, min(1.0, x))
    modify = x * modify_share
    insert = x * (1.0 - modify_share)
    return {
        "modify_rate": modify,
        "insert_rate": insert,
        "delete_rate": insert * 0.9,
    }
