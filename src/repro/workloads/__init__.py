"""Workload substrate: synthetic version streams, presets, traces, file trees."""

from .datasets import PRESETS, DatasetPreset, history_depth_for, load_preset, preset_names
from .edits import EditScriptWorkload, delete, insert, modify, move, revive
from .files import FileTreeGenerator, FileTreeSpec
from .synthetic import (
    SyntheticWorkload,
    WorkloadSpec,
    rates_for_target_ratio,
    token_size,
)
from .trace import import_delimited, iter_trace, read_trace, write_trace

__all__ = [
    "DatasetPreset",
    "EditScriptWorkload",
    "delete",
    "insert",
    "modify",
    "move",
    "revive",
    "FileTreeGenerator",
    "FileTreeSpec",
    "PRESETS",
    "SyntheticWorkload",
    "WorkloadSpec",
    "history_depth_for",
    "import_delimited",
    "iter_trace",
    "load_preset",
    "preset_names",
    "rates_for_target_ratio",
    "read_trace",
    "token_size",
    "write_trace",
]
