"""Real byte-level version generation for end-to-end exercising.

The benchmark path uses metadata-only streams (see :mod:`.synthetic`), but
the chunkers, payload containers and the CLI need actual bytes.  This module
produces an evolving in-memory "source tree": named files whose contents
mutate between versions the way software releases do — region overwrites,
appends, new files, deletions — all seeded and deterministic.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

from ..errors import WorkloadError
from ..units import KiB


@dataclass
class FileTreeSpec:
    """Parameters of the evolving file tree.

    Attributes:
        files: number of files in the first version.
        mean_file_size: average file size in bytes.
        versions: number of versions to generate.
        edit_rate: fraction of each surviving file overwritten per version.
        append_rate: per-file probability of an append.
        churn_rate: per-version probability weight of adding/removing files.
        seed: RNG seed.
    """

    files: int = 16
    mean_file_size: int = 64 * KiB
    versions: int = 5
    edit_rate: float = 0.05
    append_rate: float = 0.3
    churn_rate: float = 0.1
    seed: int = 7

    def __post_init__(self) -> None:
        if self.files < 1 or self.mean_file_size < 1 or self.versions < 1:
            raise WorkloadError("files, mean_file_size and versions must be >= 1")


class FileTreeGenerator:
    """Yields successive versions of a file tree as ``{name: bytes}`` dicts."""

    def __init__(self, spec: FileTreeSpec) -> None:
        self.spec = spec

    def _blob(self, rng: random.Random, size: int) -> bytes:
        return rng.getrandbits(8 * size).to_bytes(size, "big") if size else b""

    def versions(self) -> Iterator[Dict[str, bytes]]:
        spec = self.spec
        rng = random.Random(spec.seed)
        tree: Dict[str, bytes] = {}
        next_file = 0
        for _ in range(spec.files):
            size = rng.randint(spec.mean_file_size // 2, spec.mean_file_size * 3 // 2)
            tree[f"file-{next_file:04d}.bin"] = self._blob(rng, size)
            next_file += 1
        yield dict(tree)

        for _ in range(spec.versions - 1):
            for name in list(tree):
                data = tree[name]
                # Overwrite a contiguous region (an "edit").
                if data and rng.random() < 0.9:
                    edit_len = max(1, int(len(data) * spec.edit_rate))
                    start = rng.randrange(max(1, len(data) - edit_len + 1))
                    patch = self._blob(rng, edit_len)
                    tree[name] = data[:start] + patch + data[start + edit_len :]
                # Occasionally append (log-like growth).
                if rng.random() < spec.append_rate:
                    tree[name] = tree[name] + self._blob(
                        rng, rng.randint(1 * KiB, 8 * KiB)
                    )
            # File churn: a removal and/or an addition.
            if tree and rng.random() < spec.churn_rate:
                del tree[rng.choice(sorted(tree))]
            if rng.random() < spec.churn_rate:
                size = rng.randint(spec.mean_file_size // 2, spec.mean_file_size * 3 // 2)
                tree[f"file-{next_file:04d}.bin"] = self._blob(rng, size)
                next_file += 1
            yield dict(tree)

    # ------------------------------------------------------------------
    def version_blobs(self) -> Iterator[Tuple[str, bytes]]:
        """Each version concatenated into one backup-stream blob.

        Files are concatenated in name order (a tar-like serialisation),
        which is how backup streams reach chunkers in real systems.
        """
        for k, tree in enumerate(self.versions(), start=1):
            blob = b"".join(tree[name] for name in sorted(tree))
            yield (f"tree-v{k}", blob)

    def write_version(self, tree: Dict[str, bytes], root: str) -> List[str]:
        """Materialise one version under ``root``; returns written paths."""
        os.makedirs(root, exist_ok=True)
        written = []
        for name in sorted(tree):
            path = os.path.join(root, name)
            with open(path, "wb") as handle:
                handle.write(tree[name])
            written.append(path)
        return written
