"""Dataset presets mirroring the paper's Table 1, scaled to laptop size.

| preset   | paper size / versions | paper dedup ratio | here (scaled)        |
|----------|-----------------------|-------------------|----------------------|
| kernel   | 64 GB / 158           | 91.53%            | 30 versions, ~32 MB  |
| gcc      | 105 GB / 175          | 78.75%            | 32 versions, ~32 MB  |
| fslhomes | 920 GB / 102          | 92.17%            | 24 versions, ~32 MB  |
| macos    | 1.2 TB / 25           | 89.56%            | 12 versions, ~40 MB  |

The churn rates are derived from each preset's *target deduplication ratio*
at its default version count (see
:func:`repro.workloads.synthetic.rates_for_target_ratio`), so Table 1's
ratios reproduce to within a few points.  macos gets a nonzero ``skip_rate``
and is the preset for which HiDeStore needs ``history_depth=2`` (§4.1,
Figure 3d); fslhomes gets periodic major upgrades (server snapshots with
occasional large changes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..errors import WorkloadError
from .synthetic import SyntheticWorkload, WorkloadSpec, rates_for_target_ratio


@dataclass(frozen=True)
class DatasetPreset:
    """Static description of one paper dataset, pre-scaling."""

    name: str
    paper_total_size: str
    paper_versions: int
    paper_dedup_ratio: float
    default_versions: int
    default_chunks: int
    skip_rate: float = 0.0
    major_every: int = 0
    major_factor: float = 3.0
    #: HiDeStore history depth this workload needs (2 for macos, §4.1).
    history_depth: int = 1
    seed: int = 0


PRESETS: Dict[str, DatasetPreset] = {
    "kernel": DatasetPreset(
        name="kernel",
        paper_total_size="64GB",
        paper_versions=158,
        paper_dedup_ratio=0.9153,
        default_versions=30,
        default_chunks=4096,
        seed=101,
    ),
    "gcc": DatasetPreset(
        name="gcc",
        paper_total_size="105GB",
        paper_versions=175,
        paper_dedup_ratio=0.7875,
        default_versions=32,
        default_chunks=4096,
        seed=202,
    ),
    "fslhomes": DatasetPreset(
        name="fslhomes",
        paper_total_size="920GB",
        paper_versions=102,
        paper_dedup_ratio=0.9217,
        default_versions=24,
        default_chunks=4096,
        major_every=8,
        major_factor=2.5,
        seed=303,
    ),
    "macos": DatasetPreset(
        name="macos",
        paper_total_size="1.2TB",
        paper_versions=25,
        paper_dedup_ratio=0.8956,
        default_versions=12,
        default_chunks=5120,
        skip_rate=0.5,
        history_depth=2,
        seed=404,
    ),
}


def load_preset(
    name: str,
    versions: Optional[int] = None,
    chunks_per_version: Optional[int] = None,
    seed: Optional[int] = None,
    tune_to_versions: bool = False,
) -> SyntheticWorkload:
    """Build the scaled synthetic workload for a paper dataset.

    The per-version churn rates are an intrinsic property of the dataset:
    they are derived from the preset's *default* version count so that the
    full-preset run reproduces Table 1's dedup ratio.  Overriding
    ``versions`` keeps the same churn (shorter runs have somewhat lower
    ratios, exactly as a shorter real history would); pass
    ``tune_to_versions=True`` to re-derive the rates for the override count
    instead.

    Args:
        name: ``kernel`` / ``gcc`` / ``fslhomes`` / ``macos``.
        versions: override the scaled version count.
        chunks_per_version: override the per-version stream length.
        seed: override the preset seed (for variance studies).
        tune_to_versions: re-tune churn so the *overridden* run hits the
            Table 1 ratio (requires enough versions for it to be reachable).
    """
    try:
        preset = PRESETS[name.lower()]
    except KeyError:
        raise WorkloadError(
            f"unknown dataset preset {name!r}; choose from {sorted(PRESETS)}"
        ) from None
    version_count = versions if versions is not None else preset.default_versions
    rate_basis = version_count if tune_to_versions else preset.default_versions
    rates = rates_for_target_ratio(preset.paper_dedup_ratio, rate_basis)
    spec = WorkloadSpec(
        name=preset.name,
        versions=version_count,
        chunks_per_version=(
            chunks_per_version if chunks_per_version is not None else preset.default_chunks
        ),
        skip_rate=preset.skip_rate,
        major_every=preset.major_every,
        major_factor=preset.major_factor,
        seed=seed if seed is not None else preset.seed,
        **rates,
    )
    return SyntheticWorkload(spec)


def preset_names() -> List[str]:
    """The paper's dataset names, in Table 1 order."""
    return ["kernel", "gcc", "fslhomes", "macos"]


def history_depth_for(name: str) -> int:
    """HiDeStore ``history_depth`` recommended for a preset (§4.1)."""
    preset = PRESETS.get(name.lower())
    if preset is None:
        raise WorkloadError(f"unknown dataset preset {name!r}")
    return preset.history_depth
