"""Chunk-trace file format (FSL-trace-style) reader and writer.

The paper's fslhomes/macos datasets are *trace* datasets: sequences of
(fingerprint, size) records per snapshot, no payloads.  This module defines
an equivalent plain-text format so workloads can be exported, shared and
replayed byte-identically:

```
# hidestore-trace v1
V <tag>
<fingerprint hex> <size>
...
V <next tag>
...
```

Any stream of metadata-only chunks round-trips through this format.
"""

from __future__ import annotations

import os
from typing import Iterable, Iterator, List, TextIO, Union

from ..chunking.stream import BackupStream, Chunk
from ..errors import WorkloadError

_HEADER = "# hidestore-trace v1"


def write_trace(path: str, streams: Iterable[BackupStream]) -> int:
    """Write backup streams to a trace file; returns versions written."""
    count = 0
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(_HEADER + "\n")
        for stream in streams:
            handle.write(f"V {stream.tag}\n")
            for chunk in stream:
                handle.write(f"{chunk.fingerprint.hex()} {chunk.size}\n")
            count += 1
    os.replace(tmp, path)
    return count


def _parse(handle: TextIO, path: str) -> Iterator[BackupStream]:
    header = handle.readline().rstrip("\n")
    if header != _HEADER:
        raise WorkloadError(f"{path}: not a hidestore trace (header {header!r})")
    tag: Union[str, None] = None
    chunks: List[Chunk] = []
    for line_no, line in enumerate(handle, start=2):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        if line.startswith("V "):
            if tag is not None:
                yield BackupStream(chunks, tag=tag)
            tag = line[2:].strip()
            chunks = []
            continue
        if tag is None:
            raise WorkloadError(f"{path}:{line_no}: chunk record before any version")
        parts = line.split()
        if len(parts) != 2:
            raise WorkloadError(f"{path}:{line_no}: expected '<fp hex> <size>'")
        try:
            fingerprint = bytes.fromhex(parts[0])
            size = int(parts[1])
        except ValueError as exc:
            raise WorkloadError(f"{path}:{line_no}: {exc}") from exc
        chunks.append(Chunk(fingerprint, size))
    if tag is not None:
        yield BackupStream(chunks, tag=tag)


def read_trace(path: str) -> List[BackupStream]:
    """Load every version stream of a trace file."""
    with open(path, "r", encoding="utf-8") as handle:
        return list(_parse(handle, path))


def iter_trace(path: str) -> Iterator[BackupStream]:
    """Stream version-by-version (whole versions are still materialised)."""
    with open(path, "r", encoding="utf-8") as handle:
        yield from _parse(handle, path)


def import_delimited(
    path: str,
    fingerprint_field: int = 0,
    size_field: int = 1,
    delimiter: Union[str, None] = None,
    version_prefix: str = "#version",
    default_size: int = 8192,
    comment: str = "#",
) -> List[BackupStream]:
    """Adapt third-party chunk dumps (e.g. FSL-trace derived) into streams.

    Many public trace archives distribute per-snapshot text dumps with one
    chunk per line (hash and size in some column order).  This importer
    handles that family:

    * a line starting with ``version_prefix`` (followed by an optional tag)
      begins a new version;
    * other non-comment lines are split on ``delimiter`` (any whitespace by
      default); ``fingerprint_field`` selects the hex-digest column and
      ``size_field`` the chunk-size column (``size_field=-1`` means the dump
      has no sizes — ``default_size`` is used, as is common for fixed-rate
      summaries).

    Fingerprints shorter than 20 bytes are zero-padded on the right; longer
    ones are truncated (index-size metrics assume SHA-1 width).
    """
    from ..units import FINGERPRINT_SIZE

    streams: List[BackupStream] = []
    chunks: List[Chunk] = []
    tag = None
    with open(path, "r", encoding="utf-8") as handle:
        for line_no, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line:
                continue
            if line.lower().startswith(version_prefix):
                if tag is not None:
                    streams.append(BackupStream(chunks, tag=tag))
                tag = line[len(version_prefix):].strip() or f"v{len(streams) + 1}"
                chunks = []
                continue
            if comment and line.startswith(comment):
                continue
            if tag is None:
                tag = "v1"
            fields = line.split(delimiter)
            try:
                digest = fields[fingerprint_field].strip().lower()
                if len(digest) % 2:
                    digest = "0" + digest
                fingerprint = bytes.fromhex(digest)
                if size_field < 0:
                    size = default_size
                else:
                    size = int(fields[size_field])
            except (IndexError, ValueError) as exc:
                raise WorkloadError(f"{path}:{line_no}: {exc}") from exc
            fingerprint = fingerprint[:FINGERPRINT_SIZE].ljust(FINGERPRINT_SIZE, b"\x00")
            chunks.append(Chunk(fingerprint, size))
    if tag is not None:
        streams.append(BackupStream(chunks, tag=tag))
    return streams
