"""Edit-script workloads: versions defined by explicit operations.

The probabilistic model in :mod:`.synthetic` is right for statistics-shaped
experiments; tests and targeted studies often need *precise* control
instead: "version 2 is version 1 with bytes 10-12 replaced and a block
inserted at 40".  This module provides that as a small operation DSL:

>>> from repro.workloads.edits import EditScriptWorkload, modify, insert, delete
>>> workload = EditScriptWorkload(initial_chunks=100)
>>> workload.add_version(modify(10, 3), insert(40, 5))
>>> workload.add_version(delete(0, 10))
>>> streams = workload.all_versions()

Each operation manipulates the *token list* of the previous version;
fresh tokens are allocated for modified/inserted chunks, so the §3
no-reappearance property holds by construction (use :func:`revive` to
deliberately break it, e.g. for macos-style reappearance tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence

from ..chunking.stream import BackupStream, Chunk, synthetic_fingerprint
from ..errors import WorkloadError
from ..units import KiB
from .synthetic import token_size

#: An operation maps (tokens, allocator) -> new token list.
EditOp = Callable[[List[int], Callable[[], int]], List[int]]


def modify(position: int, count: int = 1) -> EditOp:
    """Replace ``count`` chunks starting at ``position`` with fresh content."""

    def apply(tokens: List[int], fresh: Callable[[], int]) -> List[int]:
        if position < 0 or position + count > len(tokens):
            raise WorkloadError(
                f"modify({position}, {count}) out of range for {len(tokens)} chunks"
            )
        return tokens[:position] + [fresh() for _ in range(count)] + tokens[position + count :]

    return apply


def insert(position: int, count: int = 1) -> EditOp:
    """Insert ``count`` fresh chunks before ``position``."""

    def apply(tokens: List[int], fresh: Callable[[], int]) -> List[int]:
        if position < 0 or position > len(tokens):
            raise WorkloadError(
                f"insert({position}) out of range for {len(tokens)} chunks"
            )
        return tokens[:position] + [fresh() for _ in range(count)] + tokens[position:]

    return apply


def delete(position: int, count: int = 1) -> EditOp:
    """Remove ``count`` chunks starting at ``position``."""

    def apply(tokens: List[int], fresh: Callable[[], int]) -> List[int]:
        if position < 0 or position + count > len(tokens):
            raise WorkloadError(
                f"delete({position}, {count}) out of range for {len(tokens)} chunks"
            )
        return tokens[:position] + tokens[position + count :]

    return apply


def move(src: int, count: int, dst: int) -> EditOp:
    """Move a block of chunks (reordering without new content)."""

    def apply(tokens: List[int], fresh: Callable[[], int]) -> List[int]:
        if src < 0 or src + count > len(tokens):
            raise WorkloadError(f"move source out of range")
        block = tokens[src : src + count]
        rest = tokens[:src] + tokens[src + count :]
        if dst < 0 or dst > len(rest):
            raise WorkloadError(f"move destination out of range")
        return rest[:dst] + block + rest[dst:]

    return apply


def revive(token: int, position: int = 0) -> EditOp:
    """Re-insert a chunk that disappeared in an earlier version.

    Deliberately violates the §3 observation (the macos pattern); useful
    for testing ``history_depth`` behaviour with surgical precision.
    """

    def apply(tokens: List[int], fresh: Callable[[], int]) -> List[int]:
        if position < 0 or position > len(tokens):
            raise WorkloadError(f"revive position out of range")
        return tokens[:position] + [token] + tokens[position:]

    return apply


@dataclass(frozen=True)
class _VersionScript:
    ops: Sequence[EditOp]
    tag: str


class EditScriptWorkload:
    """A versioned workload built from explicit edit scripts.

    Args:
        initial_chunks: chunk count of version 1 (tokens ``0..n-1``).
        mean_chunk_size: chunk size model (deterministic per token).
    """

    def __init__(self, initial_chunks: int, mean_chunk_size: int = 8 * KiB) -> None:
        if initial_chunks < 1:
            raise WorkloadError("initial_chunks must be >= 1")
        self.initial_chunks = initial_chunks
        self.mean_chunk_size = mean_chunk_size
        self._scripts: List[_VersionScript] = []

    def add_version(self, *ops: EditOp, tag: str = "") -> "EditScriptWorkload":
        """Append a version derived from the previous one by ``ops`` (in order)."""
        self._scripts.append(_VersionScript(ops, tag))
        return self

    # ------------------------------------------------------------------
    @property
    def versions_count(self) -> int:
        return 1 + len(self._scripts)

    def token_versions(self) -> List[List[int]]:
        """The raw token lists, version by version."""
        next_token = self.initial_chunks

        def fresh() -> int:
            nonlocal next_token
            token = next_token
            next_token += 1
            return token

        current = list(range(self.initial_chunks))
        out = [list(current)]
        for script in self._scripts:
            for op in script.ops:
                current = op(current, fresh)
            if not current:
                raise WorkloadError("an edit script emptied the version")
            out.append(list(current))
        return out

    def versions(self):
        """Yield the version streams (same interface as SyntheticWorkload)."""
        token_lists = self.token_versions()
        for index, tokens in enumerate(token_lists, start=1):
            tag = ""
            if index > 1:
                tag = self._scripts[index - 2].tag
            yield BackupStream(
                [
                    Chunk(synthetic_fingerprint(t), token_size(t, self.mean_chunk_size))
                    for t in tokens
                ],
                tag=tag or f"edit-v{index}",
            )

    def all_versions(self) -> List[BackupStream]:
        return list(self.versions())

    def version(self, index: int) -> BackupStream:
        streams = self.all_versions()
        if index < 1 or index > len(streams):
            raise WorkloadError(f"version index {index} out of range")
        return streams[index - 1]
