"""The cluster map: a versioned node list plus ring parameters.

One small JSON document describes the whole cluster::

    {
      "epoch": 3,
      "replicas": 2,
      "vnodes": 64,
      "nodes": [
        {"name": "n1", "address": "127.0.0.1:7101", "root": "/srv/n1"},
        {"name": "n2", "address": "127.0.0.1:7102", "root": "/srv/n2"}
      ]
    }

The same document is the operator's spec file (``hidestore cluster serve
SPEC``), what every daemon serves over the ``CLUSTER_MAP`` wire frame, and
what the client router caches.  **Epoch** is the invalidation handle:
every membership change (join, leave, rebalance) ships a new map with a
higher epoch, and any cached copy with a lower epoch is stale — the router
adopts the highest epoch it sees and never downgrades.  Placement itself
needs no epoch: it is a pure function of (node names, vnodes, replicas),
which is why failover never waits on a metadata service (the
disaster-recovery metadata argument of arXiv:2602.22237 — keep placement
state small enough that recovery never bottlenecks on re-hashing).

``root`` is optional and only meaningful to the supervisor spawning local
daemons; routing uses only ``name`` and ``address``.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from ..errors import ClusterError
from .ring import DEFAULT_VNODES, HashRing

#: Default copies per tenant (primary + 1 replica).
DEFAULT_REPLICAS = 2


@dataclass(frozen=True)
class NodeSpec:
    """One daemon in the cluster."""

    name: str
    address: str
    root: str = ""

    def as_doc(self) -> Dict[str, str]:
        doc = {"name": self.name, "address": self.address}
        if self.root:
            doc["root"] = self.root
        return doc


class ClusterMap:
    """Versioned membership + placement parameters for one cluster."""

    def __init__(
        self,
        nodes: Iterable[NodeSpec],
        epoch: int = 1,
        replicas: int = DEFAULT_REPLICAS,
        vnodes: int = DEFAULT_VNODES,
    ) -> None:
        self.nodes: List[NodeSpec] = list(nodes)
        if not self.nodes:
            raise ClusterError("a cluster map needs at least one node")
        names = [node.name for node in self.nodes]
        if len(set(names)) != len(names):
            raise ClusterError(f"duplicate node names in cluster map: {sorted(names)}")
        # ":0" addresses are placeholders awaiting port materialisation
        # (supervisor.assign_ports), so only real addresses must be unique.
        addresses = [n.address for n in self.nodes if not n.address.endswith(":0")]
        if len(set(addresses)) != len(addresses):
            raise ClusterError("duplicate node addresses in cluster map")
        if epoch < 1:
            raise ClusterError(f"cluster map epoch must be >= 1, got {epoch}")
        if replicas < 1:
            raise ClusterError(f"replicas must be >= 1, got {replicas}")
        self.epoch = int(epoch)
        self.replicas = int(replicas)
        self.vnodes = int(vnodes)
        self._ring = HashRing(names, vnodes=self.vnodes)
        self._by_name = {node.name: node for node in self.nodes}

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    @property
    def ring(self) -> HashRing:
        return self._ring

    def node(self, name: str) -> NodeSpec:
        try:
            return self._by_name[name]
        except KeyError:
            raise ClusterError(f"no node {name!r} in cluster map epoch {self.epoch}") from None

    def has_node(self, name: str) -> bool:
        return name in self._by_name

    def placement(self, tenant: str) -> List[NodeSpec]:
        """The tenant's copy holders: primary first, then ring successors."""
        return [self._by_name[n] for n in self._ring.preference(tenant, self.replicas)]

    def primary(self, tenant: str) -> NodeSpec:
        return self.placement(tenant)[0]

    def successors(self, tenant: str) -> List[NodeSpec]:
        """The replica holders (placement minus the primary)."""
        return self.placement(tenant)[1:]

    def is_primary(self, node_name: str, tenant: str) -> bool:
        return self.primary(tenant).name == node_name

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def as_doc(self) -> Dict:
        return {
            "epoch": self.epoch,
            "replicas": self.replicas,
            "vnodes": self.vnodes,
            "nodes": [node.as_doc() for node in self.nodes],
        }

    @classmethod
    def from_doc(cls, doc: object) -> "ClusterMap":
        if not isinstance(doc, dict):
            raise ClusterError(f"cluster map must be a JSON object, got {type(doc).__name__}")
        raw_nodes = doc.get("nodes")
        if not isinstance(raw_nodes, list) or not raw_nodes:
            raise ClusterError("cluster map needs a non-empty 'nodes' list")
        nodes = []
        for entry in raw_nodes:
            if not isinstance(entry, dict) or not entry.get("name") or not entry.get("address"):
                raise ClusterError(f"malformed cluster node entry: {entry!r}")
            nodes.append(
                NodeSpec(
                    name=str(entry["name"]),
                    address=str(entry["address"]),
                    root=str(entry.get("root", "") or ""),
                )
            )
        return cls(
            nodes,
            epoch=int(doc.get("epoch", 1)),
            replicas=int(doc.get("replicas", DEFAULT_REPLICAS)),
            vnodes=int(doc.get("vnodes", DEFAULT_VNODES)),
        )

    @classmethod
    def load(cls, path: str) -> "ClusterMap":
        try:
            with open(path, encoding="utf-8") as handle:
                doc = json.load(handle)
        except FileNotFoundError:
            raise ClusterError(f"no cluster spec at {path!r}") from None
        except ValueError as exc:
            raise ClusterError(f"cluster spec {path!r} is not valid JSON: {exc}") from exc
        return cls.from_doc(doc)

    def save(self, path: str) -> None:
        """Write the map atomically (``*.tmp`` + rename)."""
        os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(self.as_doc(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, path)

    # ------------------------------------------------------------------
    def with_nodes(self, nodes: Iterable[NodeSpec]) -> "ClusterMap":
        """A successor map (epoch + 1) with a changed node list."""
        return ClusterMap(
            nodes, epoch=self.epoch + 1, replicas=self.replicas, vnodes=self.vnodes
        )

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return (
            f"ClusterMap(epoch={self.epoch}, nodes={[n.name for n in self.nodes]}, "
            f"replicas={self.replicas})"
        )


def newer_map(current: Optional[ClusterMap], candidate: Optional[ClusterMap]) -> Optional[ClusterMap]:
    """Epoch-based invalidation: keep whichever map is newer (never downgrade)."""
    if candidate is None:
        return current
    if current is None or candidate.epoch > current.epoch:
        return candidate
    return current
