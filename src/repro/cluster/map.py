"""The cluster map: a versioned node list plus ring parameters.

One small JSON document describes the whole cluster::

    {
      "epoch": 3,
      "replicas": 2,
      "vnodes": 64,
      "nodes": [
        {"name": "n1", "address": "127.0.0.1:7101", "root": "/srv/n1"},
        {"name": "n2", "address": "127.0.0.1:7102", "root": "/srv/n2"}
      ]
    }

The same document is the operator's spec file (``hidestore cluster serve
SPEC``), what every daemon serves over the ``CLUSTER_MAP`` wire frame, and
what the client router caches.  **Epoch** is the invalidation handle:
every membership change (join, leave, rebalance) ships a new map with a
higher epoch, and any cached copy with a lower epoch is stale — the router
adopts the highest epoch it sees and never downgrades.  Placement itself
needs no epoch: it is a pure function of (node names, vnodes, replicas),
which is why failover never waits on a metadata service (the
disaster-recovery metadata argument of arXiv:2602.22237 — keep placement
state small enough that recovery never bottlenecks on re-hashing).

``root`` is optional and only meaningful to the supervisor spawning local
daemons; routing uses only ``name`` and ``address``.

Failover extends the document without changing its shape: a node entry may
carry ``"down": true`` (it stays in the map but placement demotes it to
the back of every preference list), and the map may carry a bounded
``promotions`` history recording which epoch marked which node down and
which successor minted it.  Both round-trip through :meth:`as_doc` /
:meth:`from_doc`; old documents (and old readers, which ignore unknown
keys) remain valid.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from ..errors import ClusterError
from .ring import DEFAULT_VNODES, HashRing, node_order

#: Default copies per tenant (primary + 1 replica).
DEFAULT_REPLICAS = 2

#: Promotion-record history kept in the map document (observability only;
#: placement depends solely on the node list and down markers).
_MAX_PROMOTIONS = 16


@dataclass(frozen=True)
class NodeSpec:
    """One daemon in the cluster.

    ``down`` is the failover marker: a down node stays *in* the map (so a
    rejoining daemon still finds itself, adopts the newer epoch and
    demotes itself) but is moved to the back of every tenant's placement
    list — its first live ring successor becomes the acting primary.
    """

    name: str
    address: str
    root: str = ""
    down: bool = False

    def as_doc(self) -> Dict[str, str]:
        doc = {"name": self.name, "address": self.address}
        if self.root:
            doc["root"] = self.root
        if self.down:
            doc["down"] = True
        return doc


class ClusterMap:
    """Versioned membership + placement parameters for one cluster."""

    def __init__(
        self,
        nodes: Iterable[NodeSpec],
        epoch: int = 1,
        replicas: int = DEFAULT_REPLICAS,
        vnodes: int = DEFAULT_VNODES,
        promotions: Optional[List[Dict]] = None,
    ) -> None:
        self.nodes: List[NodeSpec] = list(nodes)
        if not self.nodes:
            raise ClusterError("a cluster map needs at least one node")
        names = [node.name for node in self.nodes]
        if len(set(names)) != len(names):
            raise ClusterError(f"duplicate node names in cluster map: {sorted(names)}")
        # ":0" addresses are placeholders awaiting port materialisation
        # (supervisor.assign_ports), so only real addresses must be unique.
        addresses = [n.address for n in self.nodes if not n.address.endswith(":0")]
        if len(set(addresses)) != len(addresses):
            raise ClusterError("duplicate node addresses in cluster map")
        if epoch < 1:
            raise ClusterError(f"cluster map epoch must be >= 1, got {epoch}")
        if replicas < 1:
            raise ClusterError(f"replicas must be >= 1, got {replicas}")
        self.epoch = int(epoch)
        self.replicas = int(replicas)
        self.vnodes = int(vnodes)
        self.promotions: List[Dict] = list(promotions or [])[-_MAX_PROMOTIONS:]
        self._ring = HashRing(names, vnodes=self.vnodes)
        self._by_name = {node.name: node for node in self.nodes}

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    @property
    def ring(self) -> HashRing:
        return self._ring

    def node(self, name: str) -> NodeSpec:
        try:
            return self._by_name[name]
        except KeyError:
            raise ClusterError(f"no node {name!r} in cluster map epoch {self.epoch}") from None

    def has_node(self, name: str) -> bool:
        return name in self._by_name

    def placement(self, tenant: str) -> List[NodeSpec]:
        """The tenant's copy holders: primary first, then ring successors.

        Nodes marked ``down`` are pushed behind every live node, so when a
        primary is declared dead its first live ring successor *becomes*
        the primary — the promotion the failover machinery relies on.
        With no down markers this is exactly the plain ring preference.
        """
        order = self._ring.preference(tenant, len(self.nodes))
        live = [n for n in order if not self._by_name[n].down]
        dead = [n for n in order if self._by_name[n].down]
        return [self._by_name[n] for n in (live + dead)[: min(self.replicas, len(order))]]

    def primary(self, tenant: str) -> NodeSpec:
        return self.placement(tenant)[0]

    def natural_primary(self, tenant: str) -> NodeSpec:
        """The ring owner ignoring down markers — who would be primary if
        every node were live.  A daemon that is acting primary while the
        natural primary is down acquired the role via promotion and must
        verify its replica before serving writes."""
        return self._by_name[self._ring.primary(tenant)]

    def successors(self, tenant: str) -> List[NodeSpec]:
        """The replica holders (placement minus the primary)."""
        return self.placement(tenant)[1:]

    def is_primary(self, node_name: str, tenant: str) -> bool:
        return self.primary(tenant).name == node_name

    # ------------------------------------------------------------------
    # Failover markers
    # ------------------------------------------------------------------
    def is_down(self, name: str) -> bool:
        return self.node(name).down

    def down_names(self) -> List[str]:
        return [n.name for n in self.nodes if n.down]

    def live_nodes(self) -> List[NodeSpec]:
        return [n for n in self.nodes if not n.down]

    def probe_target(self, node_name: str) -> Optional[NodeSpec]:
        """The node ``node_name`` should health-probe: its nearest live
        predecessor in ring-walk order.

        Walking counter-clockwise and skipping down-marked nodes makes the
        prober of any node exactly the node that would inherit its probe
        duty (and, for its tenants, typically its primaries) — one live
        successor per dead node, so promotion minting has a single owner.
        Returns ``None`` for a single-node cluster or an unknown name.
        """
        order = node_order(n.name for n in self.nodes)
        if node_name not in order or len(order) < 2:
            return None
        at = order.index(node_name)
        for step in range(1, len(order)):
            candidate = order[(at - step) % len(order)]
            if candidate == node_name:
                return None
            if not self._by_name[candidate].down:
                return self._by_name[candidate]
        return None

    def promote(self, dead: str, by: str) -> "ClusterMap":
        """Mint the failover map: epoch + 1 with ``dead`` marked down.

        Placement reorders itself (down nodes go last), so every tenant
        whose primary was ``dead`` gets its first live ring successor as
        the new primary — no per-tenant records needed.  A promotion
        record (epoch, who died, who minted) is appended for operators;
        it does not influence placement.
        """
        target = self.node(dead)
        if target.down:
            raise ClusterError(
                f"node {dead!r} is already marked down in epoch {self.epoch}"
            )
        nodes = [
            NodeSpec(n.name, n.address, n.root, down=True) if n.name == dead else n
            for n in self.nodes
        ]
        record = {"epoch": self.epoch + 1, "down": dead, "by": by}
        return ClusterMap(
            nodes,
            epoch=self.epoch + 1,
            replicas=self.replicas,
            vnodes=self.vnodes,
            promotions=self.promotions + [record],
        )

    def revive(self, name: str, by: str) -> "ClusterMap":
        """Mint the rejoin map: epoch + 1 with ``name``'s down marker cleared.

        The inverse of :meth:`promote`, minted once a demoted daemon has
        pulled itself back in sync and deep-verified every hosted tenant:
        clearing the marker returns the node to the front of its tenants'
        preference lists, so its *natural* primaryship resumes without an
        operator rebalance.  A revival record is appended alongside the
        promotion history for observability.
        """
        target = self.node(name)
        if not target.down:
            raise ClusterError(
                f"node {name!r} is not marked down in epoch {self.epoch}"
            )
        nodes = [
            NodeSpec(n.name, n.address, n.root, down=False) if n.name == name else n
            for n in self.nodes
        ]
        record = {"epoch": self.epoch + 1, "revived": name, "by": by}
        return ClusterMap(
            nodes,
            epoch=self.epoch + 1,
            replicas=self.replicas,
            vnodes=self.vnodes,
            promotions=self.promotions + [record],
        )

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def as_doc(self) -> Dict:
        doc = {
            "epoch": self.epoch,
            "replicas": self.replicas,
            "vnodes": self.vnodes,
            "nodes": [node.as_doc() for node in self.nodes],
        }
        if self.promotions:
            doc["promotions"] = [dict(record) for record in self.promotions]
        return doc

    @classmethod
    def from_doc(cls, doc: object) -> "ClusterMap":
        if not isinstance(doc, dict):
            raise ClusterError(f"cluster map must be a JSON object, got {type(doc).__name__}")
        raw_nodes = doc.get("nodes")
        if not isinstance(raw_nodes, list) or not raw_nodes:
            raise ClusterError("cluster map needs a non-empty 'nodes' list")
        nodes = []
        for entry in raw_nodes:
            if not isinstance(entry, dict) or not entry.get("name") or not entry.get("address"):
                raise ClusterError(f"malformed cluster node entry: {entry!r}")
            nodes.append(
                NodeSpec(
                    name=str(entry["name"]),
                    address=str(entry["address"]),
                    root=str(entry.get("root", "") or ""),
                    down=bool(entry.get("down", False)),
                )
            )
        promotions = doc.get("promotions")
        return cls(
            nodes,
            epoch=int(doc.get("epoch", 1)),
            replicas=int(doc.get("replicas", DEFAULT_REPLICAS)),
            vnodes=int(doc.get("vnodes", DEFAULT_VNODES)),
            promotions=list(promotions) if isinstance(promotions, list) else None,
        )

    @classmethod
    def load(cls, path: str) -> "ClusterMap":
        try:
            with open(path, encoding="utf-8") as handle:
                doc = json.load(handle)
        except FileNotFoundError:
            raise ClusterError(f"no cluster spec at {path!r}") from None
        except ValueError as exc:
            raise ClusterError(f"cluster spec {path!r} is not valid JSON: {exc}") from exc
        return cls.from_doc(doc)

    def save(self, path: str) -> None:
        """Write the map atomically (``*.tmp`` + rename)."""
        os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(self.as_doc(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, path)

    # ------------------------------------------------------------------
    def with_nodes(self, nodes: Iterable[NodeSpec]) -> "ClusterMap":
        """A successor map (epoch + 1) with a changed node list."""
        return ClusterMap(
            nodes, epoch=self.epoch + 1, replicas=self.replicas,
            vnodes=self.vnodes, promotions=self.promotions,
        )

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return (
            f"ClusterMap(epoch={self.epoch}, nodes={[n.name for n in self.nodes]}, "
            f"replicas={self.replicas})"
        )


def newer_map(current: Optional[ClusterMap], candidate: Optional[ClusterMap]) -> Optional[ClusterMap]:
    """Epoch-based invalidation: keep whichever map is newer (never downgrade)."""
    if candidate is None:
        return current
    if current is None or candidate.epoch > current.epoch:
        return candidate
    return current
