"""The client-side cluster router: tenant → daemon, with replica failover.

:class:`ClusterClient` is what ``--cluster HOST:PORT,...`` turns the CLI
into.  It bootstraps a :class:`~repro.cluster.map.ClusterMap` from any
reachable seed daemon (adopting the highest epoch it sees — epoch-based
invalidation, never a downgrade), keeps **one shared connection pool per
daemon address** regardless of how many tenants route there, and hands out
:class:`RoutedRepository` objects that look exactly like a
:class:`~repro.client.remote.RemoteRepository` but resolve their daemon
through the ring:

* **mutating operations** (``backup_*``, ``delete_oldest``) go to the
  tenant's ring *primary* and never blindly fail over — a write landing
  on a replica would fork the tenant's history.  When the primary is
  *dead* (transport failure) or answers :class:`~repro.errors.NotPrimaryError`,
  the router enters a bounded retry loop: re-``refresh()`` the map until
  a **newer epoch names a different primary** (the health-probe promotion
  made by the dead node's ring successor), then retry exactly once on
  that new primary — never on the node that failed, never on a replica;
* **idempotent reads** (``versions``, ``stats``, ``verify``, opening a
  restore) walk the tenant's placement list — primary first, then ring
  successors — on *transport* failure only.  A typed domain error from a
  live daemon (say :class:`~repro.errors.VersionNotFoundError`) is an
  authoritative answer, not a reason to ask a replica;
* a **restore that dies mid-stream** is resumed on the next placement
  node: the router counts the bytes it already yielded, reopens the same
  version on the replica (replicas are byte-level mirrors, so the stream
  is identical), discards exactly that many bytes, and continues — the
  caller sees one uninterrupted, byte-identical stream.  This is the
  client half of the paper's restore-path argument: replica containers
  preserve the same physical locality, so a failover restore costs one
  reopen, not a re-chunk.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from ..client.remote import ConnectionPool, RemoteRepository, parse_address
from ..errors import (
    ClusterError,
    NotPrimaryError,
    RemoteError,
    ReproError,
    RetryBudgetExceededError,
    ServerDrainingError,
    TimeoutExceededError,
)
from ..observability import EventLogger, MetricsRegistry, get_registry
from ..repository import FilePlan
from .map import ClusterMap, NodeSpec, newer_map


def failover_worthy(exc: BaseException) -> bool:
    """Should this failure move the request to the next placement node?

    Only *transport* trouble qualifies: the socket died, timed out, the
    daemon is draining, or the per-node retry budget was exhausted
    (either the attempts cap wrapped in a bare :class:`RemoteError` or
    the wall-clock cap's typed
    :class:`~repro.errors.RetryBudgetExceededError`).  Other typed
    subclasses — protocol violations and the whole domain-error taxonomy —
    are answers from a live server; asking a replica cannot change them.
    """
    if isinstance(
        exc,
        (TimeoutExceededError, ServerDrainingError, RetryBudgetExceededError, OSError),
    ):
        return True
    return type(exc) is RemoteError


class ClusterClient:
    """Router + map cache over one sharded cluster.

    Args:
        seeds: daemon addresses (``"host:port"``) to bootstrap the map
            from; any one reachable seed is enough.
        cluster_map: optionally start from a known map (e.g. the spec
            file) instead of — not in place of — seed discovery; the
            freshest epoch still wins.
        timeout / retries / backoff / pool_size / retry_budget_seconds:
            forwarded to every underlying :class:`RemoteRepository`
            (``retry_budget_seconds`` bounds one operation's total retry
            wall-clock *per node*; exhaustion is failover-worthy, so the
            router moves on instead of waiting out a flapping daemon).
        write_retry_timeout: how long (seconds) a failed *write* may wait
            for a failover promotion to surface a new primary before
            giving up (0 disables write retries entirely — the original
            failure propagates).
        write_retry_interval: map re-poll cadence inside that window.
    """

    def __init__(
        self,
        seeds: Iterable[str],
        cluster_map: Optional[ClusterMap] = None,
        timeout: float = 30.0,
        retries: int = 3,
        backoff: float = 0.1,
        pool_size: int = 2,
        event_log: Optional[EventLogger] = None,
        metrics: Optional[MetricsRegistry] = None,
        write_retry_timeout: float = 15.0,
        write_retry_interval: float = 0.25,
        retry_budget_seconds: float = 0.0,
    ) -> None:
        self.seeds = [s.strip() for s in seeds if s and s.strip()]
        if not self.seeds and cluster_map is None:
            raise ClusterError("a cluster client needs seed addresses or a map")
        self.map = cluster_map
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.retry_budget_seconds = retry_budget_seconds
        self.pool_size = pool_size
        self.events = event_log if event_log is not None else EventLogger()
        self.metrics = metrics if metrics is not None else get_registry()
        self.write_retry_timeout = write_retry_timeout
        self.write_retry_interval = write_retry_interval
        #: True when the last :meth:`refresh` could not reach ANY node and
        #: is serving a possibly stale cached map (``cluster status`` shows
        #: this so an operator knows the routing picture may be old).
        self.map_stale = False
        self._pools: Dict[str, ConnectionPool] = {}

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def pool_for(self, address: str) -> ConnectionPool:
        """The shared per-address pool (created on first use)."""
        pool = self._pools.get(address)
        if pool is None:
            pool = ConnectionPool(
                parse_address(address), self.timeout, self.pool_size,
                metrics=self.metrics, events=self.events,
            )
            self._pools[address] = pool
        return pool

    def remote(self, address: str, tenant: str) -> RemoteRepository:
        """A :class:`RemoteRepository` for ``tenant`` on one daemon,
        borrowing the shared pool for that address."""
        return RemoteRepository(
            address, tenant, timeout=self.timeout, retries=self.retries,
            backoff=self.backoff, event_log=self.events, metrics=self.metrics,
            pool=self.pool_for(address),
            retry_budget_seconds=self.retry_budget_seconds,
        )

    def close(self) -> None:
        pools, self._pools = list(self._pools.values()), {}
        for pool in pools:
            pool.close()

    def __enter__(self) -> "ClusterClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Map discovery
    # ------------------------------------------------------------------
    def refresh(self) -> ClusterMap:
        """Adopt the freshest cluster map any seed or known node serves.

        Every address is asked; the highest epoch wins (a router must
        never *downgrade* — a stale daemon rejoining after a rebalance
        still serves the old epoch).  Raises :class:`ClusterError` only
        when no address yields a map at all.
        """
        addresses = list(dict.fromkeys(
            self.seeds + ([n.address for n in self.map.nodes] if self.map else [])
        ))
        freshest = self.map
        errors: List[str] = []
        served = 0
        for address in addresses:
            try:
                reply = self.remote(address, "-").cluster_map()
            except (ReproError, OSError) as exc:
                errors.append(f"{address}: {type(exc).__name__}: {exc}")
                continue
            doc = reply.get("map")
            if doc is None:
                errors.append(f"{address}: daemon is not part of a cluster")
                continue
            served += 1
            freshest = newer_map(freshest, ClusterMap.from_doc(doc))
        self.map_stale = served == 0
        if self.map_stale:
            # Whatever we return below is at best the cached picture; say
            # so loudly rather than silently routing on old placement.
            self.metrics.inc("cluster.map_refresh_errors")
            self.events.log(
                "cluster_map_refresh_failed",
                epoch=freshest.epoch if freshest is not None else None,
                errors=errors[:8],
            )
        if freshest is None:
            raise ClusterError(
                "no seed served a cluster map: " + "; ".join(errors)
            )
        if self.map is None or freshest.epoch != self.map.epoch:
            self.events.log(
                "cluster_map_adopted",
                epoch=freshest.epoch,
                nodes=[n.name for n in freshest.nodes],
                down=freshest.down_names(),
            )
        self.map = freshest
        self._prune_pools(freshest)
        return freshest

    def _prune_pools(self, cmap: ClusterMap) -> None:
        """Close pools for addresses the adopted map no longer lists.

        Membership changes (and failover address swaps) would otherwise
        leak one pool — a few idle sockets plus their buffers — per
        departed daemon for the life of the router.
        """
        keep = {node.address for node in cmap.nodes}
        stale = [address for address in self._pools if address not in keep]
        for address in stale:
            self._pools.pop(address).close()
        if stale:
            self.metrics.inc("cluster.pools_pruned", len(stale))
            self.events.log("cluster_pools_pruned", addresses=sorted(stale))

    def require_map(self) -> ClusterMap:
        if self.map is None:
            self.refresh()
        assert self.map is not None
        return self.map

    def placement(self, tenant: str) -> List[NodeSpec]:
        """The tenant's copy holders under the current map, primary first."""
        return self.require_map().placement(tenant)

    def repo(self, tenant: str) -> "RoutedRepository":
        """The routed façade for one tenant."""
        return RoutedRepository(self, tenant)

    # ------------------------------------------------------------------
    # Operator views
    # ------------------------------------------------------------------
    def status(self, with_metrics: bool = False) -> Dict:
        """Per-node liveness + stats for ``hidestore cluster status``.

        One remote (one shared-pool borrow) per node serves both probes.
        A node that answers ``CLUSTER_MAP`` but fails ``STATS`` is
        reported alive with a ``stats_error`` — reachable-but-degraded is
        operationally very different from dead.
        """
        try:
            # Operators read status after incidents: show the freshest
            # epoch (promotions, down markers), not the spec-file view.
            self.refresh()
        except ClusterError:
            pass  # no map from anywhere; require_map raises if none cached
        cmap = self.require_map()
        nodes = []
        for node in cmap.nodes:
            row: Dict = {"name": node.name, "address": node.address}
            if node.down:
                row["marked_down"] = True
            remote = self.remote(node.address, "-")
            try:
                view = remote.cluster_map()
            except (ReproError, OSError) as exc:
                row.update(alive=False, error=f"{type(exc).__name__}: {exc}")
                nodes.append(row)
                continue
            doc = view.get("map") or {}
            row.update(
                alive=True,
                draining=bool(view.get("draining")),
                epoch=doc.get("epoch"),
                node=view.get("node"),
            )
            try:
                stats = remote.server_stats()
            except (ReproError, OSError) as exc:
                row["stats_error"] = f"{type(exc).__name__}: {exc}"
                nodes.append(row)
                continue
            server = stats.get("server", {})
            row.update(
                tenants=sorted(stats.get("repos", {})),
                uptime_seconds=round(float(server.get("uptime_seconds", 0.0)), 1),
                active_connections=server.get("active_connections"),
            )
            if with_metrics:
                snapshot = stats.get("metrics", {})
                counters = snapshot.get("counters", snapshot) or {}
                row["cluster_metrics"] = {
                    key: value for key, value in sorted(counters.items())
                    if key.startswith("cluster.")
                }
            nodes.append(row)
        return {
            "epoch": cmap.epoch,
            "replicas": cmap.replicas,
            "stale": self.map_stale,
            "down": cmap.down_names(),
            "nodes": nodes,
        }

    def sync_all(self) -> List[Dict]:
        """Ask every live node to replicate its owned tenants (``cluster sync``)."""
        reports = []
        for node in self.require_map().nodes:
            try:
                reports.append(self.remote(node.address, "-").cluster_sync())
            except (ReproError, OSError) as exc:
                reports.append({
                    "node": node.name,
                    "error": f"{type(exc).__name__}: {exc}",
                })
        return reports


class RoutedRepository:
    """One tenant, addressed by placement instead of by daemon.

    Mirrors the :class:`RemoteRepository` surface the CLI drives, so
    ``--cluster`` slots in wherever ``--remote`` did.
    """

    def __init__(self, client: ClusterClient, tenant: str) -> None:
        self.client = client
        self.repo = tenant

    # ------------------------------------------------------------------
    def _primary_remote(self) -> RemoteRepository:
        primary = self.client.placement(self.repo)[0]
        self.client.metrics.inc("cluster.client_requests_routed")
        return self.client.remote(primary.address, self.repo)

    def _over_placement(self, op_name: str, operation):
        """Run an idempotent operation against the placement list.

        ``operation`` receives a :class:`RemoteRepository`; transport
        failures walk to the next copy holder, anything typed propagates.
        """
        nodes = self.client.placement(self.repo)
        self.client.metrics.inc("cluster.client_requests_routed")
        errors: List[str] = []
        for index, node in enumerate(nodes):
            try:
                return operation(self.client.remote(node.address, self.repo))
            except BaseException as exc:
                if not failover_worthy(exc):
                    raise
                errors.append(f"{node.name} ({node.address}): {type(exc).__name__}: {exc}")
                if index + 1 < len(nodes):
                    self.client.metrics.inc("cluster.client_failovers")
                    self.client.events.log(
                        "cluster_failover",
                        repo=self.repo,
                        op=op_name,
                        failed_node=node.name,
                        next_node=nodes[index + 1].name,
                        error=type(exc).__name__,
                    )
        raise ClusterError(
            f"all {len(nodes)} copy holders of {self.repo!r} failed for "
            f"{op_name}: " + "; ".join(errors)
        )

    # ------------------------------------------------------------------
    # Mutating operations: current primary only, retried ONLY onto a
    # newer map's new primary (failover promotion) — never onto a replica
    # ------------------------------------------------------------------
    def _write_with_failover(self, op_name: str, attempt):
        """Run a mutating ``attempt`` with the bounded failover retry.

        ``attempt`` receives a :class:`RemoteRepository` bound to the
        tenant's current primary.  On a transport failure (dead daemon) or
        a :class:`NotPrimaryError` (the daemon's own fence says the map
        moved on), the router polls :meth:`ClusterClient.refresh` for up
        to ``write_retry_timeout`` seconds waiting for a map whose primary
        is a *different node* — the promotion minted by the dead node's
        ring successor — and retries there.  The failed node is never
        re-sent the write, and a replica is never written to directly:
        the only retry target the loop accepts is whatever a newer map
        names as primary.
        """
        client = self.client
        primary = client.placement(self.repo)[0]
        client.metrics.inc("cluster.client_requests_routed")
        try:
            return attempt(client.remote(primary.address, self.repo))
        except BaseException as exc:
            if not (failover_worthy(exc) or isinstance(exc, NotPrimaryError)):
                raise
            if client.write_retry_timeout <= 0:
                raise
            last_error = exc
        failed = primary.name
        deadline = time.monotonic() + client.write_retry_timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ClusterError(
                    f"{op_name} on {self.repo!r} failed on primary "
                    f"{failed!r} and no failover promotion surfaced a new "
                    f"primary within {client.write_retry_timeout:.1f}s: "
                    f"{type(last_error).__name__}: {last_error}"
                ) from last_error
            time.sleep(min(client.write_retry_interval, remaining))
            try:
                fresh = client.refresh()
            except ClusterError as exc:
                last_error = exc
                continue
            new_primary = fresh.placement(self.repo)[0]
            if new_primary.name == failed:
                continue
            client.metrics.inc("cluster.write_retries")
            client.events.log(
                "cluster_write_failover",
                repo=self.repo,
                op=op_name,
                failed_node=failed,
                new_node=new_primary.name,
                epoch=fresh.epoch,
                error=type(last_error).__name__,
            )
            try:
                return attempt(client.remote(new_primary.address, self.repo))
            except BaseException as exc:
                if not (failover_worthy(exc) or isinstance(exc, NotPrimaryError)):
                    raise
                # The new primary died too (or is still verify-fenced);
                # keep polling for yet another epoch until the deadline.
                last_error = exc
                failed = new_primary.name

    def backup_tree(self, entries: List[Tuple[str, str]], tag: str = "") -> Dict:
        # Entries are re-read from disk on each attempt, so the retry is
        # always safe to replay.
        return self._write_with_failover(
            "backup", lambda r: r.backup_tree(entries, tag)
        )

    def backup_blocks(self, blocks: Iterable[bytes], plan: FilePlan, tag: str = "") -> Dict:
        if isinstance(blocks, (list, tuple)):
            # Re-iterable payload: safe to replay on a promoted primary.
            return self._write_with_failover(
                "backup", lambda r: r.backup_blocks(iter(blocks), plan, tag)
            )
        # A one-shot iterator may be partially consumed by a failed
        # attempt; replaying it would upload a torn stream.  Single shot.
        return self._primary_remote().backup_blocks(blocks, plan, tag)

    def delete_oldest(self) -> Dict:
        return self._write_with_failover("delete_oldest", lambda r: r.delete_oldest())

    # ------------------------------------------------------------------
    # Idempotent operations: placement walk on transport failure
    # ------------------------------------------------------------------
    def versions(self) -> List[Dict]:
        return self._over_placement("versions", lambda r: r.versions())

    def stats(self) -> Dict:
        return self._over_placement("stats", lambda r: r.stats())

    def verify(self, deep: bool = False) -> Dict:
        return self._over_placement("verify", lambda r: r.verify(deep=deep))

    # ------------------------------------------------------------------
    # Restore: resumable replica failover
    # ------------------------------------------------------------------
    def restore(
        self,
        version_id: int,
        *,
        workers: Optional[int] = None,
        readahead: Optional[int] = None,
        verify: bool = False,
        file: Optional[str] = None,
    ) -> Tuple[FilePlan, Iterator[bytes]]:
        """Open the restore on the first live copy holder; if the stream
        dies mid-flight, resume byte-exact on the next one."""
        nodes = self.client.placement(self.repo)
        self.client.metrics.inc("cluster.client_requests_routed")
        kwargs = dict(workers=workers, readahead=readahead, verify=verify, file=file)

        def open_on(start: int, skip: int) -> Tuple[int, FilePlan, Iterator[bytes]]:
            """Open on nodes[start:], discarding ``skip`` already-yielded bytes."""
            errors: List[str] = []
            for index in range(start, len(nodes)):
                node = nodes[index]
                try:
                    plan, data = self.client.remote(node.address, self.repo).restore(
                        version_id, **kwargs
                    )
                    if skip:
                        data = _skip_bytes(data, skip)
                    return index, plan, data
                except BaseException as exc:
                    if not failover_worthy(exc):
                        raise
                    errors.append(
                        f"{node.name} ({node.address}): {type(exc).__name__}: {exc}"
                    )
                    if index + 1 < len(nodes):
                        self._note_failover("restore_open", node, nodes[index + 1], exc)
            raise ClusterError(
                f"all copy holders of {self.repo!r} failed to serve version "
                f"{version_id}: " + "; ".join(errors)
            )

        index, plan, data = open_on(0, 0)

        def stream() -> Iterator[bytes]:
            at, current = index, data
            yielded = 0
            started = time.perf_counter()
            while True:
                try:
                    for block in current:
                        yielded += len(block)
                        yield block
                    return
                except BaseException as exc:
                    if not failover_worthy(exc) or at + 1 >= len(nodes):
                        raise
                    self._note_failover(
                        "restore_stream", nodes[at], nodes[at + 1], exc, bytes_done=yielded
                    )
                    at, _plan, current = open_on(at + 1, yielded)
                    self.client.metrics.observe(
                        "cluster.failover_resume_seconds",
                        time.perf_counter() - started,
                    )

        return plan, stream()

    def _note_failover(
        self, op: str, failed: NodeSpec, next_node: NodeSpec, exc: BaseException,
        **extra,
    ) -> None:
        self.client.metrics.inc("cluster.client_failovers")
        self.client.events.log(
            "cluster_failover",
            repo=self.repo,
            op=op,
            failed_node=failed.name,
            next_node=next_node.name,
            error=type(exc).__name__,
            **extra,
        )


def _skip_bytes(blocks: Iterator[bytes], skip: int) -> Iterator[bytes]:
    """Drop exactly ``skip`` leading bytes from a block stream (resume)."""
    remaining = skip
    for block in blocks:
        if remaining >= len(block):
            remaining -= len(block)
            continue
        if remaining:
            yield block[remaining:]
            remaining = 0
        else:
            yield block
