"""Health-driven primary failover: the data-plane half.

The daemon's health prober (:meth:`~repro.server.daemon.BackupDaemon`'s
``_health_loop``) owns the control plane — probing, declaring a node
dead, minting the promotion map.  This module holds the data movement a
failover needs on the way back up:

* :func:`pull_tenant` — the demoted-node resync.  When a dead primary
  rejoins with a stale epoch it adopts the newer map, demotes itself to
  replica, and *pulls* every hosted tenant back in sync from the tenant's
  current acting primary.  The pull is the O(delta) planner diff from the
  replication subsystem run in reverse: capture both states, plan the
  ships, fetch only the missing objects, land them in visibility-safe
  order and commit.  Containers preserved byte-for-byte is what keeps the
  paper's physical-locality argument intact across a demotion — the
  resynced copy restores with the same contiguity as the copy it mirrors.

Promotion safety itself (the verify-before-serve gate) reuses the
repository's deep verify exactly as the PR 7 rebalancer does before a
``TENANT_DROP``: the promoted successor re-hashes every chunk of its
replica before the first write is accepted, so a fork of tenant history
is impossible even if the replica was torn.
"""

from __future__ import annotations

from typing import Dict

from ..client.remote import RemoteRepository
from ..errors import ReplicationError
from ..replication.planner import SyncPlanner
from ..replication.state import blob_digest, capture_state, normalize_state
from ..replication.targets import commit_objects, write_object


def pull_tenant(remote: RemoteRepository, root: str) -> Dict:
    """Pull one tenant's state from ``remote`` into the local ``root``.

    The mirror-sync diff with the arrow reversed: ``remote`` (the acting
    primary) is the source of truth, the local repository the target.
    Ships land additions invisibly (containers and manifests are
    unreferenced until a recipe names them; recipes arrive ``*.staged``),
    then one commit flips visibility and removes local objects the source
    no longer has — so a reader never observes a half-applied resync.
    Digest-carrying objects are validated in transit.

    Callers must hold the tenant's write lock and invalidate the cached
    engine afterwards; this function only moves bytes.
    """
    src_state = normalize_state(remote.replicate_state().get("state"))
    dst_state = capture_state(root)
    plan = SyncPlanner().plan(src_state, dst_state)
    pulled = pulled_bytes = 0
    for action in plan.ships:
        blob = remote.replicate_fetch(action.kind, action.name)
        if action.digest and blob_digest(blob) != action.digest:
            raise ReplicationError(
                f"pulled {action.kind} {action.name!r} failed digest "
                "validation in transit"
            )
        write_object(root, action.kind, action.name, blob, action.staged)
        pulled += 1
        pulled_bytes += len(blob)
    if plan.needs_commit:
        commit_objects(root, plan.renames, plan.deletes)
    return {
        "objects_pulled": pulled,
        "bytes_pulled": pulled_bytes,
        "containers_skipped": plan.containers_skipped,
    }
