"""Spawn and supervise the daemons a cluster spec describes.

Two harnesses, one spec format:

* :class:`ClusterSupervisor` — ``hidestore cluster serve SPEC``: one
  *daemon process per node* (``python -m repro.cli serve``), each with its
  own event loop, GIL and address.  This is the deployment shape the
  benchmarks measure — aggregate throughput only scales when the daemons
  are real processes.
* :class:`ClusterHarness` — the in-process variant for tests: N
  :class:`~repro.server.daemon.DaemonThread` instances sharing this
  interpreter.  Cheap to start, trivially killable mid-operation
  (``kill_node``), but serialised by the GIL — never benchmark with it.

Both allocate ports up front (a bound-then-released probe socket per
node), because every daemon must know the *full* address map before it
starts: placement is a pure function of the map, and the map is part of
each daemon's constructor.
"""

from __future__ import annotations

import os
import socket
import subprocess
import sys
import time
from typing import TYPE_CHECKING, Dict, List, Optional

from ..errors import ClusterError
from ..observability import MetricsRegistry
from .map import ClusterMap, NodeSpec

if TYPE_CHECKING:  # import cycle guard: server.daemon imports repro.cluster
    from ..server.daemon import DaemonThread


def free_port(host: str = "127.0.0.1") -> int:
    """A currently-free TCP port (bind-probe; small reuse race is fine
    for tests and single-operator clusters)."""
    with socket.socket() as probe:
        probe.bind((host, 0))
        return probe.getsockname()[1]


def assign_ports(cmap: ClusterMap, host: str = "127.0.0.1") -> ClusterMap:
    """Fill in concrete ports for nodes whose address ends in ``:0``.

    Keeps the epoch (this is materialisation, not a membership change).
    """
    nodes = []
    for node in cmap.nodes:
        node_host, _, port = node.address.rpartition(":")
        if port == "0":
            nodes.append(NodeSpec(node.name, f"{node_host or host}:{free_port(host)}",
                                  node.root, down=node.down))
        else:
            nodes.append(node)
    return ClusterMap(nodes, epoch=cmap.epoch, replicas=cmap.replicas,
                      vnodes=cmap.vnodes, promotions=cmap.promotions)


def wait_listening(address: str, timeout: float = 10.0) -> None:
    """Poll until a TCP connect to ``address`` succeeds."""
    host, _, port = address.rpartition(":")
    deadline = time.monotonic() + timeout
    while True:
        try:
            with socket.create_connection((host, int(port)), timeout=1.0):
                return
        except OSError:
            if time.monotonic() >= deadline:
                raise ClusterError(
                    f"daemon at {address} not accepting connections "
                    f"after {timeout:.0f}s"
                ) from None
            time.sleep(0.05)


class DaemonProcess:
    """One ``hidestore serve`` child process for one cluster node."""

    def __init__(
        self,
        node: NodeSpec,
        map_path: str,
        replicate_interval: float = 0.0,
        log_json: Optional[str] = None,
        probe_interval: float = 0.0,
        probe_failures: int = 3,
        probe_timeout: float = 2.0,
    ) -> None:
        if not node.root:
            raise ClusterError(f"node {node.name!r} has no root in the cluster spec")
        self.node = node
        argv = [
            sys.executable, "-m", "repro.cli", "serve", node.address,
            "--root", node.root,
            "--cluster-map", map_path,
            "--node", node.name,
        ]
        if replicate_interval > 0:
            argv += ["--replicate-interval", str(replicate_interval)]
        if probe_interval > 0:
            argv += [
                "--probe-interval", str(probe_interval),
                "--probe-failures", str(probe_failures),
                "--probe-timeout", str(probe_timeout),
            ]
        if log_json:
            argv += ["--log-json", log_json]
        env = dict(os.environ)
        src_root = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
        env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
        self.process = subprocess.Popen(argv, env=env)

    @property
    def alive(self) -> bool:
        return self.process.poll() is None

    def wait_ready(self, timeout: float = 15.0) -> None:
        deadline = time.monotonic() + timeout
        while True:
            if not self.alive:
                raise ClusterError(
                    f"daemon {self.node.name} exited with "
                    f"{self.process.returncode} before accepting connections"
                )
            try:
                wait_listening(self.node.address, timeout=0.5)
                return
            except ClusterError:
                if time.monotonic() >= deadline:
                    raise

    def stop(self, timeout: float = 15.0) -> int:
        """Graceful SIGTERM drain; escalates to SIGKILL on overrun."""
        if self.alive:
            self.process.terminate()
            try:
                self.process.wait(timeout=timeout)
            except subprocess.TimeoutExpired:  # pragma: no cover - drain hang
                self.process.kill()
                self.process.wait(timeout=5)
        return self.process.returncode

    def kill(self) -> None:
        """Immediate SIGKILL — the failure tests' "node dies" primitive."""
        if self.alive:
            self.process.kill()
            self.process.wait(timeout=5)


class ClusterSupervisor:
    """Spawn every node in a spec as its own daemon process."""

    def __init__(
        self,
        cmap: ClusterMap,
        map_path: str,
        replicate_interval: float = 0.0,
        log_json: Optional[str] = None,
        probe_interval: float = 0.0,
        probe_failures: int = 3,
        probe_timeout: float = 2.0,
    ) -> None:
        self.map = cmap
        self.map_path = map_path
        self.replicate_interval = replicate_interval
        self.log_json = log_json
        self.probe_interval = probe_interval
        self.probe_failures = probe_failures
        self.probe_timeout = probe_timeout
        self.daemons: Dict[str, DaemonProcess] = {}

    def start(self, timeout: float = 20.0) -> None:
        try:
            for node in self.map.nodes:
                self.daemons[node.name] = DaemonProcess(
                    node, self.map_path,
                    replicate_interval=self.replicate_interval,
                    log_json=self.log_json,
                    probe_interval=self.probe_interval,
                    probe_failures=self.probe_failures,
                    probe_timeout=self.probe_timeout,
                )
            for daemon in self.daemons.values():
                daemon.wait_ready(timeout)
        except Exception:
            # Unwind the half-started fleet on real failures, but let
            # KeyboardInterrupt/SystemExit propagate immediately — the
            # operator's Ctrl-C must not be swallowed by cleanup.
            self.stop()
            raise
        except BaseException:
            try:
                self.stop()
            except Exception:
                pass
            raise

    def stop(self) -> None:
        for daemon in self.daemons.values():
            daemon.stop()
        self.daemons.clear()

    def kill_node(self, name: str) -> None:
        try:
            self.daemons[name].kill()
        except KeyError:
            raise ClusterError(f"no running daemon named {name!r}") from None

    def alive_nodes(self) -> List[str]:
        return sorted(n for n, d in self.daemons.items() if d.alive)

    def __enter__(self) -> "ClusterSupervisor":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


class ClusterHarness:
    """In-process cluster of :class:`DaemonThread` instances (tests only).

    Builds its own map: node ``n<i>`` gets ``<root>/n<i>`` as repository
    root and a pre-probed localhost port.
    """

    def __init__(
        self,
        root: str,
        nodes: int = 3,
        replicas: int = 2,
        vnodes: int = 64,
        replicate_interval: float = 0.0,
        **daemon_kwargs,
    ) -> None:
        specs = []
        for index in range(1, nodes + 1):
            name = f"n{index}"
            specs.append(NodeSpec(
                name, f"127.0.0.1:{free_port()}", os.path.join(root, name)
            ))
        self.map = ClusterMap(specs, replicas=replicas, vnodes=vnodes)
        self.replicate_interval = replicate_interval
        self.daemon_kwargs = daemon_kwargs
        self.threads: Dict[str, "DaemonThread"] = {}

    def start(self) -> ClusterMap:
        from ..server.daemon import DaemonThread

        try:
            for node in self.map.nodes:
                host, _, port = node.address.rpartition(":")
                kwargs = dict(self.daemon_kwargs)
                # Each in-process node gets its own registry, or every
                # node's STATS would show the same global counters.
                kwargs.setdefault("metrics", MetricsRegistry())
                thread = DaemonThread(
                    node.root,
                    host=host,
                    port=int(port),
                    cluster_map=self.map,
                    node_name=node.name,
                    replicate_interval=self.replicate_interval,
                    **kwargs,
                )
                thread.start()
                self.threads[node.name] = thread
        except Exception:
            self.stop()
            raise
        except BaseException:
            # Ctrl-C during startup: best-effort unwind, never swallow.
            try:
                self.stop()
            except Exception:
                pass
            raise
        return self.map

    def stop(self) -> None:
        for thread in self.threads.values():
            thread.stop()
        self.threads.clear()

    def kill_node(self, name: str) -> None:
        """Abrupt stop: cancels in-flight sessions without draining."""
        try:
            self.threads[name].kill()
        except KeyError:
            raise ClusterError(f"no running daemon named {name!r}") from None

    def restart_node(self, name: str) -> None:
        """Bring a (killed or running) node back on its original address.

        The chaos harness kills a primary mid-backup and later restarts
        it; the node resumes from its on-disk state — exactly the
        operator "replace the crashed daemon" move.
        """
        from ..server.daemon import DaemonThread

        node = next((n for n in self.map.nodes if n.name == name), None)
        if node is None:
            raise ClusterError(f"no node named {name!r} in the cluster map")
        old = self.threads.pop(name, None)
        if old is not None:
            old.kill()
        host, _, port = node.address.rpartition(":")
        kwargs = dict(self.daemon_kwargs)
        kwargs.setdefault("metrics", MetricsRegistry())
        thread = DaemonThread(
            node.root,
            host=host,
            port=int(port),
            cluster_map=self.map,
            node_name=node.name,
            replicate_interval=self.replicate_interval,
            **kwargs,
        )
        thread.start()
        self.threads[name] = thread

    def addresses(self) -> List[str]:
        return [node.address for node in self.map.nodes]

    def __enter__(self) -> ClusterMap:
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
