"""Rebalance: move only the tenants whose ring ownership changed.

Consistent hashing promises that a membership change relocates ~1/N of
the keyspace; this module is where that promise is cashed in.  Given the
*old* map and the *new* map (epoch-bumped), the rebalancer:

1. enumerates hosted tenants (union of every old-map node's tenant list);
2. keeps only those whose placement differs between the maps —
   everything else is untouched, so the work is O(moved tenants), and
   each move is itself O(delta) thanks to the
   :class:`~repro.replication.planner.SyncPlanner` diff (a new holder
   that already replicates the tenant receives only what it lacks);
3. for each moved tenant, copies daemon→daemon: state + objects are
   *pulled* from a surviving old holder over ``REPLICATE_STATE`` /
   ``REPLICATE_FETCH`` and *pushed* to each new holder over
   ``REPLICATE_PUT`` / ``REPLICATE_COMMIT``;
4. **deep-verifies the new primary's copy** (server-side re-hash of every
   chunk and container) and only then sends ``TENANT_DROP`` to holders
   that lost the tenant.  A failed verify keeps the old copy — rebalance
   must never be the thing that loses data.

The daemons count arrivals themselves: a ``REPLICATE_COMMIT`` landing on
a tenant's ring primary increments ``cluster.tenants_moved`` on that node
(see the session handler), so ``cluster status --metrics`` shows where
rebalanced tenants landed.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from ..errors import ClusterError, ReproError
from ..replication.planner import SyncPlanner
from ..replication.state import blob_digest, normalize_state
from .client import ClusterClient
from .map import ClusterMap, NodeSpec


def moved_tenants(old: ClusterMap, new: ClusterMap, tenants: List[str]) -> List[str]:
    """The tenants whose placement (primary or replica set) changed."""
    return [
        tenant for tenant in tenants
        if [n.name for n in old.placement(tenant)] != [n.name for n in new.placement(tenant)]
    ]


def hosted_tenants(client: ClusterClient, cmap: ClusterMap) -> List[str]:
    """Every tenant any reachable node hosts (union over the cluster)."""
    names: set = set()
    reachable = 0
    for node in cmap.nodes:
        try:
            stats = client.remote(node.address, "-").server_stats()
        except (ReproError, OSError):
            continue
        reachable += 1
        names.update(stats.get("repos", {}))
    if not reachable:
        raise ClusterError("no node of the cluster is reachable")
    return sorted(names)


class ClusterRebalancer:
    """Execute one old-map → new-map data movement."""

    def __init__(self, client: ClusterClient, old: ClusterMap, new: ClusterMap) -> None:
        if new.epoch <= old.epoch:
            raise ClusterError(
                f"new map epoch {new.epoch} must exceed old epoch {old.epoch} "
                "(bump it — routers never downgrade)"
            )
        self.client = client
        self.old = old
        self.new = new

    # ------------------------------------------------------------------
    def _copy(self, tenant: str, source: NodeSpec, dest: NodeSpec) -> Dict:
        """One O(delta) daemon→daemon tenant copy (pull + push)."""
        src = self.client.remote(source.address, tenant)
        dst = self.client.remote(dest.address, tenant)
        src_doc = src.replicate_state()
        src_state = normalize_state(src_doc.get("state"))
        dst_state = normalize_state(dst.replicate_state().get("state"))
        plan = SyncPlanner().plan(src_state, dst_state)
        shipped = bytes_shipped = 0
        for action in plan.ships:
            blob = src.replicate_fetch(action.kind, action.name)
            dst.replicate_put(action.kind, action.name, blob,
                              digest=action.digest or blob_digest(blob),
                              staged=action.staged)
            shipped += 1
            bytes_shipped += len(blob)
        if plan.needs_commit:
            dst.replicate_commit(
                [[ref.kind, ref.name] for ref in plan.renames],
                [[ref.kind, ref.name] for ref in plan.deletes],
            )
        return {
            "from": source.name,
            "to": dest.name,
            "objects_shipped": shipped,
            "bytes_shipped": bytes_shipped,
            "containers_skipped": plan.containers_skipped,
        }

    def _source_for(self, tenant: str) -> NodeSpec:
        """A surviving old holder to pull from (primary preferred).

        Holders the old map marks ``down`` are probed last: after a
        failover the down node may well be back and reachable, but the
        promoted live holders took every write made in its absence.
        """
        errors = []
        holders = self.old.placement(tenant)
        holders = [n for n in holders if not n.down] + [n for n in holders if n.down]
        for node in holders:
            try:
                self.client.remote(node.address, tenant).replicate_state()
                return node
            except (ReproError, OSError) as exc:
                errors.append(f"{node.name}: {type(exc).__name__}: {exc}")
        raise ClusterError(
            f"no old holder of {tenant!r} is reachable: " + "; ".join(errors)
        )

    # ------------------------------------------------------------------
    def move_tenant(self, tenant: str) -> Dict:
        """Copy one tenant to its new holders, verify, then drop old copies."""
        old_names = [n.name for n in self.old.placement(tenant)]
        new_nodes = self.new.placement(tenant)
        new_names = [n.name for n in new_nodes]
        source = self._source_for(tenant)
        copies = []
        for dest in new_nodes:
            if dest.name == source.name:
                continue  # the source already holds the bytes
            copies.append(self._copy(tenant, source, dest))

        # The gate: the new primary must prove it can serve every chunk
        # before any old copy disappears.
        primary = new_nodes[0]
        report = self.client.remote(primary.address, tenant).verify(deep=True)
        if not report.get("ok"):
            raise ClusterError(
                f"deep verify of {tenant!r} on new primary {primary.name} "
                f"failed: {report.get('issues')!r}; old copies kept"
            )

        dropped = []
        for node in self.old.placement(tenant):
            if node.name in new_names:
                continue
            try:
                self.client.remote(node.address, tenant).drop_tenant()
                dropped.append(node.name)
            except (ReproError, OSError):
                # A dead old holder keeps a stale copy; harmless (it is
                # outside the new map) and removable when it returns.
                pass
        self.client.events.log(
            "cluster_tenant_moved",
            repo=tenant,
            old=old_names,
            new=new_names,
            dropped=dropped,
        )
        return {
            "tenant": tenant,
            "old": old_names,
            "new": new_names,
            "copies": copies,
            "verified": True,
            "dropped": dropped,
        }

    def run(self, tenants: Optional[List[str]] = None) -> Dict:
        """Move every tenant whose ownership changed; returns the report."""
        started = time.perf_counter()
        universe = tenants if tenants is not None else hosted_tenants(self.client, self.new)
        moved = moved_tenants(self.old, self.new, universe)
        results = [self.move_tenant(tenant) for tenant in moved]
        return {
            "old_epoch": self.old.epoch,
            "new_epoch": self.new.epoch,
            "tenants_checked": len(universe),
            "tenants_moved": len(results),
            "unchanged": sorted(set(universe) - set(moved)),
            "moves": results,
            "duration_seconds": round(time.perf_counter() - started, 3),
        }
