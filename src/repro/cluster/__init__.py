"""Sharded multi-daemon cluster: placement, routing, failover, rebalance.

The scale-out layer above a single :class:`~repro.server.daemon.BackupDaemon`:

- :mod:`.ring` — consistent hashing with virtual nodes.  Deterministic
  tenant→node placement that moves only ~1/N of tenants when membership
  changes.
- :mod:`.map` — the versioned :class:`ClusterMap` document (node list +
  ring parameters), invalidated by epoch.
- :mod:`.client` — :class:`ClusterClient`, the client-side router: resolves
  a tenant to its primary daemon, pools connections per address, fails
  restores over to ring-successor replicas when the primary dies, and
  retries failed writes on the promoted primary a newer map names.
- :mod:`.failover` — the demoted-node resync pull
  (:func:`pull_tenant`); promotion itself lives in the daemon's health
  prober, which marks dead nodes down in an epoch-bumped map.
- :mod:`.supervisor` — spawn and supervise N daemons from one spec file
  (``hidestore cluster serve``), plus an in-process harness for tests.
- :mod:`.rebalance` — move only the tenants whose ring ownership changed,
  deep-verifying the new primary before the old copy is dropped.
"""

from .client import ClusterClient, RoutedRepository, failover_worthy
from .failover import pull_tenant
from .map import DEFAULT_REPLICAS, ClusterMap, NodeSpec, newer_map
from .rebalance import ClusterRebalancer, hosted_tenants, moved_tenants
from .ring import DEFAULT_VNODES, HashRing, moved_keys, node_order
from .supervisor import ClusterHarness, ClusterSupervisor, assign_ports

__all__ = [
    "DEFAULT_REPLICAS",
    "DEFAULT_VNODES",
    "ClusterClient",
    "ClusterHarness",
    "ClusterMap",
    "ClusterRebalancer",
    "ClusterSupervisor",
    "HashRing",
    "NodeSpec",
    "RoutedRepository",
    "assign_ports",
    "failover_worthy",
    "hosted_tenants",
    "moved_keys",
    "moved_tenants",
    "newer_map",
    "node_order",
    "pull_tenant",
]
