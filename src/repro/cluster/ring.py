"""Consistent-hash ring with virtual nodes: deterministic tenant placement.

The ring maps tenant names onto daemon nodes so that:

* placement is **deterministic** — any process that knows the node list
  computes the same owner for a tenant, with no coordination service;
* placement is **stable under join/leave** — adding a node moves only the
  ~1/N fraction of tenants that now hash to the new node's points, and
  removing it restores exactly the prior placement of every other tenant
  (the remaining nodes' points never move);
* **replica placement** follows the ring: a tenant's copies live on the
  first ``R`` *distinct* nodes clockwise from its hash point, so losing
  the primary leaves the next successor already holding the data.

Virtual nodes (``vnodes`` hash points per node) smooth the ownership
distribution: with a single point per node the arc lengths — and thus the
tenant load — vary wildly; with 64+ points per node the per-node share
concentrates around 1/N.

Hashing is SHA-1 truncated to 64 bits — stable across processes, Python
versions and machines (never ``hash()``, which is salted per process).
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List, Tuple

from ..errors import ClusterError

#: Default virtual-node count per physical node.
DEFAULT_VNODES = 64


def _point(label: str) -> int:
    """A stable 64-bit ring coordinate for a label."""
    return int.from_bytes(hashlib.sha1(label.encode("utf-8")).digest()[:8], "big")


class HashRing:
    """A consistent-hash ring over named nodes.

    Args:
        nodes: node names (order-insensitive — placement depends only on
            the *set* of names).
        vnodes: hash points per node (>= 1).
    """

    def __init__(self, nodes: Iterable[str], vnodes: int = DEFAULT_VNODES) -> None:
        names = sorted(set(nodes))
        if not names:
            raise ClusterError("a hash ring needs at least one node")
        if vnodes < 1:
            raise ClusterError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = vnodes
        self.nodes: Tuple[str, ...] = tuple(names)
        points: List[Tuple[int, str]] = []
        for name in names:
            for i in range(vnodes):
                points.append((_point(f"{name}#{i}"), name))
        points.sort()
        self._hashes = [h for h, _ in points]
        self._owners = [n for _, n in points]

    # ------------------------------------------------------------------
    def primary(self, key: str) -> str:
        """The node owning ``key`` (the first point clockwise of its hash)."""
        return self.preference(key, 1)[0]

    def preference(self, key: str, count: int) -> List[str]:
        """The first ``count`` *distinct* nodes clockwise from ``key``.

        The preference list is the tenant's placement: index 0 is the
        primary, the rest are replica holders in failover order.  ``count``
        is clamped to the number of nodes on the ring.
        """
        if count < 1:
            raise ClusterError(f"preference count must be >= 1, got {count}")
        want = min(count, len(self.nodes))
        start = bisect.bisect_right(self._hashes, _point(key))
        chosen: List[str] = []
        seen = set()
        for i in range(len(self._owners)):
            owner = self._owners[(start + i) % len(self._owners)]
            if owner in seen:
                continue
            seen.add(owner)
            chosen.append(owner)
            if len(chosen) == want:
                break
        return chosen

    # ------------------------------------------------------------------
    def shares(self, samples: int = 4096) -> Dict[str, float]:
        """Approximate ownership share per node (diagnostics only)."""
        counts: Dict[str, int] = {name: 0 for name in self.nodes}
        for i in range(samples):
            counts[self.primary(f"sample-{i}")] += 1
        return {name: counts[name] / samples for name in self.nodes}


def node_order(names: Iterable[str]) -> List[str]:
    """Node names in clockwise ring-walk order (by their own hash point).

    The health-probe topology: each daemon watches the first *live* node
    counter-clockwise of itself in this order (its predecessor), so for
    any dead node exactly one live successor is responsible for declaring
    it dead and minting the promotion map — concurrent duelling epoch
    bumps cannot happen in the steady state.  Node names hash to one
    point each here (unlike tenant placement, which uses vnodes): probe
    responsibility needs a total order, not load smoothing.
    """
    return sorted(set(names), key=lambda name: (_point(name), name))


def moved_keys(
    before: HashRing, after: HashRing, keys: Iterable[str], replicas: int = 1
) -> List[str]:
    """The keys whose preference list changed between two rings.

    This is the rebalancer's work list: consistent hashing guarantees it
    is O(moved tenants), roughly ``len(keys) * delta_nodes / total_nodes``
    for a join or leave.
    """
    return [
        key
        for key in keys
        if before.preference(key, replicas) != after.preference(key, replicas)
    ]
