"""Container-granularity LRU restore cache.

The classic restore scheme ([13, 16, 28] in the paper): keep the last N
containers read in memory; every chunk whose container is cached costs
nothing.  Works well while backup streams retain physical locality, degrades
exactly as fragmentation spreads a stream over many containers — the effect
HiDeStore's filter removes at its root.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator, Sequence

from ..chunking.stream import Chunk
from ..errors import RestoreError
from ..storage.container import Container
from ..storage.recipe import RecipeEntry
from .base import ContainerReader, RestoreAlgorithm


class ContainerCacheRestore(RestoreAlgorithm):
    """LRU cache of whole containers.

    Args:
        cache_containers: capacity in containers (paper-style sizing; with
            4 MiB containers, 64 containers = 256 MiB of restore cache).
    """

    name = "container-lru"

    def __init__(self, cache_containers: int = 64) -> None:
        if cache_containers <= 0:
            raise RestoreError("cache_containers must be positive")
        self.cache_containers = cache_containers

    def restore(
        self, entries: Sequence[RecipeEntry], reader: ContainerReader
    ) -> Iterator[Chunk]:
        self._check_positive_cids(entries)
        cache: "OrderedDict[int, Container]" = OrderedDict()
        for entry in entries:
            container = cache.get(entry.cid)
            if container is None:
                container = reader(entry.cid)
                cache[entry.cid] = container
                if len(cache) > self.cache_containers:
                    cache.popitem(last=False)
            else:
                cache.move_to_end(entry.cid)
            yield container.get_chunk(entry.fingerprint)
