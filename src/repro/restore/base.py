"""Restore-algorithm interface and result accounting.

A restore algorithm turns a recipe (ordered chunk references with *positive*
container IDs) back into the original chunk sequence, reading containers
through a billed ``reader`` callable.  Algorithms differ only in how they
schedule and cache those container reads — which is the entire game, since
the paper's restore metric is *speed factor*: MB restored per container read.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterator, List, Sequence

from ..chunking.stream import Chunk
from ..errors import RestoreError
from ..storage.container import Container
from ..storage.recipe import RecipeEntry
from ..units import MiB

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .scheduler import RestoreScheduler

#: Signature of the billed container fetch: cid -> Container.
ContainerReader = Callable[[int], Container]


@dataclass
class RestoreResult:
    """Outcome of one restore run."""

    chunks: int = 0
    logical_bytes: int = 0
    container_reads: int = 0

    @property
    def speed_factor(self) -> float:
        """MB restored per container read (the paper's Fig. 11 metric)."""
        if self.container_reads == 0:
            return 0.0
        return (self.logical_bytes / MiB) / self.container_reads


class RestoreAlgorithm(ABC):
    """Base class for restore cache/assembly policies."""

    name: str = "base"

    @abstractmethod
    def restore(
        self, entries: Sequence[RecipeEntry], reader: ContainerReader
    ) -> Iterator[Chunk]:
        """Yield the version's chunks in recipe order.

        Implementations must call ``reader`` exactly once per physical
        container read they model (the reader bills IOStats) and must yield
        ``len(entries)`` chunks whose fingerprints match the entries.
        """

    def scheduler(self) -> "RestoreScheduler":
        """The planning half of this policy, for the pipelined real path.

        Scheduler-native algorithms (FAA) override this to return their
        planner directly; the default derives a plan by dry-running the
        algorithm over synthetic recipe-only containers
        (:class:`~repro.restore.scheduler.SimulatedScheduler`), so every
        cache policy works with prefetched execution unchanged.
        """
        from .scheduler import SimulatedScheduler

        return SimulatedScheduler(self)

    @staticmethod
    def _check_positive_cids(entries: Sequence[RecipeEntry]) -> None:
        for entry in entries:
            if entry.cid <= 0:
                raise RestoreError(
                    "restore algorithms need fully resolved recipes; "
                    f"found cid={entry.cid} for {entry.fingerprint.hex()[:8]} "
                    "(resolve the recipe chain first)"
                )

    def run(
        self, entries: Sequence[RecipeEntry], reader: ContainerReader
    ) -> List[Chunk]:
        """Materialise the whole restore (convenience for tests/benches)."""
        return list(self.restore(entries, reader))
