"""Restore schedulers: the planning layer under every restore path.

A :class:`RestoreScheduler` turns a fully resolved recipe (positive
container IDs) into an ordered *plan*: which containers to read, in what
order, which recipe slots each read must serve, and when each slot is
emitted.  The plan separates **policy** (cache/assembly decisions — the
entire subject of the paper's §4.4 comparison) from **execution** (how the
container bytes are actually fetched), so one policy drives both worlds:

* the simulation layer executes a plan serially against the billed reader
  (:func:`execute_plan`) — container-read counts, and therefore speed
  factor, are exactly those of the classic algorithm implementations;
* the real byte-serving path executes the *same* plan with a prefetching
  reader pool (:mod:`repro.engine.restore`), overlapping container I/O
  with reassembly and socket writes.

Plans are streams of :class:`PlanSpan` steps.  Within a span, every listed
read happens before any listed emit; a read's ``slots`` name all entry
indices that must be copied out of that read — including indices emitted by
*later* spans (that is how cache retention is expressed: the chunk is held
in the assembly buffer from read until emission).

Plan invariants (checked by the executors as they go):

* emitted indices are strictly increasing across the whole plan and cover
  ``range(len(entries))`` exactly once;
* every index appears in exactly one read's ``slots``, and that read's
  span is no later than the index's emitting span.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from bisect import bisect_right
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterator, List, Sequence, Tuple

from ..chunking.stream import Chunk
from ..errors import RestoreError
from ..storage.container import Container
from ..storage.recipe import RecipeEntry
from ..units import MiB

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .base import ContainerReader, RestoreAlgorithm


@dataclass(frozen=True)
class ContainerRead:
    """One billed container fetch and the recipe slots it must serve."""

    cid: int
    slots: Tuple[int, ...]


@dataclass(frozen=True)
class PlanSpan:
    """One plan step: perform ``reads``, then emit ``emit`` in order."""

    emit: Tuple[int, ...]
    reads: Tuple[ContainerRead, ...] = ()


class RestoreScheduler(ABC):
    """Turns resolved recipe entries into an ordered restore plan."""

    name: str = "scheduler"

    @abstractmethod
    def plan(self, entries: Sequence[RecipeEntry]) -> Iterator[PlanSpan]:
        """Yield the plan for restoring ``entries`` in recipe order."""


class FAAScheduler(RestoreScheduler):
    """Forward-assembly-area planning (Lillibridge et al., FAST'13).

    The recipe is partitioned into M-byte assembly areas; per area, each
    distinct container is read exactly once, in first-need order, and every
    slot it supplies anywhere in the area is copied out of that one read.
    This is the planning half of :class:`~repro.restore.faa.FAARestore`;
    the read sequence is identical to the classic implementation.
    """

    name = "faa"

    def __init__(self, area_bytes: int = 256 * MiB) -> None:
        if area_bytes <= 0:
            raise RestoreError("area_bytes must be positive")
        self.area_bytes = area_bytes

    def _spans(self, entries: Sequence[RecipeEntry]) -> Iterator[List[int]]:
        """Partition entry indices into assembly-area-sized spans."""
        span: List[int] = []
        used = 0
        for i, entry in enumerate(entries):
            if used + entry.size > self.area_bytes and span:
                yield span
                span = []
                used = 0
            span.append(i)
            used += entry.size
        if span:
            yield span

    def plan(self, entries: Sequence[RecipeEntry]) -> Iterator[PlanSpan]:
        for span in self._spans(entries):
            needed: Dict[int, List[int]] = {}
            order: List[int] = []
            for i in span:
                cid = entries[i].cid
                if cid not in needed:
                    needed[cid] = []
                    order.append(cid)
                needed[cid].append(i)
            yield PlanSpan(
                emit=tuple(span),
                reads=tuple(ContainerRead(cid, tuple(needed[cid])) for cid in order),
            )


class SimulatedScheduler(RestoreScheduler):
    """Derive a plan by dry-running any :class:`RestoreAlgorithm`.

    The algorithm is executed once against *synthetic* containers built
    purely from the recipe's (fingerprint, size, cid) rows — no real
    container is touched and nothing is billed.  The recorded interleaving
    of reads and emissions compiles into a plan whose billed read sequence
    matches what the algorithm itself would have issued, so any cache
    policy (LRU, ALACC, hot-set, Belady) drives the real prefetching path
    without a parallel implementation.

    Caveat: policies that exploit chunks a real container holds *beyond*
    this recipe's references (possible when rewriting stores duplicate
    copies) cannot see them here; against a deduplicated store — where each
    fingerprint lives in exactly one container — the derived plan is exact.
    """

    name = "simulated"

    def __init__(self, algorithm: "RestoreAlgorithm") -> None:
        self.algorithm = algorithm

    def _fake_containers(self, entries: Sequence[RecipeEntry]) -> Dict[int, Container]:
        sizes: Dict[int, int] = {}
        members: Dict[int, Dict[bytes, int]] = {}
        for entry in entries:
            group = members.setdefault(entry.cid, {})
            if entry.fingerprint not in group:
                group[entry.fingerprint] = entry.size
                sizes[entry.cid] = sizes.get(entry.cid, 0) + entry.size
        fakes: Dict[int, Container] = {}
        for cid, group in members.items():
            container = Container(cid, capacity=max(1, sizes[cid]))
            for fp, size in group.items():
                container.add(Chunk(fp, size))
            fakes[cid] = container
        return fakes

    def plan(self, entries: Sequence[RecipeEntry]) -> Iterator[PlanSpan]:
        entries = list(entries)
        if not entries:
            return iter(())
        fakes = self._fake_containers(entries)
        # ops: ("read", cid) / ("emit", index), in the algorithm's order.
        ops: List[Tuple[str, int]] = []

        def recording_reader(cid: int) -> Container:
            ops.append(("read", cid))
            try:
                return fakes[cid]
            except KeyError:
                raise RestoreError(
                    f"algorithm {self.algorithm.name!r} read container {cid}, "
                    "which no recipe entry references"
                ) from None

        index = 0
        for chunk in self.algorithm.restore(entries, recording_reader):
            if chunk.fingerprint != entries[index].fingerprint:
                raise RestoreError(
                    f"algorithm {self.algorithm.name!r} emitted chunk "
                    f"{chunk.short_fp()} out of recipe order at slot {index}"
                )
            ops.append(("emit", index))
            index += 1
        if index != len(entries):
            raise RestoreError(
                f"algorithm {self.algorithm.name!r} emitted {index} of "
                f"{len(entries)} chunks"
            )
        return iter(self._compile(entries, ops))

    def _compile(
        self, entries: Sequence[RecipeEntry], ops: List[Tuple[str, int]]
    ) -> List[PlanSpan]:
        # Positions of every read, per container, for serving-read lookup.
        read_pos: Dict[int, List[int]] = {}
        for pos, (kind, value) in enumerate(ops):
            if kind == "read":
                read_pos.setdefault(value, []).append(pos)
        # Each emission is served by the latest read of its container that
        # precedes it (cache hits are "served early, held until emitted").
        slots: Dict[int, List[int]] = {}  # op position of read -> indices
        extra_reads: Dict[int, List[int]] = {}  # emit op position -> indices
        for pos, (kind, index) in enumerate(ops):
            if kind != "emit":
                continue
            cid = entries[index].cid
            positions = read_pos.get(cid, [])
            at = bisect_right(positions, pos) - 1
            if at < 0:
                # The algorithm served this slot without ever reading its
                # container (a cross-container chunk-cache hit, only possible
                # with duplicate stored copies).  Schedule a direct read so
                # the real path stays correct; this bills one extra read.
                extra_reads.setdefault(pos, []).append(index)
            else:
                slots.setdefault(positions[at], []).append(index)
        # Group into spans: runs of reads, then the emits up to the next read.
        spans: List[PlanSpan] = []
        reads: List[ContainerRead] = []
        emits: List[int] = []

        def flush() -> None:
            if reads or emits:
                spans.append(PlanSpan(emit=tuple(emits), reads=tuple(reads)))

        for pos, (kind, value) in enumerate(ops):
            if kind == "read":
                if emits:
                    flush()
                    reads, emits = [], []
                # Zero-slot reads (e.g. a look-ahead fetch whose parked
                # chunks all get re-served later) stay in the plan: the
                # algorithm billed them, so the plan must too.
                reads.append(ContainerRead(value, tuple(slots.get(pos, ()))))
            else:
                for index in extra_reads.get(pos, ()):
                    reads.append(ContainerRead(entries[index].cid, (index,)))
                emits.append(value)
        flush()
        return spans


def execute_plan(
    entries: Sequence[RecipeEntry],
    plan: Iterator[PlanSpan],
    reader: "ContainerReader",
) -> Iterator[Chunk]:
    """Serial reference executor: one billed read per :class:`ContainerRead`.

    This is the simulation/algorithm-layer execution of a plan; the
    pipelined twin with a prefetching reader pool lives in
    :mod:`repro.engine.restore`.
    """
    pending: Dict[int, Chunk] = {}
    for span in plan:
        for read in span.reads:
            container = reader(read.cid)
            for i in read.slots:
                pending[i] = container.get_chunk(entries[i].fingerprint)
        for i in span.emit:
            try:
                yield pending.pop(i)
            except KeyError:
                raise RestoreError(
                    f"restore plan emitted slot {i} before any read served it"
                ) from None


def scheduler_for(algorithm: "RestoreAlgorithm") -> RestoreScheduler:
    """The scheduler driving ``algorithm``'s policy on the real path.

    Scheduler-native algorithms (FAA) expose their planner directly;
    anything else is wrapped in a :class:`SimulatedScheduler`.
    """
    return algorithm.scheduler()
