"""FAA — Forward Assembly Area restore (Lillibridge et al., FAST'13).

The restore buffer is treated as an M-byte *assembly area*.  The recipe is
consumed one area-full at a time: first plan which container supplies each
byte range of the area, then read each required container **exactly once**
(in first-need order), copying every chunk it supplies anywhere in the area.
Because the recipe is known in advance, FAA never re-reads a container for
the same area and needs no eviction policy at all.

FAA is scheduler-native: the planning half lives in
:class:`~repro.restore.scheduler.FAAScheduler` and this class merely
executes the plan serially against the billed reader — which is how the
same policy also drives the pipelined real-path executor in
:mod:`repro.engine.restore` without a second implementation.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from ..chunking.stream import Chunk
from ..errors import RestoreError
from ..storage.recipe import RecipeEntry
from ..units import MiB
from .base import ContainerReader, RestoreAlgorithm
from .scheduler import FAAScheduler, RestoreScheduler, execute_plan


class FAARestore(RestoreAlgorithm):
    """Forward assembly area.

    Args:
        area_bytes: assembly-area size M (default 256 MiB; the original paper
            explores 128 MB-1 GB).
    """

    name = "faa"

    def __init__(self, area_bytes: int = 256 * MiB) -> None:
        if area_bytes <= 0:
            raise RestoreError("area_bytes must be positive")
        self.area_bytes = area_bytes

    def scheduler(self) -> RestoreScheduler:
        return FAAScheduler(self.area_bytes)

    def restore(
        self, entries: Sequence[RecipeEntry], reader: ContainerReader
    ) -> Iterator[Chunk]:
        self._check_positive_cids(entries)
        return execute_plan(entries, self.scheduler().plan(entries), reader)
