"""FAA — Forward Assembly Area restore (Lillibridge et al., FAST'13).

The restore buffer is treated as an M-byte *assembly area*.  The recipe is
consumed one area-full at a time: first plan which container supplies each
byte range of the area, then read each required container **exactly once**
(in first-need order), copying every chunk it supplies anywhere in the area.
Because the recipe is known in advance, FAA never re-reads a container for
the same area and needs no eviction policy at all.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Sequence

from ..chunking.stream import Chunk
from ..errors import RestoreError
from ..storage.recipe import RecipeEntry
from ..units import MiB
from .base import ContainerReader, RestoreAlgorithm


class FAARestore(RestoreAlgorithm):
    """Forward assembly area.

    Args:
        area_bytes: assembly-area size M (default 256 MiB; the original paper
            explores 128 MB-1 GB).
    """

    name = "faa"

    def __init__(self, area_bytes: int = 256 * MiB) -> None:
        if area_bytes <= 0:
            raise RestoreError("area_bytes must be positive")
        self.area_bytes = area_bytes

    def _spans(self, entries: Sequence[RecipeEntry]) -> Iterator[List[int]]:
        """Partition entry indices into assembly-area-sized spans."""
        span: List[int] = []
        used = 0
        for i, entry in enumerate(entries):
            if used + entry.size > self.area_bytes and span:
                yield span
                span = []
                used = 0
            span.append(i)
            used += entry.size
        if span:
            yield span

    def restore(
        self, entries: Sequence[RecipeEntry], reader: ContainerReader
    ) -> Iterator[Chunk]:
        self._check_positive_cids(entries)
        for span in self._spans(entries):
            # Plan: which slots need which container, in first-need order.
            needed: Dict[int, List[int]] = {}
            order: List[int] = []
            for i in span:
                cid = entries[i].cid
                if cid not in needed:
                    needed[cid] = []
                    order.append(cid)
                needed[cid].append(i)
            # Fill: one read per container, populate all its slots.
            assembled: Dict[int, Chunk] = {}
            for cid in order:
                container = reader(cid)
                for i in needed[cid]:
                    assembled[i] = container.get_chunk(entries[i].fingerprint)
            for i in span:
                yield assembled[i]
