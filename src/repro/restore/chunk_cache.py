"""Chunk-granularity LRU restore cache.

Instead of pinning whole 4 MiB containers, cache individual chunks with a
byte budget ([9, 20, 22] in the paper).  On a miss the whole container is
read (that's the I/O unit) and *all* its chunks are offered to the cache;
eviction is per chunk, so memory is spent only on bytes that may still be
needed — better than container caching once containers hold few useful
chunks, which is the late-version fragmentation regime.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator, Sequence, Tuple

from ..chunking.stream import Chunk
from ..errors import RestoreError
from ..storage.recipe import RecipeEntry
from ..units import MiB
from .base import ContainerReader, RestoreAlgorithm


class ChunkCacheRestore(RestoreAlgorithm):
    """Byte-budgeted LRU cache of individual chunks.

    Args:
        cache_bytes: total payload budget (default 256 MiB, comparable to a
            64-container cache).
    """

    name = "chunk-lru"

    def __init__(self, cache_bytes: int = 256 * MiB) -> None:
        if cache_bytes <= 0:
            raise RestoreError("cache_bytes must be positive")
        self.cache_bytes = cache_bytes

    def restore(
        self, entries: Sequence[RecipeEntry], reader: ContainerReader
    ) -> Iterator[Chunk]:
        self._check_positive_cids(entries)
        cache: "OrderedDict[bytes, Chunk]" = OrderedDict()
        used = 0
        for entry in entries:
            chunk = cache.get(entry.fingerprint)
            if chunk is not None:
                cache.move_to_end(entry.fingerprint)
                yield chunk
                continue
            container = reader(entry.cid)
            for stored in container.chunks():
                if stored.fingerprint in cache:
                    cache.move_to_end(stored.fingerprint)
                    continue
                cache[stored.fingerprint] = stored
                used += stored.size
            while used > self.cache_bytes and cache:
                _, evicted = cache.popitem(last=False)
                used -= evicted.size
            chunk = cache.get(entry.fingerprint)
            if chunk is None:
                # Pathological: the needed chunk itself was evicted (cache
                # smaller than one container) — serve straight from the read.
                chunk = container.get_chunk(entry.fingerprint)
            yield chunk
