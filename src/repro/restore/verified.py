"""Verifying restore: recompute fingerprints while restoring.

Wraps any restore algorithm and re-hashes every payload-carrying chunk as
it streams out, raising on the first mismatch — end-to-end integrity on the
restore path (a bit-flip inside a container payload would otherwise pass
silently, since containers index chunks by their *recorded* fingerprint).
Metadata-only chunks (simulated streams) cannot be re-hashed and are either
passed through or rejected, per ``require_payload``.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from ..chunking.fingerprint import Fingerprinter
from ..chunking.stream import Chunk
from ..errors import RestoreError
from ..storage.recipe import RecipeEntry
from .base import ContainerReader, RestoreAlgorithm
from .faa import FAARestore


class VerifyingRestore(RestoreAlgorithm):
    """Decorator: re-fingerprint every restored chunk.

    Args:
        inner: the actual restore algorithm (FAA by default).
        fingerprinter: must match the one used at backup time (SHA-1
            default, as in the paper).
        require_payload: raise on metadata-only chunks instead of passing
            them through unverified.
    """

    name = "verified"

    def __init__(
        self,
        inner: RestoreAlgorithm = None,
        fingerprinter: Fingerprinter = None,
        require_payload: bool = False,
    ) -> None:
        self.inner = inner if inner is not None else FAARestore()
        self.fingerprinter = fingerprinter if fingerprinter is not None else Fingerprinter()
        self.require_payload = require_payload
        self.chunks_verified = 0
        self.chunks_unverifiable = 0

    def scheduler(self):
        """Plan with the wrapped policy; verification is not a plan concern.

        On the real path, re-hashing is requested through the executor's
        ``verify`` switch (:func:`repro.engine.restore.restore_stream`),
        which runs the same check with payloads present — simulating the
        decorator over payload-free synthetic containers would verify
        nothing.
        """
        return self.inner.scheduler()

    def restore(
        self, entries: Sequence[RecipeEntry], reader: ContainerReader
    ) -> Iterator[Chunk]:
        for chunk in self.inner.restore(entries, reader):
            if chunk.data is None:
                if self.require_payload:
                    raise RestoreError(
                        f"chunk {chunk.short_fp()} carries no payload to verify"
                    )
                self.chunks_unverifiable += 1
                yield chunk
                continue
            actual = self.fingerprinter.fingerprint(chunk.data)
            if actual != chunk.fingerprint:
                raise RestoreError(
                    f"integrity failure: chunk recorded as {chunk.short_fp()} "
                    f"hashes to {actual.hex()[:8]}"
                )
            self.chunks_verified += 1
            yield chunk
