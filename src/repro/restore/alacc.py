"""ALACC — Adaptive Look-Ahead Chunk Caching (Cao et al., FAST'18).

ALACC combines the two classic restore designs under one memory budget:

* a **forward assembly area** (FAA) that guarantees one read per container
  per area, and
* a **chunk cache** fed by *look-ahead* knowledge: when a container is read
  for the current area, any of its chunks that the upcoming recipe entries
  (within the look-ahead window) will need are parked in the cache, so the
  container need not be read again for a later area.

The split between FAA and cache — and the look-ahead depth — is **adapted**
while restoring: when the cache serves many slots the cache half grows; when
it mostly holds dead bytes the FAA half grows.  This reproduction adapts in
fixed steps at area granularity, which matches the published behaviour at
the fidelity our container-read metric needs.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Sequence, Set

from ..chunking.stream import Chunk
from ..errors import RestoreError
from ..storage.recipe import RecipeEntry
from ..units import MiB
from .base import ContainerReader, RestoreAlgorithm


class ALACCRestore(RestoreAlgorithm):
    """Adaptive look-ahead window assisted chunk caching.

    Args:
        total_bytes: combined FAA + chunk-cache memory budget.
        lookahead_bytes: how far beyond the current area the recipe is
            consulted when deciding which chunks to park in the cache.
        min_faa_bytes / step_bytes: bounds and granularity of adaptation.
    """

    name = "alacc"

    def __init__(
        self,
        total_bytes: int = 256 * MiB,
        lookahead_bytes: int = 128 * MiB,
        min_faa_bytes: int = 32 * MiB,
        step_bytes: int = 16 * MiB,
        grow_threshold: float = 0.10,
        shrink_threshold: float = 0.02,
    ) -> None:
        if total_bytes <= 0 or lookahead_bytes < 0:
            raise RestoreError("memory budgets must be positive")
        if min_faa_bytes <= 0 or min_faa_bytes > total_bytes:
            raise RestoreError("min_faa_bytes must be in (0, total_bytes]")
        self.total_bytes = total_bytes
        self.lookahead_bytes = lookahead_bytes
        self.min_faa_bytes = min_faa_bytes
        self.step_bytes = step_bytes
        self.grow_threshold = grow_threshold
        self.shrink_threshold = shrink_threshold

    def restore(
        self, entries: Sequence[RecipeEntry], reader: ContainerReader
    ) -> Iterator[Chunk]:
        self._check_positive_cids(entries)
        faa_bytes = max(self.min_faa_bytes, self.total_bytes // 2)
        cache_bytes = self.total_bytes - faa_bytes
        #: Exposed after each run for adaptivity introspection/tests.
        self.last_faa_bytes = faa_bytes
        self.last_cache_bytes = cache_bytes

        cache: "OrderedDict[bytes, Chunk]" = OrderedDict()
        cache_used = 0

        def cache_put(chunk: Chunk) -> None:
            nonlocal cache_used
            if chunk.fingerprint in cache:
                cache.move_to_end(chunk.fingerprint)
                return
            cache[chunk.fingerprint] = chunk
            cache_used += chunk.size
            while cache_used > cache_bytes and cache:
                _, evicted = cache.popitem(last=False)
                cache_used -= evicted.size

        n = len(entries)
        area_start = 0
        while area_start < n:
            # Delimit the current assembly area by faa_bytes.
            area_end = area_start
            used = 0
            while area_end < n and (used + entries[area_end].size <= faa_bytes or area_end == area_start):
                used += entries[area_end].size
                area_end += 1

            # Look-ahead fingerprint set beyond the area.
            look_fps: Set[bytes] = set()
            look_bytes = 0
            j = area_end
            while j < n and look_bytes < self.lookahead_bytes:
                look_fps.add(entries[j].fingerprint)
                look_bytes += entries[j].size
                j += 1

            # Plan container reads for slots the cache cannot serve.
            assembled: Dict[int, Chunk] = {}
            needed: Dict[int, List[int]] = {}
            order: List[int] = []
            cache_served = 0
            for i in range(area_start, area_end):
                fp = entries[i].fingerprint
                hit = cache.get(fp)
                if hit is not None:
                    cache.move_to_end(fp)
                    assembled[i] = hit
                    cache_served += 1
                    continue
                cid = entries[i].cid
                if cid not in needed:
                    needed[cid] = []
                    order.append(cid)
                needed[cid].append(i)

            for cid in order:
                container = reader(cid)
                for i in needed[cid]:
                    assembled[i] = container.get_chunk(entries[i].fingerprint)
                # Look-ahead parking: keep chunks this container supplies to
                # the upcoming window so it is not read again.
                if look_fps:
                    for stored in container.chunks():
                        if stored.fingerprint in look_fps:
                            cache_put(stored)

            for i in range(area_start, area_end):
                yield assembled[i]

            # Adapt the FAA/cache split from this area's cache usefulness.
            slots = area_end - area_start
            hit_ratio = cache_served / slots if slots else 0.0
            if hit_ratio > self.grow_threshold and faa_bytes - self.step_bytes >= self.min_faa_bytes:
                faa_bytes -= self.step_bytes
                cache_bytes += self.step_bytes
            elif hit_ratio < self.shrink_threshold and cache_bytes >= self.step_bytes:
                faa_bytes += self.step_bytes
                cache_bytes -= self.step_bytes
                while cache_used > cache_bytes and cache:
                    _, evicted = cache.popitem(last=False)
                    cache_used -= evicted.size

            self.last_faa_bytes = faa_bytes
            self.last_cache_bytes = cache_bytes
            area_start = area_end
