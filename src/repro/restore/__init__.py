"""Restore algorithms: caching and assembly policies over recipes.

Implements the paper's comparison set — container-based caching, chunk-based
caching, FAA (forward assembly) and ALACC — plus a Belady-optimal bound used
by the ablation benchmarks.
"""

from .alacc import ALACCRestore
from .base import ContainerReader, RestoreAlgorithm, RestoreResult
from .chunk_cache import ChunkCacheRestore
from .container_cache import ContainerCacheRestore
from .faa import FAARestore
from .hotset import HotSetRestore
from .optimal import OptimalContainerCacheRestore
from .scheduler import (
    ContainerRead,
    FAAScheduler,
    PlanSpan,
    RestoreScheduler,
    SimulatedScheduler,
    execute_plan,
    scheduler_for,
)
from .verified import VerifyingRestore

__all__ = [
    "ALACCRestore",
    "ChunkCacheRestore",
    "ContainerCacheRestore",
    "ContainerRead",
    "ContainerReader",
    "FAARestore",
    "FAAScheduler",
    "HotSetRestore",
    "OptimalContainerCacheRestore",
    "PlanSpan",
    "RestoreScheduler",
    "SimulatedScheduler",
    "VerifyingRestore",
    "RestoreAlgorithm",
    "RestoreResult",
    "execute_plan",
    "make_restorer",
    "scheduler_for",
]

_RESTORERS = {
    "container-lru": ContainerCacheRestore,
    "chunk-lru": ChunkCacheRestore,
    "faa": FAARestore,
    "hotset": HotSetRestore,
    "alacc": ALACCRestore,
    "optimal": OptimalContainerCacheRestore,
}


def make_restorer(name: str, **kwargs) -> RestoreAlgorithm:
    """Construct a restore algorithm by name."""
    try:
        cls = _RESTORERS[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown restore algorithm {name!r}; choose from {sorted(_RESTORERS)}"
        ) from None
    return cls(**kwargs)
