"""Belady-optimal container cache — an offline upper bound for ablations.

Not in the paper's comparison set, but useful to bound how much *any*
container-granularity caching could ever help a given layout: with the whole
recipe known, evict the cached container whose next use is farthest in the
future.  The gap between a scheme and this bound separates "bad caching"
from "bad physical locality" — HiDeStore attacks the latter, so its layouts
show small gaps.
"""

from __future__ import annotations

import heapq
from collections import defaultdict
from typing import Deque, Dict, Iterator, List, Sequence

from collections import deque

from ..chunking.stream import Chunk
from ..errors import RestoreError
from ..storage.container import Container
from ..storage.recipe import RecipeEntry
from .base import ContainerReader, RestoreAlgorithm


class OptimalContainerCacheRestore(RestoreAlgorithm):
    """Belady (farthest-next-use) eviction over whole containers."""

    name = "optimal"

    def __init__(self, cache_containers: int = 64) -> None:
        if cache_containers <= 0:
            raise RestoreError("cache_containers must be positive")
        self.cache_containers = cache_containers

    def restore(
        self, entries: Sequence[RecipeEntry], reader: ContainerReader
    ) -> Iterator[Chunk]:
        self._check_positive_cids(entries)
        n = len(entries)
        # Precompute, per container, the queue of positions where it is used.
        uses: Dict[int, Deque[int]] = defaultdict(deque)
        for i, entry in enumerate(entries):
            uses[entry.cid].append(i)

        INFINITY = n + 1

        def next_use(cid: int, after: int) -> int:
            queue = uses[cid]
            while queue and queue[0] <= after:
                queue.popleft()
            return queue[0] if queue else INFINITY

        cache: Dict[int, Container] = {}
        # Max-heap (negated) of (next_use, cid); entries may be stale and are
        # lazily validated on pop.
        heap: List = []

        for i, entry in enumerate(entries):
            cid = entry.cid
            container = cache.get(cid)
            if container is None:
                container = reader(cid)
                if len(cache) >= self.cache_containers:
                    # Evict the cached container used farthest in the future.
                    while heap:
                        neg_use, candidate = heapq.heappop(heap)
                        if candidate not in cache:
                            continue
                        actual = next_use(candidate, i - 1)
                        if -neg_use != actual:
                            heapq.heappush(heap, (-actual, candidate))
                            continue
                        del cache[candidate]
                        break
                cache[cid] = container
            heapq.heappush(heap, (-next_use(cid, i), cid))
            yield container.get_chunk(entry.fingerprint)
