"""Hot-set restore: one pass over the needed containers, unlimited assembly.

HiDeStore's §4.2 observation — "all these chunks are hot chunks, which will
be prefetched together during reading" — implies the natural restore plan
for a version whose chunks are physically clustered: read every referenced
container exactly once, in first-need order, assembling the whole version
in memory.  This is FAA with an unbounded area, packaged as its own
algorithm so benchmarks can quantify what the clustering is worth when the
general-purpose restore cache is small.

Memory cost: one version's payload (exactly the working set the paper's
backup phase already assumes fits, since T1/T2 hold a version's metadata).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Sequence

from ..chunking.stream import Chunk
from ..storage.recipe import RecipeEntry
from .base import ContainerReader, RestoreAlgorithm


class HotSetRestore(RestoreAlgorithm):
    """Read each referenced container exactly once; assemble everything."""

    name = "hotset"

    def restore(
        self, entries: Sequence[RecipeEntry], reader: ContainerReader
    ) -> Iterator[Chunk]:
        self._check_positive_cids(entries)
        needed: Dict[int, List[int]] = {}
        order: List[int] = []
        for i, entry in enumerate(entries):
            if entry.cid not in needed:
                needed[entry.cid] = []
                order.append(entry.cid)
            needed[entry.cid].append(i)
        assembled: Dict[int, Chunk] = {}
        for cid in order:
            container = reader(cid)
            for i in needed[cid]:
                assembled[i] = container.get_chunk(entries[i].fingerprint)
        for i in range(len(entries)):
            yield assembled[i]
