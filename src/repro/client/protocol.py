"""The backup service wire protocol: length-prefixed, versioned frames.

Shared, sans-network codec — both the asyncio daemon and the blocking
client encode/decode through this module, so the two sides can never
disagree about the framing.

Frame layout (little-endian)::

    +----------------+-----------+------------------+
    | payload length | frame type| payload          |
    |   4 bytes (u32)| 1 byte    | length bytes     |
    +----------------+-----------+------------------+

Control frames carry a UTF-8 JSON object; ``CHUNK_DATA`` frames carry raw
backup bytes.  A conversation opens with ``HELLO``/``HELLO_OK`` version
negotiation; ingest streams ``BACKUP_BEGIN`` → ``CHUNK_DATA``\\ * →
``BACKUP_END`` under a credit window (the receiver grants ``CREDIT``
frames; the sender may have at most *window* unacknowledged data frames in
flight — bounded memory on the server, backpressure on the client);
restores stream ``RESTORE_META`` → ``CHUNK_DATA``\\ * → ``RESTORE_END``.
Replication ships repository objects to a mirror daemon
(``REPLICATE_STATE`` / ``REPLICATE_PUT`` / ``REPLICATE_COMMIT``) and reads
them back for repair (``REPLICATE_FETCH``); object bodies stream as
``CHUNK_DATA`` frames totalling the announced size.  Cluster deployments
add ``CLUSTER_MAP`` (fetch the daemon's versioned membership document),
``CLUSTER_SYNC`` (ask a primary to replicate its owned tenants to their
ring successors) and ``TENANT_DROP`` (rebalance cleanup).
Failures travel as ``ERROR`` frames carrying the :class:`ReproError`
taxonomy by class name, so the client re-raises the exact exception type
the server hit (:func:`repro.errors.error_by_name`).
"""

from __future__ import annotations

import json
import struct
from enum import IntEnum
from typing import Iterator, List, Optional, Tuple

from ..errors import ProtocolError, ReproError, error_by_name

#: Bump when the frame vocabulary changes incompatibly.
PROTOCOL_VERSION = 1

#: Handshake magic carried inside HELLO (guards against foreign clients).
MAGIC = "HDSP"

#: Hard ceiling on a single frame's payload (wire-sanity guard).
MAX_PAYLOAD = 32 * 1024 * 1024

#: Default credit window: data frames in flight before an ack is required.
DEFAULT_WINDOW = 64

#: Preferred payload size for CHUNK_DATA frames (streaming granularity).
DATA_BLOCK = 256 * 1024

_HEADER = struct.Struct("<IB")
HEADER_SIZE = _HEADER.size


class FrameType(IntEnum):
    """Every frame the protocol speaks (wire-stable values)."""

    HELLO = 1
    HELLO_OK = 2
    BACKUP_BEGIN = 3
    CHUNK_DATA = 4
    BACKUP_END = 5
    BACKUP_DONE = 6
    CREDIT = 7
    RESTORE_BEGIN = 8
    RESTORE_META = 9
    RESTORE_END = 10
    STATS = 11
    STATS_OK = 12
    DELETE_OLDEST = 13
    DELETE_OK = 14
    VERSIONS = 15
    VERSIONS_OK = 16
    ERROR = 17
    # Replication (mirror-daemon) vocabulary.  PUT and OBJECT stream their
    # body as CHUNK_DATA frames totalling exactly the announced ``size`` —
    # the count is derivable, so no END frame is needed.
    REPLICATE_STATE = 18
    REPLICATE_STATE_OK = 19
    REPLICATE_PUT = 20
    REPLICATE_PUT_OK = 21
    REPLICATE_COMMIT = 22
    REPLICATE_COMMIT_OK = 23
    REPLICATE_FETCH = 24
    REPLICATE_OBJECT = 25
    VERIFY = 26
    VERIFY_OK = 27
    # Cluster vocabulary (sharded multi-daemon deployments).  CLUSTER_MAP
    # returns the daemon's versioned membership document (or null when the
    # daemon is not part of a cluster); CLUSTER_SYNC asks a primary to
    # replicate its owned tenants to their ring successors; TENANT_DROP
    # removes one tenant's storage (rebalance cleanup — the new primary
    # must have deep-verified before anyone sends this).
    CLUSTER_MAP = 28
    CLUSTER_MAP_OK = 29
    CLUSTER_SYNC = 30
    CLUSTER_SYNC_OK = 31
    TENANT_DROP = 32
    TENANT_DROP_OK = 33


# ----------------------------------------------------------------------
# Encoding
# ----------------------------------------------------------------------
def encode_frame(ftype: FrameType, payload: bytes = b"") -> bytes:
    """Serialise one frame (header + payload) to bytes."""
    if len(payload) > MAX_PAYLOAD:
        raise ProtocolError(f"frame payload of {len(payload)} B exceeds {MAX_PAYLOAD} B")
    return _HEADER.pack(len(payload), int(ftype)) + payload


def frame_parts(ftype: FrameType, payload=b"") -> Tuple[bytes, "bytes | memoryview"]:
    """One frame as ``(header, payload)`` for gather I/O.

    The zero-copy send primitive: the caller hands both pieces to
    ``socket.sendmsg`` / ``writer.writelines`` so header and payload reach
    the kernel without ever being concatenated into a fresh buffer.  The
    payload may be any bytes-like object (``memoryview`` slices included).
    """
    length = len(payload)
    if length > MAX_PAYLOAD:
        raise ProtocolError(f"frame payload of {length} B exceeds {MAX_PAYLOAD} B")
    return _HEADER.pack(length, int(ftype)), payload


def encode_data_header(length: int) -> bytes:
    """Just the header of a CHUNK_DATA frame whose body follows separately.

    Lets a sender scatter one logical data frame out of many buffers
    (``writer.writelines([header, *blobs])``) or stream the body straight
    off disk (``os.sendfile``) without assembling it in user space.
    """
    if length > MAX_PAYLOAD:
        raise ProtocolError(f"frame payload of {length} B exceeds {MAX_PAYLOAD} B")
    return _HEADER.pack(length, int(FrameType.CHUNK_DATA))


def encode_json(ftype: FrameType, obj: dict) -> bytes:
    """Serialise a control frame with a JSON payload."""
    return encode_frame(ftype, json.dumps(obj, separators=(",", ":")).encode("utf-8"))


def encode_data(payload: bytes) -> bytes:
    """Serialise one raw CHUNK_DATA frame."""
    return encode_frame(FrameType.CHUNK_DATA, payload)


def encode_error(exc: BaseException) -> bytes:
    """Serialise an exception as an ERROR frame (class name + message).

    Non-:class:`ReproError` exceptions degrade to ``RemoteError`` on the
    other side — internal failure classes are not part of the wire contract.
    """
    name = type(exc).__name__ if isinstance(exc, ReproError) else "RemoteError"
    return encode_json(FrameType.ERROR, {"error": name, "message": str(exc)})


def hello_frame() -> bytes:
    """The handshake frame either side opens with (magic + version)."""
    return encode_json(FrameType.HELLO, {"magic": MAGIC, "version": PROTOCOL_VERSION})


# ----------------------------------------------------------------------
# Decoding
# ----------------------------------------------------------------------
def decode_header(header: bytes) -> Tuple[int, FrameType]:
    """Parse + validate one frame header; returns (payload length, type)."""
    length, raw_type = _HEADER.unpack(header)
    if length > MAX_PAYLOAD:
        raise ProtocolError(f"frame announces {length} B payload (max {MAX_PAYLOAD})")
    try:
        return length, FrameType(raw_type)
    except ValueError:
        raise ProtocolError(f"unknown frame type {raw_type}") from None


def decode_json(payload) -> dict:
    """Parse a control payload, mapping malformed input to ProtocolError.

    Accepts any bytes-like object (``memoryview`` slices from the
    zero-copy decoder included) — JSON parsing copies anyway, so this is
    the natural place buffers become objects.
    """
    try:
        obj = json.loads(bytes(payload).decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"malformed control payload: {exc}") from exc
    if not isinstance(obj, dict):
        raise ProtocolError("control payload must be a JSON object")
    return obj


def raise_remote_error(payload: bytes) -> None:
    """Re-raise the exception an ERROR frame carries, by taxonomy class."""
    obj = decode_json(payload)
    cls = error_by_name(str(obj.get("error", "RemoteError")))
    raise cls(str(obj.get("message", "remote operation failed")))


class FrameDecoder:
    """Incremental zero-copy frame decoder over an untrusted byte stream.

    Feed it arbitrarily sliced network reads; it yields complete
    ``(FrameType, payload)`` pairs and raises :class:`ProtocolError` on
    garbage (unknown type, oversized payload).  Sans-I/O: usable from the
    blocking client, the asyncio server, and tests alike.

    Received buffers are kept as a list of :class:`memoryview`\\ s over the
    immutable ``bytes`` the socket handed us — ``CHUNK_DATA`` payloads
    landing inside one read come back as a *slice of the receive buffer*,
    never a copy (the dominant case: a restore's 256 KiB data frames vs
    the default 256 KiB socket reads).  Only frames straddling a read
    boundary pay one reassembly copy.  Control payloads are returned as
    ``bytes`` — they are small, and JSON decoding copies regardless.
    """

    def __init__(self) -> None:
        self._chunks: List[memoryview] = []
        self._size = 0
        self._header: Optional[Tuple[int, FrameType]] = None

    @property
    def pending(self) -> int:
        """Bytes buffered but not yet forming a complete frame."""
        extra = HEADER_SIZE if self._header is not None else 0
        return self._size + extra

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered that do not yet form a complete frame."""
        return self.pending

    def feed(self, data: bytes) -> List[Tuple[FrameType, "bytes | memoryview"]]:
        """Add received bytes; return every frame completed by them."""
        if data:
            # bytes is immutable, so viewing (not copying) it is safe for
            # as long as any returned payload slice stays alive.
            self._chunks.append(memoryview(data))
            self._size += len(data)
        frames = []
        while True:
            frame = self._pop()
            if frame is None:
                return frames
            frames.append(frame)

    def _take(self, length: int) -> memoryview:
        """Consume exactly ``length`` buffered bytes (caller checked size).

        Zero-copy when the span lives inside the first chunk; a straddling
        span is reassembled once.
        """
        self._size -= length
        first = self._chunks[0]
        if len(first) >= length:
            if len(first) == length:
                self._chunks.pop(0)
            else:
                self._chunks[0] = first[length:]
            return first[:length]
        parts = bytearray()
        need = length
        while need:
            first = self._chunks[0]
            if len(first) <= need:
                parts += first
                need -= len(first)
                self._chunks.pop(0)
            else:
                parts += first[:need]
                self._chunks[0] = first[need:]
                need = 0
        return memoryview(bytes(parts))

    def _pop(self) -> Optional[Tuple[FrameType, "bytes | memoryview"]]:
        if self._header is None:
            if self._size < HEADER_SIZE:
                return None
            length, raw_type = _HEADER.unpack(self._take(HEADER_SIZE))
            if length > MAX_PAYLOAD:
                raise ProtocolError(
                    f"frame announces {length} B payload (max {MAX_PAYLOAD})"
                )
            try:
                self._header = (length, FrameType(raw_type))
            except ValueError:
                raise ProtocolError(f"unknown frame type {raw_type}") from None
        length, ftype = self._header
        if self._size < length:
            return None
        self._header = None
        if not length:
            return ftype, b""
        payload = self._take(length)
        if ftype == FrameType.CHUNK_DATA:
            return ftype, payload
        return ftype, bytes(payload)


def check_hello(payload: bytes) -> dict:
    """Validate a HELLO payload (magic + version); returns the object."""
    obj = decode_json(payload)
    if obj.get("magic") != MAGIC:
        raise ProtocolError("handshake failed: not a hidestore backup client")
    version = obj.get("version")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"protocol version mismatch: peer speaks {version!r}, "
            f"this side speaks {PROTOCOL_VERSION}"
        )
    return obj


def iter_data_blocks(blocks: "Iterator[bytes]", block_size: int = DATA_BLOCK) -> Iterator[bytes]:
    """Re-slice a byte-block stream into wire-friendly CHUNK_DATA payloads.

    Oversized source blocks are split into ``memoryview`` slices (no
    copies — the sender's gather I/O takes any bytes-like payload); tiny
    ones pass through unmerged (coalescing would add latency for no
    framing benefit).
    """
    for block in blocks:
        if len(block) <= block_size:
            if block:
                yield block
            continue
        view = memoryview(block)
        for offset in range(0, len(block), block_size):
            yield view[offset : offset + block_size]
