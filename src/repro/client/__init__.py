"""Client side of the networked backup service.

:mod:`repro.client.protocol` is the sans-network frame codec shared with
the server; :mod:`repro.client.remote` is the blocking client library
(:class:`RemoteRepository`) the CLI's ``--remote`` flag drives.
"""

from .protocol import (
    PROTOCOL_VERSION,
    FrameDecoder,
    FrameType,
    encode_data,
    encode_data_header,
    encode_error,
    encode_json,
    frame_parts,
    raise_remote_error,
)
from .remote import ConnectionPool, RemoteRepository

__all__ = [
    "PROTOCOL_VERSION",
    "ConnectionPool",
    "FrameDecoder",
    "FrameType",
    "RemoteRepository",
    "encode_data",
    "encode_data_header",
    "encode_error",
    "encode_json",
    "frame_parts",
    "raise_remote_error",
]
