"""Blocking client for the backup daemon (:mod:`repro.server`).

:class:`RemoteRepository` mirrors the surface of
:class:`repro.repository.LocalRepository` — ``backup_tree`` /
``backup_blocks`` / ``restore`` / ``versions`` / ``stats`` /
``delete_oldest`` — so the CLI's command implementations drive a tenant on
a remote daemon exactly like a local directory.

Reliability model:

* every socket operation runs under a per-request timeout
  (:class:`~repro.errors.TimeoutExceededError` when exceeded);
* **idempotent** requests (``stats``, ``versions``, opening a restore)
  retry transparently on connection failures with bounded exponential
  backoff; mutating requests (``backup``, ``delete_oldest``) never retry —
  the caller decides;
* connections are pooled and reused across requests; a connection that saw
  an error is discarded, never reused.
"""

from __future__ import annotations

import os
import socket
import threading
import time
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

from ..errors import ProtocolError, RemoteError, ReproError, TimeoutExceededError
from ..repository import FilePlan, stream_blocks
from .protocol import (
    FrameDecoder,
    FrameType,
    check_hello,
    decode_json,
    encode_data,
    encode_frame,
    encode_json,
    hello_frame,
    iter_data_blocks,
    raise_remote_error,
)

Address = Union[str, Tuple[str, int]]

#: Cap on one exponential-backoff sleep between retries.
_MAX_BACKOFF = 2.0

_RECV_SIZE = 256 * 1024


def parse_address(address: Address) -> Tuple[str, int]:
    """Accept ``(host, port)`` or ``"host:port"`` (IPv6 in brackets)."""
    if isinstance(address, tuple):
        return address
    text = address.strip()
    if text.startswith("["):  # [::1]:7777
        host, _, rest = text[1:].partition("]")
        if not rest.startswith(":"):
            raise ProtocolError(f"invalid server address {address!r}")
        return host, int(rest[1:])
    host, sep, port = text.rpartition(":")
    if not sep or not host:
        raise ProtocolError(f"invalid server address {address!r} (need HOST:PORT)")
    return host, int(port)


class Connection:
    """One handshaken socket + its frame decoder."""

    def __init__(self, address: Tuple[str, int], timeout: float) -> None:
        self.timeout = timeout
        try:
            self._sock = socket.create_connection(address, timeout=timeout)
        except socket.timeout as exc:
            raise TimeoutExceededError(f"connect to {address} timed out") from exc
        self._sock.settimeout(timeout)
        self._decoder = FrameDecoder()
        self._frames: List[Tuple[FrameType, bytes]] = []
        self.broken = False
        try:
            self.send(hello_frame())
            ftype, payload = self.recv_frame()
            if ftype == FrameType.ERROR:
                raise_remote_error(payload)
            if ftype != FrameType.HELLO_OK:
                raise ProtocolError(f"expected HELLO_OK, got {ftype.name}")
            check_hello(payload)
        except BaseException:
            self.close()
            raise

    # ------------------------------------------------------------------
    def send(self, data: bytes) -> None:
        try:
            self._sock.sendall(data)
        except socket.timeout as exc:
            self.broken = True
            raise TimeoutExceededError("send timed out") from exc
        except OSError:
            self.broken = True
            raise

    def recv_frame(self) -> Tuple[FrameType, bytes]:
        """Block for the next complete frame (per-operation timeout)."""
        while not self._frames:
            try:
                data = self._sock.recv(_RECV_SIZE)
            except socket.timeout as exc:
                self.broken = True
                raise TimeoutExceededError(
                    f"no response within {self.timeout:.1f}s"
                ) from exc
            except OSError:
                self.broken = True
                raise
            if not data:
                self.broken = True
                raise RemoteError("server closed the connection")
            self._frames.extend(self._decoder.feed(data))
        return self._frames.pop(0)

    def pending_error(self) -> Optional[bytes]:
        """Drain readable bytes without blocking; return an ERROR payload.

        Used when a send fails mid-stream: the server very likely reported
        *why* before closing, and that diagnosis beats ``BrokenPipeError``.
        """
        try:
            self._sock.settimeout(0.2)
            while True:
                data = self._sock.recv(_RECV_SIZE)
                if not data:
                    break
                self._frames.extend(self._decoder.feed(data))
        except (OSError, ProtocolError):
            pass
        for ftype, payload in self._frames:
            if ftype == FrameType.ERROR:
                return payload
        return None

    def close(self) -> None:
        self.broken = True
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - close is best-effort
            pass


class ConnectionPool:
    """A small cache of idle handshaken connections to one daemon."""

    def __init__(self, address: Tuple[str, int], timeout: float, size: int = 2) -> None:
        self.address = address
        self.timeout = timeout
        self.size = size
        self._idle: List[Connection] = []
        self._lock = threading.Lock()

    def acquire(self) -> Connection:
        with self._lock:
            if self._idle:
                return self._idle.pop()
        return Connection(self.address, self.timeout)

    def release(self, conn: Connection) -> None:
        """Return a connection; broken or surplus connections are closed."""
        if conn.broken:
            conn.close()
            return
        with self._lock:
            if len(self._idle) < self.size:
                self._idle.append(conn)
                return
        conn.close()

    def close(self) -> None:
        with self._lock:
            idle, self._idle = self._idle, []
        for conn in idle:
            conn.close()


class RemoteRepository:
    """A named tenant on a backup daemon, driven over the wire.

    Args:
        address: daemon address (``"host:port"`` or a tuple).
        repo: tenant (repository) name on the server.
        timeout: per-socket-operation deadline in seconds.
        retries: attempts for idempotent requests (1 = no retry).
        backoff: initial exponential-backoff delay between retries.
        pool_size: idle connections kept for reuse.
    """

    def __init__(
        self,
        address: Address,
        repo: str,
        timeout: float = 30.0,
        retries: int = 3,
        backoff: float = 0.1,
        pool_size: int = 2,
    ) -> None:
        self.repo = repo
        self.retries = max(1, retries)
        self.backoff = backoff
        self.pool = ConnectionPool(parse_address(address), timeout, pool_size)

    def close(self) -> None:
        self.pool.close()

    def __enter__(self) -> "RemoteRepository":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Request plumbing
    # ------------------------------------------------------------------
    def _with_retries(self, operation):
        """Run an idempotent operation with exponential-backoff retries."""
        last: Optional[BaseException] = None
        for attempt in range(self.retries):
            if attempt:
                time.sleep(min(self.backoff * (2 ** (attempt - 1)), _MAX_BACKOFF))
            try:
                return operation()
            except ReproError as exc:
                if isinstance(exc, (TimeoutExceededError, ProtocolError)):
                    last = exc  # transport trouble: worth another attempt
                    continue
                raise  # the server answered; retrying cannot change it
            except OSError as exc:
                last = exc
                continue
        if isinstance(last, ReproError):
            raise last
        raise RemoteError(f"request failed after {self.retries} attempts: {last}") from last

    def _simple_request(self, request: bytes, expect: FrameType) -> dict:
        conn = self.pool.acquire()
        try:
            conn.send(request)
            ftype, payload = conn.recv_frame()
            if ftype == FrameType.ERROR:
                raise_remote_error(payload)
            if ftype != expect:
                raise ProtocolError(f"expected {expect.name}, got {ftype.name}")
            return decode_json(payload)
        except BaseException:
            conn.close()
            raise
        finally:
            self.pool.release(conn)

    # ------------------------------------------------------------------
    # Backup (mutating — never retried)
    # ------------------------------------------------------------------
    def backup_tree(self, entries: List[Tuple[str, str]], tag: str = "") -> Dict:
        """Stream files from disk ((rel, path) rows) to the daemon."""
        plan: FilePlan = [(rel, os.path.getsize(path)) for rel, path in entries]
        return self.backup_blocks(stream_blocks(entries), plan, tag)

    def backup_blocks(self, blocks: Iterable[bytes], plan: FilePlan, tag: str = "") -> Dict:
        """Stream one version's bytes under the server's credit window."""
        conn = self.pool.acquire()
        try:
            begin = {
                "repo": self.repo,
                "tag": tag or "",
                "files": [[rel, size] for rel, size in plan],
            }
            conn.send(encode_json(FrameType.BACKUP_BEGIN, begin))
            credits = 0
            for block in iter_data_blocks(iter(blocks)):
                while credits <= 0:
                    credits += self._await_credit(conn)
                try:
                    conn.send(encode_data(block))
                except OSError as exc:
                    error = conn.pending_error()
                    if error is not None:
                        raise_remote_error(error)
                    raise RemoteError(f"connection lost mid-backup: {exc}") from exc
                credits -= 1
            conn.send(encode_frame(FrameType.BACKUP_END))
            while True:
                ftype, payload = conn.recv_frame()
                if ftype == FrameType.CREDIT:
                    continue
                if ftype == FrameType.ERROR:
                    raise_remote_error(payload)
                if ftype != FrameType.BACKUP_DONE:
                    raise ProtocolError(f"expected BACKUP_DONE, got {ftype.name}")
                return decode_json(payload)
        except BaseException:
            conn.close()
            raise
        finally:
            self.pool.release(conn)

    @staticmethod
    def _await_credit(conn: Connection) -> int:
        ftype, payload = conn.recv_frame()
        if ftype == FrameType.ERROR:
            raise_remote_error(payload)
        if ftype != FrameType.CREDIT:
            raise ProtocolError(f"expected CREDIT, got {ftype.name}")
        frames = decode_json(payload).get("frames", 0)
        if not isinstance(frames, int) or frames <= 0:
            raise ProtocolError("CREDIT must grant a positive frame count")
        return frames

    # ------------------------------------------------------------------
    # Restore (idempotent to open; streaming once opened)
    # ------------------------------------------------------------------
    def restore(self, version_id: int) -> Tuple[FilePlan, Iterator[bytes]]:
        """A version's file plan plus its reassembled byte stream."""

        def begin() -> Tuple[Connection, dict]:
            conn = self.pool.acquire()
            try:
                conn.send(
                    encode_json(
                        FrameType.RESTORE_BEGIN,
                        {"repo": self.repo, "version": version_id},
                    )
                )
                ftype, payload = conn.recv_frame()
                if ftype == FrameType.ERROR:
                    raise_remote_error(payload)
                if ftype != FrameType.RESTORE_META:
                    raise ProtocolError(f"expected RESTORE_META, got {ftype.name}")
                return conn, decode_json(payload)
            except BaseException:
                conn.close()
                self.pool.release(conn)
                raise

        conn, meta = self._with_retries(begin)
        plan: FilePlan = [(rel, size) for rel, size in meta.get("files", [])]

        def data() -> Iterator[bytes]:
            try:
                while True:
                    ftype, payload = conn.recv_frame()
                    if ftype == FrameType.CHUNK_DATA:
                        yield payload
                    elif ftype == FrameType.RESTORE_END:
                        return
                    elif ftype == FrameType.ERROR:
                        raise_remote_error(payload)
                    else:
                        raise ProtocolError(f"unexpected {ftype.name} during restore")
            except BaseException:
                conn.close()
                raise
            finally:
                self.pool.release(conn)

        return plan, data()

    # ------------------------------------------------------------------
    # Idempotent control requests (retried)
    # ------------------------------------------------------------------
    def versions(self) -> List[Dict]:
        reply = self._with_retries(
            lambda: self._simple_request(
                encode_json(FrameType.VERSIONS, {"repo": self.repo}),
                FrameType.VERSIONS_OK,
            )
        )
        return list(reply.get("versions", []))

    def stats(self) -> Dict:
        return self._with_retries(
            lambda: self._simple_request(
                encode_json(FrameType.STATS, {"repo": self.repo}), FrameType.STATS_OK
            )
        )

    def server_stats(self) -> Dict:
        """Daemon-wide counters (every repo + service totals)."""
        return self._with_retries(
            lambda: self._simple_request(
                encode_json(FrameType.STATS, {"repo": None}), FrameType.STATS_OK
            )
        )

    # ------------------------------------------------------------------
    # Deletion (mutating — never retried)
    # ------------------------------------------------------------------
    def delete_oldest(self) -> Dict:
        return self._simple_request(
            encode_json(FrameType.DELETE_OLDEST, {"repo": self.repo}),
            FrameType.DELETE_OK,
        )
