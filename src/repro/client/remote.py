"""Blocking client for the backup daemon (:mod:`repro.server`).

:class:`RemoteRepository` mirrors the surface of
:class:`repro.repository.LocalRepository` — ``backup_tree`` /
``backup_blocks`` / ``restore`` / ``versions`` / ``stats`` /
``delete_oldest`` — so the CLI's command implementations drive a tenant on
a remote daemon exactly like a local directory.

Reliability model:

* every socket operation runs under a per-request timeout
  (:class:`~repro.errors.TimeoutExceededError` when exceeded);
* **idempotent** requests (``stats``, ``versions``, opening a restore)
  retry transparently on connection failures with bounded exponential
  backoff; mutating requests (``backup``, ``delete_oldest``) never retry —
  the caller decides;
* connections are pooled and reused across requests; a connection that saw
  an error is discarded, never reused.
"""

from __future__ import annotations

import os
import socket
import threading
import time
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

from ..errors import (
    ProtocolError,
    RemoteError,
    ReproError,
    RetryBudgetExceededError,
    TimeoutExceededError,
)
from ..observability import EventLogger, MetricsRegistry, get_registry, new_trace_id
from ..repository import FilePlan, stream_blocks
from .protocol import (
    DATA_BLOCK,
    FrameDecoder,
    FrameType,
    check_hello,
    decode_json,
    encode_frame,
    encode_json,
    frame_parts,
    hello_frame,
    iter_data_blocks,
    raise_remote_error,
)

Address = Union[str, Tuple[str, int]]

#: Cap on one exponential-backoff sleep between retries.
_MAX_BACKOFF = 2.0

_RECV_SIZE = 256 * 1024


def _valid_port(value: object, address: Address) -> int:
    try:
        port = int(value)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        raise ProtocolError(f"invalid server address {address!r}: bad port {value!r}") from None
    if not 0 <= port <= 65535:
        raise ProtocolError(f"invalid server address {address!r}: port {port} out of range")
    return port


def parse_address(address: Address) -> Tuple[str, int]:
    """Accept ``(host, port)`` or ``"host:port"`` (IPv6 in brackets)."""
    if isinstance(address, tuple):
        if len(address) != 2 or not address[0]:
            raise ProtocolError(f"invalid server address {address!r} (need (host, port))")
        return str(address[0]), _valid_port(address[1], address)
    text = address.strip()
    if text.startswith("["):  # [::1]:7777
        host, _, rest = text[1:].partition("]")
        if not rest.startswith(":"):
            raise ProtocolError(f"invalid server address {address!r}")
        return host, _valid_port(rest[1:], address)
    host, sep, port = text.rpartition(":")
    if not sep or not host:
        raise ProtocolError(f"invalid server address {address!r} (need HOST:PORT)")
    return host, _valid_port(port, address)


class Connection:
    """One handshaken socket + its frame decoder."""

    def __init__(self, address: Tuple[str, int], timeout: float) -> None:
        self.timeout = timeout
        try:
            self._sock = socket.create_connection(address, timeout=timeout)
        except socket.timeout as exc:
            raise TimeoutExceededError(f"connect to {address} timed out") from exc
        self._sock.settimeout(timeout)
        self._decoder = FrameDecoder()
        self._frames: List[Tuple[FrameType, bytes]] = []
        self.broken = False
        self.trace = ""
        self.seq = 0
        try:
            self.send(hello_frame())
            ftype, payload = self.recv_frame()
            if ftype == FrameType.ERROR:
                raise_remote_error(payload)
            if ftype != FrameType.HELLO_OK:
                raise ProtocolError(f"expected HELLO_OK, got {ftype.name}")
            hello = check_hello(payload)
            # The server's session trace ID: both sides derive identical
            # "<session>.<seq>" request IDs from it for log correlation.
            trace = hello.get("trace")
            self.trace = trace if isinstance(trace, str) else ""
        except BaseException:
            self.close()
            raise

    def next_trace(self) -> str:
        """The per-request trace ID for the next request on this connection."""
        self.seq += 1
        if self.trace:
            return f"{self.trace}.{self.seq}"
        return new_trace_id()  # pre-observability server: still tag our logs

    # ------------------------------------------------------------------
    def send(self, data: bytes) -> None:
        try:
            self._sock.sendall(data)
        except socket.timeout as exc:
            self.broken = True
            raise TimeoutExceededError("send timed out") from exc
        except OSError:
            self.broken = True
            raise

    def send_parts(self, parts) -> None:
        """Gather-send several buffers as one wire write (zero concat).

        The frame header and its payload go to ``socket.sendmsg`` as
        separate buffers — the kernel scatters them onto the wire without
        this side ever joining them.  Short writes resume from the exact
        byte the kernel accepted; platforms without ``sendmsg`` fall back
        to ``sendall`` per buffer (still no concatenation).
        """
        try:
            sendmsg = self._sock.sendmsg
        except AttributeError:  # pragma: no cover - exotic platform
            for part in parts:
                self.send(part)
            return
        views = [memoryview(part).cast("B") for part in parts if len(part)]
        try:
            while views:
                sent = sendmsg(views)
                while views and sent >= len(views[0]):
                    sent -= len(views[0])
                    views.pop(0)
                if sent and views:
                    views[0] = views[0][sent:]
        except socket.timeout as exc:
            self.broken = True
            raise TimeoutExceededError("send timed out") from exc
        except OSError:
            self.broken = True
            raise

    def recv_frame(self) -> Tuple[FrameType, bytes]:
        """Block for the next complete frame (per-operation timeout)."""
        while not self._frames:
            try:
                data = self._sock.recv(_RECV_SIZE)
            except socket.timeout as exc:
                self.broken = True
                raise TimeoutExceededError(
                    f"no response within {self.timeout:.1f}s"
                ) from exc
            except OSError:
                self.broken = True
                raise
            if not data:
                self.broken = True
                raise RemoteError("server closed the connection")
            self._frames.extend(self._decoder.feed(data))
        return self._frames.pop(0)

    def pending_error(self) -> Optional[bytes]:
        """Drain readable bytes without blocking; return an ERROR payload.

        Used when a send fails mid-stream: the server very likely reported
        *why* before closing, and that diagnosis beats ``BrokenPipeError``.
        """
        try:
            self._sock.settimeout(0.2)
            while True:
                data = self._sock.recv(_RECV_SIZE)
                if not data:
                    break
                self._frames.extend(self._decoder.feed(data))
        except (OSError, ProtocolError):
            pass
        for ftype, payload in self._frames:
            if ftype == FrameType.ERROR:
                return payload
        return None

    def has_buffered(self) -> bool:
        """True if undrained frames/bytes remain from the last exchange."""
        return bool(self._frames) or self._decoder.pending > 0

    def sweep(self) -> None:
        """Pull any bytes already sitting in the kernel buffer, without blocking.

        Makes :meth:`has_buffered` authoritative before pool reuse: a stale
        frame the server wrote after our last read (e.g. a late CREDIT)
        becomes visible instead of poisoning the next request.
        """
        try:
            self._sock.settimeout(0.0)
            while True:
                data = self._sock.recv(_RECV_SIZE)
                if not data:
                    self.broken = True
                    return
                self._frames.extend(self._decoder.feed(data))
        except (BlockingIOError, socket.timeout):
            pass
        except (OSError, ProtocolError):
            self.broken = True
        finally:
            try:
                self._sock.settimeout(self.timeout)
            except OSError:
                self.broken = True

    def close(self) -> None:
        self.broken = True
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - close is best-effort
            pass


class ConnectionPool:
    """A small cache of idle handshaken connections to one daemon."""

    def __init__(
        self,
        address: Tuple[str, int],
        timeout: float,
        size: int = 2,
        metrics: Optional[MetricsRegistry] = None,
        events: Optional[EventLogger] = None,
    ) -> None:
        self.address = address
        self.timeout = timeout
        self.size = size
        self.metrics = metrics if metrics is not None else get_registry()
        self.events = events if events is not None else EventLogger()
        self._idle: List[Connection] = []
        self._lock = threading.Lock()

    def acquire(self) -> Connection:
        while True:
            with self._lock:
                if not self._idle:
                    break
                conn = self._idle.pop()
            # Drain-verify before reuse: a connection carrying leftover
            # frames (stale CREDIT after BACKUP_DONE) would answer the next
            # request with the wrong frame.  Discard, never repair.
            conn.sweep()
            if conn.broken or conn.has_buffered():
                self.metrics.inc("client.pooled_discards_total")
                conn.close()
                continue
            return conn
        started = time.perf_counter()
        conn = Connection(self.address, self.timeout)
        elapsed = time.perf_counter() - started
        self.metrics.observe("client.connect_seconds", elapsed)
        self.events.log(
            "client_connect",
            trace=conn.trace or None,
            address=f"{self.address[0]}:{self.address[1]}",
            duration_ms=round(elapsed * 1000, 3),
        )
        return conn

    def release(self, conn: Connection) -> None:
        """Return a connection; broken, dirty or surplus connections are closed."""
        if conn.broken or conn.has_buffered():
            if conn.has_buffered() and not conn.broken:
                self.metrics.inc("client.pooled_discards_total")
            conn.close()
            return
        with self._lock:
            if len(self._idle) < self.size:
                self._idle.append(conn)
                return
        conn.close()

    def close(self) -> None:
        with self._lock:
            idle, self._idle = self._idle, []
        for conn in idle:
            conn.close()


class RemoteRepository:
    """A named tenant on a backup daemon, driven over the wire.

    Args:
        address: daemon address (``"host:port"`` or a tuple).
        repo: tenant (repository) name on the server.
        timeout: per-socket-operation deadline in seconds.
        retries: attempts for idempotent requests (1 = no retry).
        backoff: initial exponential-backoff delay between retries.
        retry_budget_seconds: total wall-clock one operation may spend
            across all its attempts and backoff sleeps (0 = unlimited).
            Exhaustion raises
            :class:`~repro.errors.RetryBudgetExceededError` and counts
            ``client.retry_budget_exhausted`` — ``retries`` bounds the
            attempts, this bounds the time, so a flapping daemon cannot
            absorb unbounded client retry spend.
        pool_size: idle connections kept for reuse.
        event_log: structured event sink for client-side spans (connect,
            credit stalls, retries); defaults to the no-op logger.
        metrics: registry for client-side latency histograms (defaults to
            the process registry).
        pool: an externally owned :class:`ConnectionPool` to use instead
            of creating one — the cluster router shares one pool per
            daemon address across every tenant it routes there; a shared
            pool is *not* closed by :meth:`close`.
    """

    def __init__(
        self,
        address: Address,
        repo: str,
        timeout: float = 30.0,
        retries: int = 3,
        backoff: float = 0.1,
        pool_size: int = 2,
        event_log: Optional[EventLogger] = None,
        metrics: Optional[MetricsRegistry] = None,
        pool: Optional[ConnectionPool] = None,
        retry_budget_seconds: float = 0.0,
    ) -> None:
        self.repo = repo
        self.retries = max(1, retries)
        self.backoff = backoff
        self.retry_budget_seconds = max(0.0, retry_budget_seconds)
        self.events = event_log if event_log is not None else EventLogger()
        self.metrics = metrics if metrics is not None else get_registry()
        self._owns_pool = pool is None
        self.pool = pool if pool is not None else ConnectionPool(
            parse_address(address), timeout, pool_size,
            metrics=self.metrics, events=self.events,
        )

    def close(self) -> None:
        if self._owns_pool:
            self.pool.close()

    def __enter__(self) -> "RemoteRepository":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Request plumbing
    # ------------------------------------------------------------------
    def _with_retries(self, operation):
        """Run an idempotent operation under its retry budget.

        Two independent bounds: ``retries`` caps the attempts, and
        ``retry_budget_seconds`` caps the total wall-clock the operation
        may consume (attempts + backoff sleeps).  Whichever runs out
        first ends the operation; budget exhaustion raises the typed
        :class:`RetryBudgetExceededError` so callers (and the cluster
        router's failover logic) can distinguish "out of patience" from
        "the server said no".
        """
        deadline = (
            time.monotonic() + self.retry_budget_seconds
            if self.retry_budget_seconds > 0
            else None
        )
        last: Optional[BaseException] = None
        for attempt in range(self.retries):
            if attempt:
                sleep = min(self.backoff * (2 ** (attempt - 1)), _MAX_BACKOFF)
                if deadline is not None and time.monotonic() + sleep >= deadline:
                    break  # sleeping would overrun the budget: stop now
                self.metrics.inc("client.retries_total")
                self.events.log(
                    "client_retry",
                    attempt=attempt + 1,
                    sleep_s=round(sleep, 3),
                    error=type(last).__name__ if last is not None else None,
                )
                time.sleep(sleep)
            try:
                return operation()
            except ReproError as exc:
                if isinstance(exc, (TimeoutExceededError, ProtocolError)):
                    last = exc  # transport trouble: worth another attempt
                    continue
                raise  # the server answered; retrying cannot change it
            except OSError as exc:
                last = exc
                continue
        else:
            # Attempts ran out (no budget break): the historical outcome.
            if isinstance(last, ReproError):
                raise last
            raise RemoteError(
                f"request failed after {self.retries} attempts: {last}"
            ) from last
        self.metrics.inc("client.retry_budget_exhausted")
        self.events.log(
            "client_retry_budget_exhausted",
            budget_s=self.retry_budget_seconds,
            error=type(last).__name__ if last is not None else None,
        )
        raise RetryBudgetExceededError(
            f"retry budget of {self.retry_budget_seconds:.1f}s exhausted: {last}"
        ) from last

    def _simple_request(self, ftype: FrameType, obj: dict, expect: FrameType, kind: str) -> dict:
        conn = self.pool.acquire()
        trace = conn.next_trace()
        started = time.perf_counter()
        try:
            conn.send(encode_json(ftype, dict(obj, trace=trace)))
            reply_type, payload = conn.recv_frame()
            if reply_type == FrameType.ERROR:
                raise_remote_error(payload)
            if reply_type != expect:
                raise ProtocolError(f"expected {expect.name}, got {reply_type.name}")
            reply = decode_json(payload)
        except BaseException as exc:
            conn.close()
            self.events.log(
                f"client_{kind}_error",
                trace=trace,
                repo=obj.get("repo"),
                duration_ms=round((time.perf_counter() - started) * 1000, 3),
                error=type(exc).__name__,
                message=str(exc),
            )
            raise
        finally:
            self.pool.release(conn)
        elapsed = time.perf_counter() - started
        self.metrics.observe(f"client.{kind}_seconds", elapsed)
        self.events.log(
            f"client_{kind}_end",
            trace=trace,
            repo=obj.get("repo"),
            duration_ms=round(elapsed * 1000, 3),
        )
        return reply

    # ------------------------------------------------------------------
    # Backup (mutating — never retried)
    # ------------------------------------------------------------------
    def backup_tree(self, entries: List[Tuple[str, str]], tag: str = "") -> Dict:
        """Stream files from disk ((rel, path) rows) to the daemon."""
        plan: FilePlan = [(rel, os.path.getsize(path)) for rel, path in entries]
        return self.backup_blocks(stream_blocks(entries), plan, tag)

    def backup_blocks(self, blocks: Iterable[bytes], plan: FilePlan, tag: str = "") -> Dict:
        """Stream one version's bytes under the server's credit window."""
        conn = self.pool.acquire()
        trace = conn.next_trace()
        self.events.log(
            "client_backup_begin", trace=trace, repo=self.repo, files=len(plan)
        )
        started = time.perf_counter()
        try:
            begin = {
                "repo": self.repo,
                "tag": tag or "",
                "files": [[rel, size] for rel, size in plan],
                "trace": trace,
            }
            conn.send(encode_json(FrameType.BACKUP_BEGIN, begin))
            credits = 0
            for block in iter_data_blocks(iter(blocks)):
                while credits <= 0:
                    credits += self._await_credit(conn, trace)
                try:
                    conn.send_parts(frame_parts(FrameType.CHUNK_DATA, block))
                except OSError as exc:
                    error = conn.pending_error()
                    if error is not None:
                        raise_remote_error(error)
                    raise RemoteError(f"connection lost mid-backup: {exc}") from exc
                credits -= 1
            conn.send(encode_frame(FrameType.BACKUP_END))
            while True:
                ftype, payload = conn.recv_frame()
                if ftype == FrameType.CREDIT:
                    continue
                if ftype == FrameType.ERROR:
                    raise_remote_error(payload)
                if ftype != FrameType.BACKUP_DONE:
                    raise ProtocolError(f"expected BACKUP_DONE, got {ftype.name}")
                report = decode_json(payload)
                break
        except BaseException as exc:
            conn.close()
            self.events.log(
                "client_backup_error",
                trace=trace,
                repo=self.repo,
                duration_ms=round((time.perf_counter() - started) * 1000, 3),
                error=type(exc).__name__,
                message=str(exc),
            )
            raise
        finally:
            self.pool.release(conn)
        elapsed = time.perf_counter() - started
        self.metrics.observe("client.backup_seconds", elapsed)
        self.events.log(
            "client_backup_end",
            trace=trace,
            repo=self.repo,
            duration_ms=round(elapsed * 1000, 3),
        )
        return report

    def _await_credit(self, conn: Connection, trace: str) -> int:
        started = time.perf_counter()
        ftype, payload = conn.recv_frame()
        stalled = time.perf_counter() - started
        self.metrics.observe("client.credit_stall_seconds", stalled)
        if stalled >= 0.001:  # only log stalls worth reading about
            self.events.log(
                "client_credit_stall",
                trace=trace,
                repo=self.repo,
                duration_ms=round(stalled * 1000, 3),
            )
        if ftype == FrameType.ERROR:
            raise_remote_error(payload)
        if ftype != FrameType.CREDIT:
            raise ProtocolError(f"expected CREDIT, got {ftype.name}")
        frames = decode_json(payload).get("frames", 0)
        if not isinstance(frames, int) or frames <= 0:
            raise ProtocolError("CREDIT must grant a positive frame count")
        return frames

    # ------------------------------------------------------------------
    # Restore (idempotent to open; streaming once opened)
    # ------------------------------------------------------------------
    def restore(
        self,
        version_id: int,
        *,
        workers: Optional[int] = None,
        readahead: Optional[int] = None,
        verify: bool = False,
        file: Optional[str] = None,
    ) -> Tuple[FilePlan, Iterator[bytes]]:
        """A version's file plan plus its reassembled byte stream.

        The keyword knobs mirror :meth:`LocalRepository.restore` and ride in
        the ``RESTORE_BEGIN`` payload: ``workers``/``readahead`` size the
        server's prefetching container-reader pool (the daemon clamps to its
        own cap), ``verify`` re-hashes chunks server-side before they hit
        the wire, ``file`` restores a single manifest-relative file.  Old
        servers ignore unknown payload keys, so every combination degrades
        to a plain serial full restore.
        """

        def begin() -> Tuple[Connection, str, dict]:
            conn = self.pool.acquire()
            trace = conn.next_trace()
            request = {"repo": self.repo, "version": version_id, "trace": trace}
            if workers is not None:
                request["workers"] = int(workers)
            if readahead is not None:
                request["readahead"] = int(readahead)
            if verify:
                request["verify"] = True
            if file is not None:
                request["file"] = file
            try:
                conn.send(encode_json(FrameType.RESTORE_BEGIN, request))
                ftype, payload = conn.recv_frame()
                if ftype == FrameType.ERROR:
                    raise_remote_error(payload)
                if ftype != FrameType.RESTORE_META:
                    raise ProtocolError(f"expected RESTORE_META, got {ftype.name}")
                return conn, trace, decode_json(payload)
            except BaseException:
                conn.close()
                self.pool.release(conn)
                raise

        started = time.perf_counter()
        conn, trace, meta = self._with_retries(begin)
        plan: FilePlan = [(rel, size) for rel, size in meta.get("files", [])]
        self.events.log(
            "client_restore_begin",
            trace=trace,
            repo=self.repo,
            version=version_id,
            files=len(plan),
        )

        def data() -> Iterator[bytes]:
            received = 0
            try:
                while True:
                    ftype, payload = conn.recv_frame()
                    if ftype == FrameType.CHUNK_DATA:
                        received += len(payload)
                        yield payload
                    elif ftype == FrameType.RESTORE_END:
                        elapsed = time.perf_counter() - started
                        self.metrics.observe("client.restore_seconds", elapsed)
                        self.events.log(
                            "client_restore_end",
                            trace=trace,
                            repo=self.repo,
                            version=version_id,
                            bytes=received,
                            duration_ms=round(elapsed * 1000, 3),
                        )
                        return
                    elif ftype == FrameType.ERROR:
                        raise_remote_error(payload)
                    else:
                        raise ProtocolError(f"unexpected {ftype.name} during restore")
            except BaseException as exc:
                conn.close()
                self.events.log(
                    "client_restore_error",
                    trace=trace,
                    repo=self.repo,
                    version=version_id,
                    duration_ms=round((time.perf_counter() - started) * 1000, 3),
                    error=type(exc).__name__,
                    message=str(exc),
                )
                raise
            finally:
                self.pool.release(conn)

        return plan, data()

    # ------------------------------------------------------------------
    # Idempotent control requests (retried)
    # ------------------------------------------------------------------
    def versions(self) -> List[Dict]:
        reply = self._with_retries(
            lambda: self._simple_request(
                FrameType.VERSIONS, {"repo": self.repo}, FrameType.VERSIONS_OK, "versions"
            )
        )
        return list(reply.get("versions", []))

    def stats(self) -> Dict:
        return self._with_retries(
            lambda: self._simple_request(
                FrameType.STATS, {"repo": self.repo}, FrameType.STATS_OK, "stats"
            )
        )

    def server_stats(self) -> Dict:
        """Daemon-wide counters (every repo + service totals)."""
        return self._with_retries(
            lambda: self._simple_request(
                FrameType.STATS, {"repo": None}, FrameType.STATS_OK, "stats"
            )
        )

    def verify(self, deep: bool = False) -> Dict:
        """Server-side integrity verification of this tenant.

        Returns the report document (``ok``, ``versions_checked``,
        ``entries_checked``, ``issues``, ``summary``).  ``deep`` re-hashes
        every stored chunk payload and container file on the server.
        """
        return self._with_retries(
            lambda: self._simple_request(
                FrameType.VERIFY,
                {"repo": self.repo, "deep": bool(deep)},
                FrameType.VERIFY_OK,
                "verify",
            )
        )

    # ------------------------------------------------------------------
    # Cluster control plane
    # ------------------------------------------------------------------
    def cluster_map(self, offer: Optional[Dict] = None) -> Dict:
        """The daemon's cluster view: ``{"map": doc|None, "node": name|None}``.

        Pure read, retried.  A daemon running outside any cluster answers
        with ``map: null`` — callers treat that as "not clustered", not as
        an error.

        ``offer`` piggybacks gossip on the request: a clustered peer that
        attaches its own map document lets the receiving daemon adopt it
        if (and only if) it carries a strictly higher epoch.  This is how
        health probes double as map propagation — a promotion minted
        anywhere reaches every daemon the prober touches, and a rejoining
        stale daemon learns the newer epoch from its first probe.  The
        reply always carries the receiver's (possibly just-updated) map.
        """
        payload: Dict = {"repo": None}
        if offer is not None:
            payload["map"] = offer
        return self._with_retries(
            lambda: self._simple_request(
                FrameType.CLUSTER_MAP, payload, FrameType.CLUSTER_MAP_OK,
                "cluster_map",
            )
        )

    def cluster_sync(self, repo: Optional[str] = None) -> Dict:
        """Ask the daemon to replicate its primary-owned tenants to their
        ring successors (one tenant when ``repo`` is given, else all).

        Retried: each underlying sync is an idempotent O(delta) replication
        — re-running a completed sync ships nothing.
        """
        return self._with_retries(
            lambda: self._simple_request(
                FrameType.CLUSTER_SYNC, {"repo": repo}, FrameType.CLUSTER_SYNC_OK,
                "cluster_sync",
            )
        )

    def drop_tenant(self) -> Dict:
        """Remove this tenant's storage from the daemon (mutating — never
        retried).  Rebalance cleanup: send only after the tenant's new
        primary deep-verified its copy."""
        return self._simple_request(
            FrameType.TENANT_DROP, {"repo": self.repo}, FrameType.TENANT_DROP_OK,
            "tenant_drop",
        )

    # ------------------------------------------------------------------
    # Replication (idempotent by construction — retried)
    # ------------------------------------------------------------------
    # Every replication request is safe to retry: STATE and FETCH are pure
    # reads, PUT lands a content-addressed blob atomically (a resend
    # overwrites with identical bytes), and COMMIT's rename/delete lists
    # replay as no-ops on the server.

    def replicate_state(self) -> Dict:
        """The mirror tenant's replicable state + physical identity."""
        return self._with_retries(
            lambda: self._simple_request(
                FrameType.REPLICATE_STATE,
                {"repo": self.repo},
                FrameType.REPLICATE_STATE_OK,
                "replicate_state",
            )
        )

    def replicate_put(
        self, kind: str, name: str, blob: bytes, digest: str, staged: bool = False
    ) -> Dict:
        """Ship one repository object; the server validates size + digest."""

        def op() -> Dict:
            conn = self.pool.acquire()
            trace = conn.next_trace()
            try:
                header = {
                    "repo": self.repo,
                    "kind": kind,
                    "name": name,
                    "size": len(blob),
                    "digest": digest,
                    "staged": bool(staged),
                    "trace": trace,
                }
                conn.send(encode_json(FrameType.REPLICATE_PUT, header))
                view = memoryview(blob)
                for offset in range(0, len(blob), DATA_BLOCK):
                    try:
                        conn.send_parts(
                            frame_parts(
                                FrameType.CHUNK_DATA,
                                view[offset : offset + DATA_BLOCK],
                            )
                        )
                    except OSError as exc:
                        error = conn.pending_error()
                        if error is not None:
                            raise_remote_error(error)
                        raise RemoteError(f"connection lost mid-put: {exc}") from exc
                ftype, payload = conn.recv_frame()
                if ftype == FrameType.ERROR:
                    raise_remote_error(payload)
                if ftype != FrameType.REPLICATE_PUT_OK:
                    raise ProtocolError(f"expected REPLICATE_PUT_OK, got {ftype.name}")
                return decode_json(payload)
            except BaseException:
                conn.close()
                raise
            finally:
                self.pool.release(conn)

        started = time.perf_counter()
        reply = self._with_retries(op)
        self.metrics.observe("client.replicate_put_seconds", time.perf_counter() - started)
        self.metrics.inc("client.replicate_put_bytes", len(blob))
        return reply

    def replicate_commit(self, renames: List[List[str]], deletes: List[List[str]]) -> Dict:
        """Flip staged objects live and apply deletions on the mirror."""
        return self._with_retries(
            lambda: self._simple_request(
                FrameType.REPLICATE_COMMIT,
                {"repo": self.repo, "renames": renames, "deletes": deletes},
                FrameType.REPLICATE_COMMIT_OK,
                "replicate_commit",
            )
        )

    def replicate_fetch(self, kind: str, name: str) -> bytes:
        """Read one repository object back from the mirror (repair path)."""

        def op() -> bytes:
            conn = self.pool.acquire()
            trace = conn.next_trace()
            try:
                conn.send(
                    encode_json(
                        FrameType.REPLICATE_FETCH,
                        {"repo": self.repo, "kind": kind, "name": name, "trace": trace},
                    )
                )
                ftype, payload = conn.recv_frame()
                if ftype == FrameType.ERROR:
                    raise_remote_error(payload)
                if ftype != FrameType.REPLICATE_OBJECT:
                    raise ProtocolError(f"expected REPLICATE_OBJECT, got {ftype.name}")
                size = decode_json(payload).get("size")
                if not isinstance(size, int) or size < 0:
                    raise ProtocolError("REPLICATE_OBJECT must announce a size")
                parts: List[bytes] = []
                received = 0
                while received < size:
                    ftype, payload = conn.recv_frame()
                    if ftype == FrameType.ERROR:
                        raise_remote_error(payload)
                    if ftype != FrameType.CHUNK_DATA:
                        raise ProtocolError(f"unexpected {ftype.name} during fetch")
                    parts.append(payload)
                    received += len(payload)
                if received != size:
                    raise ProtocolError(
                        f"fetch overran its announced size ({received} > {size})"
                    )
                return b"".join(parts)
            except BaseException:
                conn.close()
                raise
            finally:
                self.pool.release(conn)

        return self._with_retries(op)

    # ------------------------------------------------------------------
    # Deletion (mutating — never retried)
    # ------------------------------------------------------------------
    def delete_oldest(self) -> Dict:
        return self._simple_request(
            FrameType.DELETE_OLDEST, {"repo": self.repo}, FrameType.DELETE_OK, "delete"
        )
