"""Modeled absolute throughput (a supplement to the paper's metrics).

The paper deliberately reports hardware-independent counts (lookups/GB,
speed factor).  For readers who want a feel for absolute numbers, these
helpers translate the counted I/O into seconds on an analytic disk
(:class:`~repro.storage.io_model.DiskModel`) and into MB/s:

* **backup**: each on-disk index lookup is a random read; unique bytes are
  written sequentially.
* **restore**: each container read is a seek plus a sequential transfer.

Absolute values are only as good as the disk model; cross-scheme *ratios*
are the meaningful output.
"""

from __future__ import annotations

from typing import Optional

from ..storage.io_model import DiskModel
from ..units import MiB


def modeled_backup_seconds(
    logical_bytes: int,
    stored_bytes: int,
    index_lookups: int,
    model: Optional[DiskModel] = None,
    sequential_index_bytes: int = 0,
) -> float:
    """Modeled time to deduplicate+store ``logical_bytes`` of stream.

    Args:
        index_lookups: *random* on-disk index probes (one seek each).
        sequential_index_bytes: index traffic that streams sequentially —
            HiDeStore's previous-recipe prefetch is one contiguous read, not
            per-entry seeks, so callers should bill it here instead.
    """
    disk = model if model is not None else DiskModel()
    return (
        index_lookups * disk.index_lookup_seconds
        + (stored_bytes + sequential_index_bytes) / disk.transfer_bytes_per_second
    )


def modeled_backup_throughput(
    logical_bytes: int,
    stored_bytes: int,
    index_lookups: int,
    model: Optional[DiskModel] = None,
    sequential_index_bytes: int = 0,
) -> float:
    """Modeled deduplication throughput in MB/s (higher is better)."""
    seconds = modeled_backup_seconds(
        logical_bytes, stored_bytes, index_lookups, model, sequential_index_bytes
    )
    if seconds <= 0:
        return 0.0
    return (logical_bytes / MiB) / seconds


def modeled_restore_seconds(
    container_reads: int,
    bytes_read: int,
    model: Optional[DiskModel] = None,
) -> float:
    """Modeled time for a restore's container traffic."""
    disk = model if model is not None else DiskModel()
    return container_reads * disk.seek_seconds + bytes_read / disk.transfer_bytes_per_second


def modeled_restore_throughput(
    logical_bytes: int,
    container_reads: int,
    bytes_read: int,
    model: Optional[DiskModel] = None,
) -> float:
    """Modeled restore throughput in MB/s of logical data."""
    seconds = modeled_restore_seconds(container_reads, bytes_read, model)
    if seconds <= 0:
        return 0.0
    return (logical_bytes / MiB) / seconds
