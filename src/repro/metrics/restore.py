"""Restore-side metrics (Figure 11 and the CFL diagnostic)."""

from __future__ import annotations

from typing import Iterable, Set

from ..storage.recipe import Recipe, RecipeEntry
from ..units import CONTAINER_SIZE, MiB


def speed_factor(logical_bytes: int, container_reads: int) -> float:
    """MB restored per container read — the paper's §5.3 metric.

    Higher is better; with 4 MiB containers the theoretical ceiling is 4.0
    (every byte of every read container is useful).
    """
    if container_reads <= 0:
        return 0.0
    return (logical_bytes / MiB) / container_reads


def chunk_fragmentation_level(
    entries: Iterable[RecipeEntry], container_bytes: int = CONTAINER_SIZE
) -> float:
    """CFL: optimal container count over actual referenced containers.

    1.0 means the version is perfectly packed; values sink toward 0 as the
    version's chunks scatter over more containers (Nam et al.'s metric,
    paper §2.3/§6).  Only positive CIDs are counted — resolve recipes first.
    """
    logical = 0
    referenced: Set[int] = set()
    for entry in entries:
        logical += entry.size
        if entry.cid > 0:
            referenced.add(entry.cid)
    if not referenced:
        return 1.0
    optimal = max(1, -(-logical // container_bytes))  # ceil
    return min(1.0, optimal / len(referenced))


def containers_referenced(recipe: Recipe) -> int:
    """Distinct containers a (resolved) recipe touches."""
    return len({e.cid for e in recipe.entries if e.cid > 0})
