"""Metric definitions used across benchmarks, exactly as the paper defines them."""

from .dedup import dedup_ratio, exact_dedup_ratio, index_bytes_per_mb, lookups_per_gb
from .restore import chunk_fragmentation_level, containers_referenced, speed_factor
from .throughput import (
    modeled_backup_seconds,
    modeled_backup_throughput,
    modeled_restore_seconds,
    modeled_restore_throughput,
)

__all__ = [
    "chunk_fragmentation_level",
    "containers_referenced",
    "dedup_ratio",
    "exact_dedup_ratio",
    "index_bytes_per_mb",
    "lookups_per_gb",
    "speed_factor",
    "modeled_backup_seconds",
    "modeled_backup_throughput",
    "modeled_restore_seconds",
    "modeled_restore_throughput",
]
