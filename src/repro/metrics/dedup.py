"""Deduplication-side metrics (Table 1, Figures 8-10 definitions)."""

from __future__ import annotations

from typing import Iterable

from ..chunking.stream import BackupStream
from ..units import GiB, MiB


def dedup_ratio(logical_bytes: int, stored_bytes: int) -> float:
    """Eliminated bytes over logical bytes — the paper's §5.2.1 definition."""
    if logical_bytes <= 0:
        return 0.0
    return (logical_bytes - stored_bytes) / logical_bytes


def exact_dedup_ratio(streams: Iterable[BackupStream]) -> float:
    """Ground-truth dedup ratio of a workload (what exact dedup achieves)."""
    total = 0
    unique = 0
    seen = set()
    for stream in streams:
        for chunk in stream:
            total += chunk.size
            if chunk.fingerprint not in seen:
                seen.add(chunk.fingerprint)
                unique += chunk.size
    return dedup_ratio(total, unique)


def lookups_per_gb(disk_lookups: int, logical_bytes: int) -> float:
    """On-disk index probes per GB of deduplicated data (Fig. 9)."""
    if logical_bytes <= 0:
        return 0.0
    return disk_lookups / (logical_bytes / GiB)


def index_bytes_per_mb(index_bytes: int, logical_bytes: int) -> float:
    """Resident index bytes per MB of deduplicated data (Fig. 10)."""
    if logical_bytes <= 0:
        return 0.0
    return index_bytes / (logical_bytes / MiB)
